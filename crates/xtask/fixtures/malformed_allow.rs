//! Seeded `malformed-allow` violation: a suppression with no reason.
//! This file is a lint fixture — excluded from the workspace walk and
//! never compiled.

/// Attempts to suppress the wall-clock rule without justifying it,
/// which is itself a violation (and leaves the original one standing).
pub fn fixture() -> u64 {
    let start = std::time::Instant::now(); // lint:allow(wall-clock)
    start.elapsed().as_micros() as u64
}
