//! Seeded `ambient-rng` violation: process-global entropy in
//! determinism scope. This file is a lint fixture — excluded from the
//! workspace walk and never compiled.

/// Draws from ambient OS entropy — forbidden in sim/phy/mesh; all
/// randomness must derive from the scenario seed.
pub fn fixture() -> u64 {
    rand::random()
}
