//! Seeded violation: the server reaching past the sim vocabulary.

use loramon_sim::{NodeId, Simulator};
