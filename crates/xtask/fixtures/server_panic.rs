//! Seeded `server-panic` violation. This file is a lint fixture —
//! excluded from the workspace walk and never compiled.

/// Aborts the request thread — forbidden in server scope.
pub fn fixture(flag: bool) {
    if !flag {
        panic!("request failed");
    }
}
