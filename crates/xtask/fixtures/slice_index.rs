//! Seeded violation: panicking slice indexing on the no-panic surface.

fn seeded(buf: &[u8]) -> u8 {
    buf[0]
}
