//! Seeded `unordered-collections` violation. This file is a lint
//! fixture — excluded from the workspace walk and never compiled.

use std::collections::HashMap;

/// Iteration order of a hash map is seed-dependent — forbidden in
/// determinism scope; use `BTreeMap`/`BTreeSet`.
pub fn fixture() -> HashMap<u32, u32> {
    HashMap::new()
}
