//! Seeded `no-dbg` violation. This file is a lint fixture — excluded
//! from the workspace walk and never compiled.

/// Debug prints must not ship anywhere in the workspace.
pub fn fixture(x: u32) -> u32 {
    dbg!(x)
}
