//! Seeded violation: a lower-layer crate importing upward.

use loramon_server::MonitorServer;

fn seeded() {
    let _ = loramon_dashboard::render_page;
}
