//! Seeded violation: truncating integer cast on the no-panic surface.

fn seeded(n: u64) -> u32 {
    n as u32
}
