//! Seeded `missing-docs` violation: an undocumented public item.
//! This file is a lint fixture — excluded from the workspace walk and
//! never compiled.

pub fn fixture() {}
