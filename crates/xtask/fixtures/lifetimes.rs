//! Clean fixture: lifetimes, loop labels, char literals, raw strings
//! with hashes and nested block comments must not confuse the scanner,
//! the lexer or any rule built on them.

/// Borrows text for a lifetime.
pub struct Holder<'a> {
    /// Borrowed text.
    pub text: &'a str,
}

/// A 'static str constant whose value contains tricky quoting.
pub const RAW: &'static str = r#"has "quotes" and # marks"#;

/* A nested /* block */ comment mentioning Instant::now() freely. */

/// Scans with labeled loops, char literals and escapes.
pub fn scan<'b>(items: &'b [&'b str]) -> Option<&'b str> {
    let mut found: Option<&'b str> = None;
    'outer: for item in items {
        for c in item.chars() {
            if c == '"' || c == '\\' || c == '\n' || c == 'x' {
                found = Some(*item);
                break 'outer;
            }
        }
    }
    found
}
