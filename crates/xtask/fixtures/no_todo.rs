//! Seeded `no-todo` violation. This file is a lint fixture — excluded
//! from the workspace walk and never compiled.

/// Unfinished code must not ship anywhere in the workspace.
pub fn fixture() {
    todo!()
}
