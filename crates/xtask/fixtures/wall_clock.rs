//! Seeded `wall-clock` violation: reads the OS clock in determinism
//! scope. This file is a lint fixture — excluded from the workspace
//! walk and never compiled.

/// Returns elapsed wall time — forbidden in sim/phy/mesh/server.
pub fn fixture() -> u64 {
    let start = std::time::Instant::now();
    start.elapsed().as_micros() as u64
}
