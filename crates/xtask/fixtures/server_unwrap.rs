//! Seeded `server-unwrap` violation: panicking on a request path.
//! This file is a lint fixture — excluded from the workspace walk and
//! never compiled.

/// Parses a node id, panicking on bad input — forbidden in server
/// scope; map the error to a 4xx/5xx response instead.
pub fn fixture(raw: &str) -> u32 {
    raw.parse().unwrap()
}
