//! End-to-end checks of the lint engine: every rule fires on its
//! seeded fixture under `crates/xtask/fixtures/`, scoping exempts the
//! right trees, and the shipped workspace itself lints clean.

use std::path::PathBuf;
use xtask::lint::{lint_root, lint_source, LintReport};

/// Read a seeded-violation fixture by file name.
fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

/// Lint a fixture as if it lived at the workspace-relative path `rel`.
fn lint_fixture_at(name: &str, rel: &str) -> LintReport {
    let mut report = LintReport::default();
    lint_source(rel, &fixture(name), &mut report);
    report
}

/// Assert the fixture, placed at `rel`, trips `rule` (and nothing else).
fn assert_rule_fires(name: &str, rel: &str, rule: &str) {
    let report = lint_fixture_at(name, rel);
    assert!(
        report.diagnostics.iter().any(|d| d.rule == rule),
        "{name} at {rel} should trip `{rule}`; got {:?}",
        report.diagnostics
    );
    for d in &report.diagnostics {
        assert_eq!(
            d.rule, rule,
            "{name} should only trip `{rule}`; got {:?}",
            report.diagnostics
        );
    }
}

#[test]
fn wall_clock_fires_in_determinism_scope() {
    assert_rule_fires("wall_clock.rs", "crates/phy/src/seeded.rs", "wall-clock");
    assert_rule_fires("wall_clock.rs", "crates/server/src/seeded.rs", "wall-clock");
}

#[test]
fn ambient_rng_fires_in_determinism_scope() {
    assert_rule_fires("ambient_rng.rs", "crates/sim/src/seeded.rs", "ambient-rng");
}

#[test]
fn unordered_collections_fires_in_determinism_scope() {
    assert_rule_fires(
        "unordered_collections.rs",
        "crates/mesh/src/seeded.rs",
        "unordered-collections",
    );
}

#[test]
fn server_unwrap_fires_in_server_scope() {
    assert_rule_fires(
        "server_unwrap.rs",
        "crates/server/src/seeded.rs",
        "server-unwrap",
    );
}

#[test]
fn server_panic_fires_in_server_scope() {
    assert_rule_fires(
        "server_panic.rs",
        "crates/server/src/seeded.rs",
        "server-panic",
    );
}

#[test]
fn no_todo_fires_everywhere() {
    assert_rule_fires("no_todo.rs", "src/seeded.rs", "no-todo");
    assert_rule_fires("no_todo.rs", "crates/dashboard/tests/seeded.rs", "no-todo");
}

#[test]
fn no_dbg_fires_everywhere() {
    assert_rule_fires("no_dbg.rs", "crates/dashboard/src/seeded.rs", "no-dbg");
}

#[test]
fn missing_docs_fires_on_sources() {
    assert_rule_fires(
        "missing_docs.rs",
        "crates/core/src/seeded.rs",
        "missing-docs",
    );
}

#[test]
fn malformed_allow_is_reported_and_does_not_suppress() {
    let report = lint_fixture_at("malformed_allow.rs", "crates/sim/src/seeded.rs");
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "malformed-allow"),
        "reason-less lint:allow must be diagnosed; got {:?}",
        report.diagnostics
    );
    assert!(
        report.diagnostics.iter().any(|d| d.rule == "wall-clock"),
        "a malformed allow must not suppress the underlying violation"
    );
    assert_eq!(report.suppressed, 0);
}

#[test]
fn scoping_exempts_other_crates_and_tests() {
    // A server-only rule does not fire in sim sources…
    let report = lint_fixture_at("server_unwrap.rs", "crates/sim/src/seeded.rs");
    assert!(!report.diagnostics.iter().any(|d| d.rule == "server-unwrap"));
    // …and determinism rules do not fire in test code.
    let report = lint_fixture_at("wall_clock.rs", "crates/sim/tests/seeded.rs");
    assert!(!report.diagnostics.iter().any(|d| d.rule == "wall-clock"));
}

#[test]
fn reasoned_allow_suppresses_exactly_one_violation() {
    let source = fixture("wall_clock.rs").replace(
        "std::time::Instant::now();",
        "std::time::Instant::now(); // lint:allow(wall-clock, reason = \"fixture boundary\")",
    );
    let mut report = LintReport::default();
    lint_source("crates/sim/src/seeded.rs", &source, &mut report);
    assert!(report.is_clean(), "got {:?}", report.diagnostics);
    assert_eq!(report.suppressed, 1);
}

#[test]
fn shipped_workspace_is_violation_free() {
    let report = lint_root(&xtask::workspace_root()).expect("workspace must be walkable");
    assert!(
        report.is_clean(),
        "shipped tree must lint clean; got {:#?}",
        report.diagnostics
    );
    assert!(
        report.files_scanned > 50,
        "walk looks truncated: only {} files",
        report.files_scanned
    );
}

#[test]
fn fixtures_are_excluded_from_the_walk() {
    // The seeded violations live under crates/xtask/fixtures/ and must
    // never leak into the workspace pass.
    let report = lint_root(&xtask::workspace_root()).expect("workspace must be walkable");
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.file.contains("fixtures/")));
}
