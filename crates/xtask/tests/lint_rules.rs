//! End-to-end checks of the lint engine: every rule fires on its
//! seeded fixture under `crates/xtask/fixtures/`, scoping exempts the
//! right trees, and the shipped workspace itself lints clean.

use std::path::PathBuf;
use xtask::lint::{lint_root, lint_source, LintReport};

/// Read a seeded-violation fixture by file name.
fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

/// Lint a fixture as if it lived at the workspace-relative path `rel`.
fn lint_fixture_at(name: &str, rel: &str) -> LintReport {
    let mut report = LintReport::default();
    lint_source(rel, &fixture(name), &mut report);
    report
}

/// Assert the fixture, placed at `rel`, trips `rule` (and nothing else).
fn assert_rule_fires(name: &str, rel: &str, rule: &str) {
    let report = lint_fixture_at(name, rel);
    assert!(
        report.diagnostics.iter().any(|d| d.rule == rule),
        "{name} at {rel} should trip `{rule}`; got {:?}",
        report.diagnostics
    );
    for d in &report.diagnostics {
        assert_eq!(
            d.rule, rule,
            "{name} should only trip `{rule}`; got {:?}",
            report.diagnostics
        );
    }
}

#[test]
fn wall_clock_fires_in_determinism_scope() {
    assert_rule_fires("wall_clock.rs", "crates/phy/src/seeded.rs", "wall-clock");
    assert_rule_fires("wall_clock.rs", "crates/server/src/seeded.rs", "wall-clock");
}

#[test]
fn ambient_rng_fires_in_determinism_scope() {
    assert_rule_fires("ambient_rng.rs", "crates/sim/src/seeded.rs", "ambient-rng");
}

#[test]
fn unordered_collections_fires_in_determinism_scope() {
    assert_rule_fires(
        "unordered_collections.rs",
        "crates/mesh/src/seeded.rs",
        "unordered-collections",
    );
}

#[test]
fn server_unwrap_fires_in_server_scope() {
    assert_rule_fires(
        "server_unwrap.rs",
        "crates/server/src/seeded.rs",
        "server-unwrap",
    );
}

#[test]
fn server_panic_fires_in_server_scope() {
    assert_rule_fires(
        "server_panic.rs",
        "crates/server/src/seeded.rs",
        "server-panic",
    );
}

#[test]
fn no_todo_fires_everywhere() {
    assert_rule_fires("no_todo.rs", "src/seeded.rs", "no-todo");
    assert_rule_fires("no_todo.rs", "crates/dashboard/tests/seeded.rs", "no-todo");
}

#[test]
fn no_dbg_fires_everywhere() {
    assert_rule_fires("no_dbg.rs", "crates/dashboard/src/seeded.rs", "no-dbg");
}

#[test]
fn missing_docs_fires_on_sources() {
    assert_rule_fires(
        "missing_docs.rs",
        "crates/core/src/seeded.rs",
        "missing-docs",
    );
}

#[test]
fn malformed_allow_is_reported_and_does_not_suppress() {
    let report = lint_fixture_at("malformed_allow.rs", "crates/sim/src/seeded.rs");
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "malformed-allow"),
        "reason-less lint:allow must be diagnosed; got {:?}",
        report.diagnostics
    );
    assert!(
        report.diagnostics.iter().any(|d| d.rule == "wall-clock"),
        "a malformed allow must not suppress the underlying violation"
    );
    assert_eq!(report.suppressed, 0);
}

#[test]
fn scoping_exempts_other_crates_and_tests() {
    // A server-only rule does not fire in sim sources…
    let report = lint_fixture_at("server_unwrap.rs", "crates/sim/src/seeded.rs");
    assert!(!report.diagnostics.iter().any(|d| d.rule == "server-unwrap"));
    // …and determinism rules do not fire in test code.
    let report = lint_fixture_at("wall_clock.rs", "crates/sim/tests/seeded.rs");
    assert!(!report.diagnostics.iter().any(|d| d.rule == "wall-clock"));
}

#[test]
fn reasoned_allow_suppresses_exactly_one_violation() {
    let source = fixture("wall_clock.rs").replace(
        "std::time::Instant::now();",
        "std::time::Instant::now(); // lint:allow(wall-clock, reason = \"fixture boundary\")",
    );
    let mut report = LintReport::default();
    lint_source("crates/sim/src/seeded.rs", &source, &mut report);
    assert!(report.is_clean(), "got {:?}", report.diagnostics);
    assert_eq!(report.suppressed, 1);
}

#[test]
fn layering_gate_flags_upward_imports_with_exact_locations() {
    let report = lint_fixture_at("layering_upward.rs", "crates/phy/src/seeded.rs");
    let got: Vec<(usize, &str)> = report
        .diagnostics
        .iter()
        .map(|d| (d.line, d.rule.as_str()))
        .collect();
    assert_eq!(
        got,
        vec![(3, "layering-import"), (6, "layering-import")],
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn layering_gate_flags_restricted_edge_with_exact_location() {
    let report = lint_fixture_at("layering_restricted.rs", "crates/server/src/seeded.rs");
    assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert_eq!((d.line, d.rule.as_str()), (3, "layering-restricted"));
    assert!(d.message.contains("`Simulator`"), "{}", d.message);
}

#[test]
fn layering_gate_ignores_the_same_fixture_outside_its_scope() {
    // The same upward import is legal from the root driver, which sits
    // above every crate…
    let report = lint_fixture_at("layering_upward.rs", "src/seeded.rs");
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.rule.starts_with("layering")),
        "{:?}",
        report.diagnostics
    );
    // …and test targets may reach across layers freely.
    let report = lint_fixture_at("layering_upward.rs", "crates/phy/tests/seeded.rs");
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.rule.starts_with("layering")));
}

#[test]
fn slice_index_fires_on_no_panic_surface_with_exact_location() {
    let report = lint_fixture_at("slice_index.rs", "crates/core/src/seeded.rs");
    let got: Vec<(usize, &str)> = report
        .diagnostics
        .iter()
        .map(|d| (d.line, d.rule.as_str()))
        .collect();
    assert_eq!(got, vec![(4, "slice-index")], "{:?}", report.diagnostics);
    // Out of scope: the mesh crate may index (determinism scope, not
    // no-panic scope).
    let report = lint_fixture_at("slice_index.rs", "crates/mesh/src/seeded.rs");
    assert!(report.is_clean(), "{:?}", report.diagnostics);
}

#[test]
fn as_truncation_fires_on_no_panic_surface_with_exact_location() {
    let report = lint_fixture_at("as_cast.rs", "src/seeded.rs");
    let got: Vec<(usize, &str)> = report
        .diagnostics
        .iter()
        .map(|d| (d.line, d.rule.as_str()))
        .collect();
    assert_eq!(got, vec![(4, "as-truncation")], "{:?}", report.diagnostics);
}

#[test]
fn lifetimes_labels_and_raw_strings_lint_clean() {
    // Placed in the strictest scopes on purpose: nothing in the clean
    // fixture may be mistaken for a violation by the scanner/lexer.
    for rel in ["crates/sim/src/seeded.rs", "crates/server/src/seeded.rs"] {
        let report = lint_fixture_at("lifetimes.rs", rel);
        assert!(report.is_clean(), "at {rel}: {:?}", report.diagnostics);
    }
}

#[test]
fn renamed_wire_field_is_schema_drift_with_exact_location() {
    use xtask::analysis::schema::{diff, extract_sources};
    let before = "#[derive(Serialize)]\npub struct PacketRecord {\n    pub seq: u64,\n    pub rssi_dbm: Option<f64>,\n}\n";
    let after = before.replace("rssi_dbm", "rssi");
    let base = extract_sources(&[("crates/core/src/record.rs", before)]);
    let cur = extract_sources(&[("crates/core/src/record.rs", &after)]);
    let drift = diff(&cur, &base);
    assert_eq!(drift.len(), 1, "{drift:?}");
    let d = &drift[0];
    assert_eq!(d.rule, "schema-drift");
    assert_eq!((d.file.as_str(), d.line), ("crates/core/src/record.rs", 4));
    assert!(
        d.message
            .contains("`PacketRecord.rssi_dbm` was renamed to `rssi`"),
        "{}",
        d.message
    );
}

#[test]
fn schema_drift_has_no_allow_escape() {
    // A lint:allow naming schema-drift must itself be rejected as
    // malformed: the only sanctioned escape is --bless-schema.
    let src =
        "// lint:allow(schema-drift, reason = \"trying to sneak one past\")\nfn seeded() {}\n";
    let mut report = LintReport::default();
    lint_source("crates/core/src/seeded.rs", src, &mut report);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "malformed-allow"),
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn committed_schema_matches_the_sources() {
    // The wire lock end-to-end: the committed baseline must describe
    // the shipped core sources exactly (fingerprint and structure).
    use xtask::analysis::schema;
    let drift = schema::check(&xtask::workspace_root());
    assert!(
        drift.is_empty(),
        "run `cargo xtask lint --bless-schema`? {drift:?}"
    );
}

#[test]
fn shipped_manifests_respect_the_layering() {
    use xtask::analysis::layering;
    let root = xtask::workspace_root();
    for info in layering::CRATES {
        let manifest = std::fs::read_to_string(root.join(info.manifest))
            .unwrap_or_else(|e| panic!("{} unreadable: {e}", info.manifest));
        let diags = layering::manifest_diagnostics(info, &manifest);
        assert!(diags.is_empty(), "{diags:?}");
    }
}

#[test]
fn shipped_workspace_is_violation_free() {
    let report = lint_root(&xtask::workspace_root()).expect("workspace must be walkable");
    assert!(
        report.is_clean(),
        "shipped tree must lint clean; got {:#?}",
        report.diagnostics
    );
    assert!(
        report.files_scanned > 50,
        "walk looks truncated: only {} files",
        report.files_scanned
    );
}

#[test]
fn fixtures_are_excluded_from_the_walk() {
    // The seeded violations live under crates/xtask/fixtures/ and must
    // never leak into the workspace pass.
    let report = lint_root(&xtask::workspace_root()).expect("workspace must be walkable");
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.file.contains("fixtures/")));
}
