//! Workspace task-runner library backing the `cargo xtask` alias.
//!
//! Four subsystems:
//! - [`lint`] — the dependency-free static-analysis pass enforcing the
//!   determinism and robustness contracts (see DESIGN.md).
//! - [`analysis`] — the structural layer under the lint pass: lexer,
//!   item parser, crate-layering gate, panic-surface token rules and
//!   the wire-schema compatibility lock.
//! - [`determinism`] — the runtime double-run harness asserting that
//!   one seed replays to byte-identical traces, on both delivery
//!   paths (fire-and-forget and the acked transport).
//! - [`chaos`] — a replayed chaos smoke run (loss + outage + crashes +
//!   retries) with survival gates.

pub mod analysis;
pub mod chaos;
pub mod determinism;
pub mod lint;

use std::path::PathBuf;

/// Locate the workspace root from the compiled-in manifest directory
/// (`crates/xtask` → two levels up).
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/xtask always sits two levels under the workspace root")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    #[test]
    fn workspace_root_has_manifest() {
        assert!(super::workspace_root().join("Cargo.toml").is_file());
    }
}
