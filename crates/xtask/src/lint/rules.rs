//! The lint rule set and its per-crate scoping.
//!
//! Four families, mirroring the workspace's layering:
//!
//! - **determinism** (`crates/{sim,phy,mesh}` and the root scenario
//!   driver, plus wall-clock in `crates/server`): the replay contract —
//!   no ambient time, no ambient randomness, no
//!   iteration-order-dependent collections.
//! - **robustness** (`crates/server`, `crates/core`, root `src/`): the
//!   no-panic surface — ingest/client/driver paths must not panic;
//!   malformed input becomes an error response, not a crash. The
//!   token-level rules `slice-index` and `as-truncation` (see
//!   [`crate::analysis::panic_surface`]) share this scope.
//! - **structure** ([`crate::analysis`]): the crate-layering gate
//!   (`layering-*`) and the wire-schema lock (`schema-drift`).
//! - **hygiene** (workspace-wide): no leftover `todo!`/`dbg!`, doc
//!   comments on public items.
//!
//! Escape hatch: `// lint:allow(<rule-id>, reason = "…")` on the same
//! line or a comment line directly above; the reason is mandatory.
//! `schema-drift` and `layering-cargo` deliberately have no allow
//! escape: schema changes go through `cargo xtask lint --bless-schema`,
//! and manifest layering is fixed by fixing the manifest.

/// Where a rule applies, expressed over workspace-relative paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// `crates/{sim,phy,mesh}` sources.
    Determinism,
    /// Determinism crates plus `crates/server` sources.
    DeterminismAndServer,
    /// `crates/server` sources.
    Server,
    /// The no-panic surface: `crates/server`, `crates/core` and the
    /// root package's `src/` — server ingest paths, the on-node
    /// client/transport, and the scenario driver.
    NoPanic,
    /// Every scanned file, including tests, benches and examples.
    Everywhere,
    /// Non-test library/binary sources of every crate.
    Sources,
}

/// One substring-pattern rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable identifier used in output and `lint:allow`.
    pub id: &'static str,
    /// Forbidden token patterns (matched word-bounded on masked text).
    pub patterns: &'static [&'static str],
    /// Where the rule applies.
    pub scope: Scope,
    /// Whether the rule also applies inside `#[cfg(test)]` regions and
    /// test/bench/example targets.
    pub include_tests: bool,
    /// One-line explanation shown with each diagnostic.
    pub message: &'static str,
}

/// Identifier of the doc-comment rule (special-cased in the engine —
/// it is structural, not a substring pattern).
pub const MISSING_DOCS: &str = "missing-docs";

/// Identifier for malformed `lint:allow` directives.
pub const MALFORMED_ALLOW: &str = "malformed-allow";

/// The pattern-based rule table.
pub const RULES: &[Rule] = &[
    Rule {
        id: "wall-clock",
        patterns: &["Instant", "SystemTime", "chrono::"],
        scope: Scope::DeterminismAndServer,
        include_tests: false,
        message: "wall-clock time breaks seeded replay; use SimTime (or a Clock injected at the edge)",
    },
    Rule {
        id: "ambient-rng",
        patterns: &["rand::", "thread_rng", "from_entropy", "getrandom"],
        scope: Scope::Determinism,
        include_tests: false,
        message: "ambient randomness breaks seeded replay; derive a stream from sim::rng (mix_seed/derive)",
    },
    Rule {
        id: "unordered-collections",
        patterns: &["HashMap", "HashSet"],
        scope: Scope::Determinism,
        include_tests: false,
        message: "hash iteration order is unspecified; use BTreeMap/BTreeSet or a sorted Vec",
    },
    Rule {
        id: "server-unwrap",
        patterns: &[".unwrap()", ".expect("],
        scope: Scope::NoPanic,
        include_tests: false,
        message: "ingest/client paths must not panic; map the error to a response or drop the record",
    },
    Rule {
        id: "server-panic",
        patterns: &["panic!", "unreachable!"],
        scope: Scope::NoPanic,
        include_tests: false,
        message: "ingest/client paths must not panic; return an error instead",
    },
    Rule {
        id: "no-todo",
        patterns: &["todo!", "unimplemented!"],
        scope: Scope::Everywhere,
        include_tests: true,
        message: "unfinished code must not land; finish it or file an issue and gate the path",
    },
    Rule {
        id: "no-dbg",
        patterns: &["dbg!"],
        scope: Scope::Everywhere,
        include_tests: true,
        message: "leftover debug macro; remove it (use the trace subsystem for durable logging)",
    },
];

/// Analysis-layer rule ids that accept a reasoned `lint:allow`.
/// `schema-drift` and `layering-cargo` are intentionally absent: the
/// former is escaped only by `--bless-schema`, the latter only by
/// fixing the manifest.
pub const ANALYSIS_ALLOWED_RULES: &[&str] = &[
    "slice-index",
    "as-truncation",
    "layering-import",
    "layering-restricted",
    "layering-undeclared",
];

/// All known rule identifiers (for validating `lint:allow`).
pub fn known_rule(id: &str) -> bool {
    id == MISSING_DOCS
        || id == MALFORMED_ALLOW
        || ANALYSIS_ALLOWED_RULES.contains(&id)
        || RULES.iter().any(|r| r.id == id)
}

/// Whether `rule` applies to the file at workspace-relative path
/// `rel` (forward slashes), given whether the file/line is test code.
pub fn applies(rule_scope: Scope, include_tests: bool, rel: &str, is_test: bool) -> bool {
    if is_test && !include_tests {
        return false;
    }
    let in_src = rel.contains("/src/") || rel.starts_with("src/");
    let determinism_crate = ["crates/sim/", "crates/phy/", "crates/mesh/"]
        .iter()
        .any(|p| rel.starts_with(p));
    let server_crate = rel.starts_with("crates/server/");
    let core_crate = rel.starts_with("crates/core/");
    // The root package's `src/` is the scenario driver: it replays
    // seeded runs (determinism scope) and is part of the deployed
    // surface (no-panic scope).
    let root_crate = rel.starts_with("src/");
    match rule_scope {
        Scope::Determinism => in_src && (determinism_crate || root_crate),
        Scope::DeterminismAndServer => in_src && (determinism_crate || server_crate || root_crate),
        Scope::Server => in_src && server_crate,
        Scope::NoPanic => in_src && (server_crate || core_crate || root_crate),
        Scope::Everywhere => true,
        Scope::Sources => in_src,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_matches_layout() {
        assert!(applies(
            Scope::Determinism,
            false,
            "crates/sim/src/rng.rs",
            false
        ));
        assert!(!applies(
            Scope::Determinism,
            false,
            "crates/server/src/http.rs",
            false
        ));
        assert!(!applies(
            Scope::Determinism,
            false,
            "crates/sim/src/rng.rs",
            true
        ));
        assert!(applies(
            Scope::Server,
            false,
            "crates/server/src/http.rs",
            false
        ));
        assert!(applies(
            Scope::DeterminismAndServer,
            false,
            "crates/server/src/clock.rs",
            false
        ));
        assert!(applies(
            Scope::NoPanic,
            false,
            "crates/core/src/transport.rs",
            false
        ));
        assert!(applies(
            Scope::NoPanic,
            false,
            "crates/server/src/ingest.rs",
            false
        ));
        assert!(applies(Scope::NoPanic, false, "src/scenario.rs", false));
        assert!(!applies(
            Scope::NoPanic,
            false,
            "crates/mesh/src/node.rs",
            false
        ));
        assert!(applies(Scope::Determinism, false, "src/cli.rs", false));
        assert!(!applies(
            Scope::Determinism,
            false,
            "crates/bench/benches/e2e.rs",
            false
        ));
        assert!(applies(
            Scope::Everywhere,
            true,
            "tests/properties.rs",
            true
        ));
        assert!(applies(Scope::Sources, false, "src/scenario.rs", false));
        assert!(!applies(
            Scope::Sources,
            false,
            "tests/properties.rs",
            false
        ));
    }

    #[test]
    fn rule_ids_are_known_and_unique() {
        for (i, r) in RULES.iter().enumerate() {
            assert!(known_rule(r.id));
            assert!(RULES[i + 1..].iter().all(|o| o.id != r.id), "dup {}", r.id);
        }
        assert!(known_rule(MISSING_DOCS));
        assert!(!known_rule("made-up"));
        assert!(known_rule("slice-index"));
        assert!(known_rule("layering-restricted"));
        // No allow escape for the schema lock or manifest layering.
        assert!(!known_rule("schema-drift"));
        assert!(!known_rule("layering-cargo"));
    }
}
