//! The `cargo xtask lint` engine: a dependency-free, source-level
//! static-analysis pass enforcing the workspace's determinism and
//! robustness contracts (see DESIGN.md, "Determinism contract & lint
//! rules").
//!
//! The engine deliberately avoids a full parser: sources are masked by
//! a string/comment-aware scanner ([`scanner`]) and rules are
//! word-bounded token patterns with per-crate scope ([`rules`]), plus
//! one structural rule (doc comments on public items). On top of the
//! masked view, the [`crate::analysis`] layer lexes each file once and
//! contributes the token-level panic-surface rules, the crate-layering
//! gate (sources *and* manifests), and the wire-schema lock. All of it
//! stays fast, dependency-free and — like everything else in this
//! workspace — fully deterministic: files are walked in sorted order
//! and diagnostics are emitted in (file, line, rule) order.

pub mod rules;
pub mod scanner;

use crate::analysis::{self, layering, panic_surface, schema};
use rules::{Scope, MALFORMED_ALLOW, MISSING_DOCS, RULES};
use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier.
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Outcome of a lint pass.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of violations suppressed by reasoned `lint:allow`s.
    pub suppressed: usize,
}

impl LintReport {
    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Directories never descended into.
const EXCLUDED_DIRS: &[&str] = &[".git", "target", "vendor", "fixtures"];

/// Run the full pass over a workspace rooted at `root`.
///
/// # Errors
///
/// Returns any I/O error encountered while walking or reading sources.
pub fn lint_root(root: &Path) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rust_files(root, root, &mut files)?;
    files.sort();

    let mut report = LintReport::default();
    let declared = collect_manifests(root, &mut report);
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        let rel = rel.to_string_lossy().replace('\\', "/");
        lint_source_with(&rel, &source, &mut report, Some(&declared));
        report.files_scanned += 1;
    }
    report.diagnostics.extend(schema::check(root));
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(report)
}

/// Read every crate manifest in the layering table: collect the
/// declared internal dependencies (for `layering-undeclared`) and
/// check each manifest against the allowed layers (`layering-cargo`).
fn collect_manifests(root: &Path, report: &mut LintReport) -> layering::DeclaredDeps {
    let mut declared = layering::DeclaredDeps::new();
    for info in layering::CRATES {
        let Ok(text) = std::fs::read_to_string(root.join(info.manifest)) else {
            continue;
        };
        report
            .diagnostics
            .extend(layering::manifest_diagnostics(info, &text));
        declared.insert(info.name, layering::declared_internal_deps(&text));
    }
    declared
}

fn collect_rust_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if !EXCLUDED_DIRS.contains(&name.as_str()) {
                collect_rust_files(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Lint one in-memory source file, appending to `report`. `rel` is the
/// workspace-relative path used for scoping. Manifest-aware checks
/// (`layering-undeclared`) are skipped; [`lint_root`] runs them via
/// [`lint_source_with`].
pub fn lint_source(rel: &str, source: &str, report: &mut LintReport) {
    lint_source_with(rel, source, report, None);
}

/// [`lint_source`] with the workspace's declared-dependency map, so the
/// layering gate can also flag imports the manifest never declared.
pub fn lint_source_with(
    rel: &str,
    source: &str,
    report: &mut LintReport,
    declared: Option<&layering::DeclaredDeps>,
) {
    let masked = scanner::mask(source);
    let comments = scanner::comment_text(source);
    let test_flags = scanner::test_regions(&masked);
    let original_lines: Vec<&str> = source.lines().collect();
    let masked_lines: Vec<&str> = masked.lines().collect();
    let comment_lines: Vec<&str> = comments.lines().collect();
    let test_like = is_test_like(rel);

    let allows = collect_allows(&masked_lines, &comment_lines, report, rel);

    for (idx, masked_line) in masked_lines.iter().enumerate() {
        let line_no = idx + 1;
        let in_test = test_like || test_flags.get(idx).copied().unwrap_or(false);
        for rule in RULES {
            if !rules::applies(rule.scope, rule.include_tests, rel, in_test) {
                continue;
            }
            if !rule.patterns.iter().any(|p| contains_token(masked_line, p)) {
                continue;
            }
            emit(report, &allows, rel, line_no, rule.id, rule.message);
        }
    }

    // Token-level analyses share one lex of the masked text. Each
    // finding is test-filtered by its own line before emission.
    let toks = analysis::lex::lex(&masked);
    let line_is_test =
        |line_no: usize| test_like || test_flags.get(line_no - 1).copied().unwrap_or(false);
    for (line_no, rule, message) in panic_surface::check(&toks) {
        if rules::applies(Scope::NoPanic, false, rel, line_is_test(line_no)) {
            emit(report, &allows, rel, line_no, rule, &message);
        }
    }
    for (line_no, rule, message) in layering::check_tokens(rel, &toks, declared) {
        if rules::applies(Scope::Sources, false, rel, line_is_test(line_no)) {
            emit(report, &allows, rel, line_no, rule, &message);
        }
    }

    lint_missing_docs(
        rel,
        &original_lines,
        &masked_lines,
        &test_flags,
        test_like,
        &allows,
        report,
    );
}

fn is_test_like(rel: &str) -> bool {
    rel.split('/')
        .any(|part| matches!(part, "tests" | "benches" | "examples"))
}

/// Record a violation unless a reasoned `lint:allow` covers it.
fn emit(
    report: &mut LintReport,
    allows: &[Vec<String>],
    rel: &str,
    line_no: usize,
    rule: &str,
    message: &str,
) {
    let allowed = allows
        .get(line_no - 1)
        .is_some_and(|a| a.iter().any(|r| r == rule));
    if allowed {
        report.suppressed += 1;
    } else {
        report.diagnostics.push(Diagnostic {
            file: rel.to_string(),
            line: line_no,
            rule: rule.to_string(),
            message: message.to_string(),
        });
    }
}

/// Pattern containment with identifier-boundary checks, so `Instant`
/// does not match `InstantaneousFoo` and `dbg!` does not match
/// `xdbg!`.
fn contains_token(line: &str, pattern: &str) -> bool {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let first_is_ident = pattern.chars().next().is_some_and(is_ident);
    let last_is_ident = pattern.chars().next_back().is_some_and(is_ident);
    let mut from = 0;
    while let Some(pos) = line[from..].find(pattern) {
        let start = from + pos;
        let end = start + pattern.len();
        let ok_before = !first_is_ident || !line[..start].chars().next_back().is_some_and(is_ident);
        let ok_after = !last_is_ident || !line[end..].chars().next().is_some_and(is_ident);
        if ok_before && ok_after {
            return true;
        }
        from = start + 1;
    }
    false
}

// ── lint:allow directives ─────────────────────────────────────────────

/// Per-line effective allow lists. A directive in a trailing comment
/// covers its own line; a directive on a comment-only line covers the
/// next code line. Directives are read from the comment-only view of
/// the source (a `"lint:allow(...)"` string literal is inert).
/// Malformed directives (unknown rule, missing or empty reason) are
/// themselves diagnostics.
fn collect_allows(
    masked_lines: &[&str],
    comment_lines: &[&str],
    report: &mut LintReport,
    rel: &str,
) -> Vec<Vec<String>> {
    let mut per_line: Vec<Vec<String>> = vec![Vec::new(); masked_lines.len()];
    let mut pending: Vec<String> = Vec::new();
    for (idx, line) in comment_lines.iter().enumerate() {
        let comment_only = masked_lines
            .get(idx)
            .is_none_or(|code| code.trim().is_empty());
        let mut here = Vec::new();
        for directive in parse_allow_directives(line) {
            match directive {
                Ok(rule) => here.push(rule),
                Err(problem) => report.diagnostics.push(Diagnostic {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: MALFORMED_ALLOW.to_string(),
                    message: problem,
                }),
            }
        }
        if comment_only {
            pending.extend(here);
        } else {
            per_line[idx].append(&mut pending);
            per_line[idx].extend(here);
        }
    }
    per_line
}

/// Parse every `lint:allow(<rule-id>, reason = "…")` on a line. Returns
/// `Ok(rule_id)` for well-formed directives, `Err(description)`
/// otherwise.
fn parse_allow_directives(line: &str) -> Vec<Result<String, String>> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = line[from..].find("lint:allow(") {
        let start = from + pos + "lint:allow(".len();
        let Some(close) = line[start..].find(')') else {
            out.push(Err("lint:allow is missing its closing parenthesis".into()));
            break;
        };
        let inner = &line[start..start + close];
        from = start + close;
        let (rule, reason) = match inner.split_once(',') {
            Some((r, rest)) => (r.trim(), rest.trim()),
            None => (inner.trim(), ""),
        };
        // Prose that merely *mentions* the directive syntax (e.g.
        // `lint:allow(<rule-id>, …)` in a doc comment) is not a
        // directive: real rule ids are lowercase-dash identifiers.
        let plausible_rule = !rule.is_empty()
            && rule
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-');
        if !plausible_rule {
            continue;
        }
        if !rules::known_rule(rule) {
            out.push(Err(format!("lint:allow names unknown rule `{rule}`")));
            continue;
        }
        let reason_text = reason
            .strip_prefix("reason")
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('='))
            .map(str::trim)
            .and_then(|r| r.strip_prefix('"'))
            .and_then(|r| r.strip_suffix('"'))
            .map(str::trim)
            .unwrap_or("");
        if reason_text.is_empty() {
            out.push(Err(format!(
                "lint:allow({rule}) requires a non-empty reason = \"…\""
            )));
        } else {
            out.push(Ok(rule.to_string()));
        }
    }
    out
}

// ── missing-docs (structural rule) ────────────────────────────────────

const DOC_ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union",
];

#[allow(clippy::too_many_arguments)]
fn lint_missing_docs(
    rel: &str,
    original_lines: &[&str],
    masked_lines: &[&str],
    test_flags: &[bool],
    test_like: bool,
    allows: &[Vec<String>],
    report: &mut LintReport,
) {
    if !rules::applies(Scope::Sources, false, rel, test_like) {
        return;
    }
    for (idx, masked_line) in masked_lines.iter().enumerate() {
        if test_flags.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let trimmed = masked_line.trim_start();
        let Some(rest) = trimmed.strip_prefix("pub ") else {
            continue;
        };
        let keyword = rest.split_whitespace().next().unwrap_or("");
        if !DOC_ITEM_KEYWORDS.contains(&keyword) {
            continue;
        }
        // `pub mod foo;` is documented by the module file's own `//!`
        // header; only inline `pub mod foo { … }` needs a doc here.
        if keyword == "mod" && masked_line.trim_end().ends_with(';') {
            continue;
        }
        if !has_doc_comment(original_lines, idx) {
            emit(
                report,
                allows,
                rel,
                idx + 1,
                MISSING_DOCS,
                "public items need a /// doc comment (house style; rendered by rustdoc)",
            );
        }
    }
}

/// Walk upward from the item at `idx`, skipping attributes and plain
/// comments, looking for a doc comment.
fn has_doc_comment(original_lines: &[&str], idx: usize) -> bool {
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = original_lines[i].trim();
        if t.starts_with("///") || t.starts_with("//!") || t.starts_with("#[doc") {
            return true;
        }
        // Attribute lines (single-line or the tail of a multi-line
        // attribute) and plain comments sit between docs and the item.
        let attr_like = t.starts_with("#[")
            || t.starts_with("#![")
            || t.starts_with("//")
            || t.ends_with(']')
            || t.ends_with(',') && !t.ends_with("},");
        if !attr_like {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(rel: &str, source: &str) -> LintReport {
        let mut report = LintReport::default();
        lint_source(rel, source, &mut report);
        report
    }

    #[test]
    fn token_boundaries_respected() {
        assert!(contains_token("use std::time::Instant;", "Instant"));
        assert!(contains_token("let x = Instant::now();", "Instant"));
        assert!(!contains_token("let instant_ish = 1;", "Instant"));
        assert!(!contains_token("struct Instantaneous;", "Instant"));
        assert!(contains_token("dbg!(x)", "dbg!"));
        assert!(!contains_token("xdbg!(x)", "dbg!"));
        assert!(contains_token("v.unwrap()", ".unwrap()"));
        assert!(!contains_token("v.unwrap_or(0)", ".unwrap()"));
    }

    #[test]
    fn determinism_rule_fires_in_scope_only() {
        let src = "/// Doc.\npub fn f() {\n    let t = Instant::now();\n}\n";
        let in_scope = lint_one("crates/sim/src/x.rs", src);
        assert_eq!(in_scope.diagnostics.len(), 1);
        assert_eq!(in_scope.diagnostics[0].rule, "wall-clock");
        assert_eq!(in_scope.diagnostics[0].line, 3);
        let out_of_scope = lint_one("crates/dashboard/src/x.rs", src);
        assert!(out_of_scope.is_clean());
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "/// Mentions Instant::now and HashMap freely.\npub fn f() {\n    let s = \"SystemTime + thread_rng\";\n    let _ = s;\n}\n";
        assert!(lint_one("crates/sim/src/x.rs", src).is_clean());
    }

    #[test]
    fn test_regions_are_exempt_from_scoped_rules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { v.unwrap(); panic!(\"x\") }\n}\n";
        assert!(lint_one("crates/server/src/x.rs", src).is_clean());
    }

    #[test]
    fn hygiene_rules_apply_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { dbg!(1); }\n}\n";
        let report = lint_one("crates/server/src/x.rs", src);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].rule, "no-dbg");
    }

    #[test]
    fn reasoned_allow_suppresses_same_line_and_next_line() {
        let src = "/// Doc.\npub fn f() {\n    let t = Instant::now(); // lint:allow(wall-clock, reason = \"boundary adapter\")\n    // lint:allow(wall-clock, reason = \"second adapter\")\n    let u = Instant::now();\n}\n";
        let report = lint_one("crates/sim/src/x.rs", src);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert_eq!(report.suppressed, 2);
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let src = "pub fn f() { let t = Instant::now(); } // lint:allow(wall-clock)\n";
        let report = lint_one("crates/sim/src/x.rs", src);
        assert!(report.diagnostics.iter().any(|d| d.rule == MALFORMED_ALLOW));
        // The violation itself still stands.
        assert!(report.diagnostics.iter().any(|d| d.rule == "wall-clock"));
    }

    #[test]
    fn allow_unknown_rule_is_rejected() {
        let src = "fn f() {} // lint:allow(not-a-rule, reason = \"x\")\n";
        let report = lint_one("src/x.rs", src);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].rule, MALFORMED_ALLOW);
    }

    #[test]
    fn missing_docs_fires_on_undocumented_pub_items() {
        let src = "pub fn undocumented() {}\n\n/// Documented.\npub fn documented() {}\n\n#[derive(Debug)]\n/// Docs above attr still count? No — below attr.\npub struct S;\n";
        let report = lint_one("crates/core/src/x.rs", src);
        assert_eq!(
            report
                .diagnostics
                .iter()
                .filter(|d| d.rule == MISSING_DOCS)
                .count(),
            1
        );
        assert_eq!(report.diagnostics[0].line, 1);
    }

    #[test]
    fn missing_docs_skips_tests_and_non_src() {
        let src = "pub fn undocumented() {}\n";
        assert!(lint_one("tests/x.rs", src).is_clean());
        let in_cfg_test = "#[cfg(test)]\nmod tests {\n    pub fn helper() {}\n}\n";
        assert!(lint_one("crates/core/src/x.rs", in_cfg_test).is_clean());
    }
}
