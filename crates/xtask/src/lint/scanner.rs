//! String/comment-aware source preparation for the lint engine.
//!
//! [`mask`] rewrites a Rust source so that the *contents* of string
//! literals, character literals and comments become spaces while every
//! other byte (and every newline) stays in place. Rule patterns match
//! against the masked text, so `"Instant::now"` inside a string or a
//! comment can never trip a lint. [`comment_text`] is the complement —
//! only comments survive — and is where `lint:allow` directives are
//! parsed from. [`test_regions`] marks the lines living inside
//! `#[cfg(test)]` blocks so rules can exempt test code.

/// Replace string/char-literal and comment contents with spaces,
/// preserving length and line structure.
pub fn mask(source: &str) -> String {
    scan(source).0
}

/// The complement of [`mask`]: only comment text survives (including
/// the `//` markers); code and string contents become spaces. Allow
/// directives are parsed from this view so a `"lint:allow(...)"`
/// string literal can never act as one.
pub fn comment_text(source: &str) -> String {
    scan(source).1
}

fn scan(source: &str) -> (String, String) {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        CharLit,
    }

    let bytes: Vec<char> = source.chars().collect();
    let mut code = String::with_capacity(source.len());
    let mut comments = String::with_capacity(source.len());
    let mut state = State::Code;
    let mut i = 0usize;

    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    // Push one resolved char: comments keep comment text, code keeps
    // everything else; newlines survive in both.
    let put = |code: &mut String, comments: &mut String, c: char, in_comment: bool| {
        if c == '\n' {
            code.push('\n');
            comments.push('\n');
        } else if in_comment {
            code.push(' ');
            comments.push(c);
        } else {
            comments.push(' ');
            code.push(c);
        }
    };

    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Code => {
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    put(&mut code, &mut comments, '/', true);
                    put(&mut code, &mut comments, '/', true);
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    put(&mut code, &mut comments, '/', true);
                    put(&mut code, &mut comments, '*', true);
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    put(&mut code, &mut comments, ' ', false);
                    i += 1;
                } else if (c == 'r' || c == 'b')
                    && (i == 0 || !is_ident(bytes[i - 1]))
                    && raw_string_hashes(&bytes, i).is_some()
                {
                    let (prefix_len, hashes) = raw_string_hashes(&bytes, i).unwrap();
                    state = State::RawStr(hashes);
                    for _ in 0..prefix_len {
                        put(&mut code, &mut comments, ' ', false);
                    }
                    i += prefix_len as usize;
                } else if c == 'b' && next == Some('"') && (i == 0 || !is_ident(bytes[i - 1])) {
                    state = State::Str;
                    put(&mut code, &mut comments, ' ', false);
                    put(&mut code, &mut comments, ' ', false);
                    i += 2;
                } else if c == '\'' {
                    // Distinguish char literals from lifetimes.
                    let is_char = match next {
                        Some('\\') => true,
                        Some(n) => bytes.get(i + 2) == Some(&'\'') && n != '\'',
                        None => false,
                    };
                    if is_char {
                        state = State::CharLit;
                        put(&mut code, &mut comments, ' ', false);
                        i += 1;
                    } else {
                        put(&mut code, &mut comments, c, false);
                        i += 1;
                    }
                } else {
                    put(&mut code, &mut comments, c, false);
                    i += 1;
                }
            }
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                }
                put(&mut code, &mut comments, c, c != '\n');
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    put(&mut code, &mut comments, '*', true);
                    put(&mut code, &mut comments, '/', true);
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    put(&mut code, &mut comments, '/', true);
                    put(&mut code, &mut comments, '*', true);
                    i += 2;
                } else {
                    put(
                        &mut code,
                        &mut comments,
                        if c == '\n' { '\n' } else { c },
                        c != '\n',
                    );
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' && next.is_some() {
                    put(&mut code, &mut comments, ' ', false);
                    put(
                        &mut code,
                        &mut comments,
                        if next == Some('\n') { '\n' } else { ' ' },
                        false,
                    );
                    i += 2;
                } else {
                    if c == '"' {
                        state = State::Code;
                    }
                    put(
                        &mut code,
                        &mut comments,
                        if c == '\n' { '\n' } else { ' ' },
                        false,
                    );
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&bytes, i, hashes) {
                    state = State::Code;
                    for _ in 0..=hashes {
                        put(&mut code, &mut comments, ' ', false);
                    }
                    i += 1 + hashes as usize;
                } else {
                    put(
                        &mut code,
                        &mut comments,
                        if c == '\n' { '\n' } else { ' ' },
                        false,
                    );
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' && next.is_some() && next != Some('\n') {
                    put(&mut code, &mut comments, ' ', false);
                    put(&mut code, &mut comments, ' ', false);
                    i += 2;
                } else if c == '\n' {
                    // Char literals cannot span lines. A quote that looked
                    // like a char literal but reaches end-of-line (possible
                    // in mid-edit or invalid sources) must not swallow the
                    // rest of the file: terminate the state and keep the
                    // newline so line numbering survives.
                    state = State::Code;
                    put(&mut code, &mut comments, '\n', false);
                    i += 1;
                } else {
                    if c == '\'' {
                        state = State::Code;
                    }
                    put(&mut code, &mut comments, ' ', false);
                    i += 1;
                }
            }
        }
    }
    (code, comments)
}

/// If position `i` starts a raw(-byte) string prefix (`r"`, `r#"`,
/// `br##"`, …), return `(prefix_len, hash_count)`.
fn raw_string_hashes(bytes: &[char], i: usize) -> Option<(u32, u32)> {
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&'"') {
        Some(((j - i + 1) as u32, hashes))
    } else {
        None
    }
}

/// Whether the quote at `i` is followed by enough `#` to close a raw
/// string with `hashes` hashes.
fn closes_raw_string(bytes: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// Per-line flags marking code inside `#[cfg(test)] { … }` regions,
/// computed over masked text so braces in strings can't confuse it.
pub fn test_regions(masked: &str) -> Vec<bool> {
    let line_count = masked.lines().count();
    let mut in_test = vec![false; line_count];

    let chars: Vec<char> = masked.chars().collect();
    let mut line_of = Vec::with_capacity(chars.len());
    let mut line = 0usize;
    for &c in &chars {
        line_of.push(line);
        if c == '\n' {
            line += 1;
        }
    }

    let text: String = chars.iter().collect();
    let mut search_from = 0usize;
    while let Some(found) = text[search_from..].find("#[cfg(test)]") {
        let attr_pos = search_from + found;
        // Masked text is produced char-by-char, so byte positions from
        // `find` must be translated to char indices before walking.
        let attr_char = text[..attr_pos].chars().count();
        let mut j = attr_char;
        let mut open = None;
        while j < chars.len() {
            match chars[j] {
                '{' => {
                    open = Some(j);
                    break;
                }
                // `#[cfg(test)] mod x;` — out-of-line module, no body.
                ';' => break,
                _ => {}
            }
            j += 1;
        }
        if let Some(start) = open {
            let mut depth = 0i32;
            let mut k = start;
            while k < chars.len() {
                match chars[k] {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            let end_line = line_of.get(k).copied().unwrap_or(line_count - 1);
            let last = end_line.min(line_count.saturating_sub(1));
            for flag in &mut in_test[line_of[attr_char]..=last] {
                *flag = true;
            }
        }
        search_from = attr_pos + 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_strings_and_comments() {
        let src = "let a = \"Instant::now\"; // HashMap here\nlet b = 1;\n";
        let m = mask(src);
        assert!(!m.contains("Instant"));
        assert!(!m.contains("HashMap"));
        assert!(m.contains("let a ="));
        assert!(m.contains("let b = 1;"));
        assert_eq!(m.len(), src.len());
    }

    #[test]
    fn comment_text_is_the_complement() {
        let src = "let a = \"in a string\"; // in a comment\nlet b = 1;\n";
        let c = comment_text(src);
        assert!(c.contains("// in a comment"));
        assert!(!c.contains("in a string"));
        assert!(!c.contains("let"));
        assert_eq!(c.lines().count(), 2);
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let src = "let s = r#\"panic!(\"x\")\"#; let c = 'x'; let lt: &'static str = \"y\";\n";
        let m = mask(src);
        assert!(!m.contains("panic!"));
        assert!(m.contains("&'static str"));
    }

    #[test]
    fn masks_nested_block_comments() {
        let src = "/* outer /* SystemTime */ still comment */ fn f() {}\n";
        let m = mask(src);
        assert!(!m.contains("SystemTime"));
        assert!(m.contains("fn f() {}"));
        assert!(comment_text(src).contains("SystemTime"));
    }

    #[test]
    fn lifetimes_and_labels_survive_masking() {
        let cases = [
            "let x: &'a str = y;",
            "fn f<'a,'b>(x: &'a u8) -> &'b u8 { x }",
            "'outer: loop { break 'outer; }",
            "'l: for i in 0..n { continue 'l; }",
            "impl<'de> Visit<'de> for X {}",
            "let v: Vec<&'static str> = vec![];",
            "struct W<'a>(&'a [u8]);",
            "match c { 'a'..='z' => {} _ => {} }",
        ];
        for src in cases {
            let m = mask(src);
            assert_eq!(m.chars().count(), src.chars().count(), "{src:?} -> {m:?}");
            // No case may leak into an unterminated literal state: the
            // trailing code structure must survive.
            let last = src.chars().next_back().unwrap();
            assert_eq!(m.chars().next_back(), Some(last), "{src:?} -> {m:?}");
        }
    }

    #[test]
    fn raw_strings_with_hashes_are_masked() {
        let src = "let a = r#\"one \" quote\"#; let b = r##\"two \"# quotes\"##; let c = 1;\n";
        let m = mask(src);
        assert!(!m.contains("quote"));
        assert!(m.contains("let c = 1;"));
    }

    #[test]
    fn stray_char_literal_cannot_swallow_following_lines() {
        // Mid-edit source: the backslash makes the quote look like a char
        // literal that never closes. It must be contained to its line.
        let src = "let a = '\\x\nInstant::now();\n";
        let m = mask(src);
        assert_eq!(m.lines().count(), src.lines().count());
        assert!(
            m.contains("Instant::now();"),
            "code after a stray quote must stay visible: {m:?}"
        );
    }

    #[test]
    fn finds_test_regions() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let masked = mask(src);
        let flags = test_regions(&masked);
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }
}
