//! `cargo xtask determinism`: the runtime complement to the static
//! lint pass. Runs representative scenarios twice from the same seed
//! and checks that the two runs are indistinguishable: identical trace
//! fingerprints and identical end-to-end accounting. Both delivery
//! paths are covered — the legacy fire-and-forget drain and the acked
//! uplink transport (with a crash/reboot fault plan in the mix).

use loramon::core::{TransportConfig, UplinkModel};
use loramon::scenario::{run_scenario, ScenarioConfig};
use loramon::sim::{FaultPlan, TraceLevel};
use std::time::Duration;

/// Knobs for the double-run check.
#[derive(Debug, Clone, Copy)]
pub struct DeterminismCheck {
    /// Seed shared by both runs.
    pub seed: u64,
    /// Number of nodes in the line topology.
    pub nodes: usize,
    /// Simulated duration in seconds.
    pub secs: u64,
}

impl Default for DeterminismCheck {
    fn default() -> Self {
        DeterminismCheck {
            seed: 42,
            nodes: 6,
            secs: 600,
        }
    }
}

/// Everything compared between the two runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunDigest {
    /// Order-sensitive hash of the full trace event stream.
    pub trace_fingerprint: u64,
    /// Number of trace events.
    pub trace_len: usize,
    /// Reports accepted by the server.
    pub reports_delivered: usize,
    /// Packet records stored by the server.
    pub total_records: usize,
    /// Acked-transport counters (enqueued, retransmissions, acked);
    /// all zero on the fire-and-forget path.
    pub transport: (u64, u64, u64),
}

/// Run the scenario once and digest the observable outcome. With
/// `transport` the run uses the acked uplink transport over a lossy
/// uplink plus a random crash/reboot fault plan, so retry/backoff,
/// ack bookkeeping and fault injection are all inside the replayed
/// surface.
pub fn digest(check: &DeterminismCheck, transport: bool) -> RunDigest {
    let positions = loramon::sim::placement::line(check.nodes, 400.0);
    let mut config = ScenarioConfig::new(positions, check.nodes - 1, check.seed)
        .with_duration(Duration::from_secs(check.secs));
    config = if transport {
        config
            .with_uplink(UplinkModel::flaky(0.15, check.seed ^ 0xF1A))
            .with_transport(TransportConfig::new())
            .with_fault_plan(FaultPlan::random(
                check.seed,
                check.nodes,
                Duration::from_secs(check.secs),
                1,
            ))
    } else {
        config.with_uplink(UplinkModel::perfect())
    };
    config.trace_level = TraceLevel::Verbose;
    let result = run_scenario(&config);
    let t = result.transport.unwrap_or_default();
    RunDigest {
        trace_fingerprint: result.sim.trace().fingerprint(),
        trace_len: result.sim.trace().len(),
        reports_delivered: result.reports_delivered,
        total_records: result.server.total_records(),
        transport: (t.enqueued, t.retransmissions, t.acked),
    }
}

/// Run each delivery path twice from the same seed; `Ok` carries the
/// digests (fire-and-forget first, acked transport second) both runs
/// produced, `Err` describes the divergence.
///
/// # Errors
///
/// Returns a human-readable description when the runs diverge — which
/// means a determinism bug was introduced somewhere in
/// sim/phy/mesh/core.
pub fn double_run(check: &DeterminismCheck) -> Result<[RunDigest; 2], String> {
    let mut digests = Vec::with_capacity(2);
    for transport in [false, true] {
        let first = digest(check, transport);
        let second = digest(check, transport);
        if first != second {
            return Err(format!(
                "replay diverged for seed {} ({} path):\n  first:  {:?}\n  second: {:?}",
                check.seed,
                if transport {
                    "acked transport"
                } else {
                    "fire-and-forget"
                },
                first,
                second
            ));
        }
        digests.push(first);
    }
    let transport = digests.pop().expect("pushed above");
    let legacy = digests.pop().expect("pushed above");
    Ok([legacy, transport])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_double_run_is_identical() {
        let check = DeterminismCheck {
            seed: 7,
            nodes: 3,
            secs: 120,
        };
        let [legacy, transport] = double_run(&check).expect("replay must be deterministic");
        assert!(legacy.trace_len > 0, "verbose trace must record events");
        assert!(transport.transport.0 > 0, "transport path enqueued nothing");
    }
}
