//! `cargo xtask determinism`: the runtime complement to the static
//! lint pass. Runs one representative scenario twice from the same
//! seed and checks that the two runs are indistinguishable: identical
//! trace fingerprints and identical end-to-end accounting.

use loramon::core::UplinkModel;
use loramon::scenario::{run_scenario, ScenarioConfig};
use loramon::sim::TraceLevel;
use std::time::Duration;

/// Knobs for the double-run check.
#[derive(Debug, Clone, Copy)]
pub struct DeterminismCheck {
    /// Seed shared by both runs.
    pub seed: u64,
    /// Number of nodes in the line topology.
    pub nodes: usize,
    /// Simulated duration in seconds.
    pub secs: u64,
}

impl Default for DeterminismCheck {
    fn default() -> Self {
        DeterminismCheck {
            seed: 42,
            nodes: 6,
            secs: 600,
        }
    }
}

/// Everything compared between the two runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunDigest {
    /// Order-sensitive hash of the full trace event stream.
    pub trace_fingerprint: u64,
    /// Number of trace events.
    pub trace_len: usize,
    /// Reports accepted by the server.
    pub reports_delivered: usize,
    /// Packet records stored by the server.
    pub total_records: usize,
}

/// Run the scenario once and digest the observable outcome.
pub fn digest(check: &DeterminismCheck) -> RunDigest {
    let positions = loramon::sim::placement::line(check.nodes, 400.0);
    let mut config = ScenarioConfig::new(positions, check.nodes - 1, check.seed)
        .with_duration(Duration::from_secs(check.secs))
        .with_uplink(UplinkModel::perfect());
    config.trace_level = TraceLevel::Verbose;
    let result = run_scenario(&config);
    RunDigest {
        trace_fingerprint: result.sim.trace().fingerprint(),
        trace_len: result.sim.trace().len(),
        reports_delivered: result.reports_delivered,
        total_records: result.server.total_records(),
    }
}

/// Run twice from the same seed; `Ok` carries the digest both runs
/// produced, `Err` describes the divergence.
///
/// # Errors
///
/// Returns a human-readable description when the runs diverge — which
/// means a determinism bug was introduced somewhere in sim/phy/mesh.
pub fn double_run(check: &DeterminismCheck) -> Result<RunDigest, String> {
    let first = digest(check);
    let second = digest(check);
    if first == second {
        Ok(first)
    } else {
        Err(format!(
            "replay diverged for seed {}:\n  first:  {:?}\n  second: {:?}",
            check.seed, first, second
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_double_run_is_identical() {
        let check = DeterminismCheck {
            seed: 7,
            nodes: 3,
            secs: 120,
        };
        let digest = double_run(&check).expect("replay must be deterministic");
        assert!(digest.trace_len > 0, "verbose trace must record events");
    }
}
