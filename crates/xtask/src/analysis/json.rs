//! Minimal JSON support for the analysis pass.
//!
//! The lint engine is dependency-free on purpose (it must run before
//! anything builds), so it carries its own tiny JSON reader/writer:
//! just enough to round-trip `wire.schema.json` and to emit
//! `--format json` diagnostics. Objects preserve key order; numbers
//! are kept as their source text (the schema stores everything that
//! matters as strings anyway).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// A number, kept as its literal text.
    Number(String),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(v) => Some(v),
            _ => None,
        }
    }
}

/// Escape and quote a string for JSON output.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse a JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(text: &str) -> Result<Value, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let value = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing content at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while chars.get(*pos).is_some_and(|c| c.is_whitespace()) {
        *pos += 1;
    }
}

fn expect(chars: &[char], pos: &mut usize, c: char) -> Result<(), String> {
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{c}` at offset {pos}", pos = *pos))
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Result<Value, String> {
    skip_ws(chars, pos);
    match chars.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            loop {
                skip_ws(chars, pos);
                let key = parse_string(chars, pos)?;
                expect(chars, pos, ':')?;
                let value = parse_value(chars, pos)?;
                pairs.push((key, value));
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Value::Object(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {pos}", pos = *pos)),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(chars, pos)?);
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {pos}", pos = *pos)),
                }
            }
        }
        Some('"') => Ok(Value::Str(parse_string(chars, pos)?)),
        Some('t') if starts_with(chars, *pos, "true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some('f') if starts_with(chars, *pos, "false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some('n') if starts_with(chars, *pos, "null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(c) if *c == '-' || c.is_ascii_digit() => {
            let start = *pos;
            *pos += 1;
            while chars
                .get(*pos)
                .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
            {
                *pos += 1;
            }
            Ok(Value::Number(chars[start..*pos].iter().collect()))
        }
        _ => Err(format!("unexpected character at offset {pos}", pos = *pos)),
    }
}

fn starts_with(chars: &[char], pos: usize, word: &str) -> bool {
    word.chars()
        .enumerate()
        .all(|(k, c)| chars.get(pos + k) == Some(&c))
}

fn parse_string(chars: &[char], pos: &mut usize) -> Result<String, String> {
    if chars.get(*pos) != Some(&'"') {
        return Err(format!("expected string at offset {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match chars.get(*pos) {
            Some('"') => {
                *pos += 1;
                return Ok(out);
            }
            Some('\\') => {
                *pos += 1;
                match chars.get(*pos) {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let hex: String = chars
                            .get(*pos + 1..*pos + 5)
                            .unwrap_or(&[])
                            .iter()
                            .collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape at offset {pos}", pos = *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(c) => {
                out.push(*c);
                *pos += 1;
            }
            None => return Err("unterminated string".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_objects_arrays_and_scalars() {
        let v = parse(r#"{"a": [1, "x", true, null], "b": {"c": -2.5}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(
            v.get("b").unwrap().get("c"),
            Some(&Value::Number("-2.5".into()))
        );
    }

    #[test]
    fn preserves_key_order() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a"]);
    }

    #[test]
    fn roundtrips_escapes() {
        let v = parse(&format!("{{{}: {}}}", quote("k\"ey"), quote("a\\b\nc"))).unwrap();
        assert_eq!(v.get("k\"ey").unwrap().as_str(), Some("a\\b\nc"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"x", "{\"a\" 1}", "tru", "{} extra"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn quote_escapes_controls() {
        assert_eq!(quote("a\"b"), "\"a\\\"b\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }
}
