//! The crate-layering gate.
//!
//! The workspace is a strict layer cake:
//!
//! ```text
//! phy < sim < mesh < core < server < dashboard
//! ```
//!
//! plus the root `loramon` package (the scenario driver, above
//! everything), `loramon-bench` and `xtask` (tooling, above the root).
//! A crate may depend only on strictly lower layers. Two edges are
//! additionally *restricted*: `server` and `dashboard` may use only the
//! simulator's vocabulary types (`NodeId`, `SimTime`) — never its
//! machinery — and `dashboard` may read only the server's query/result
//! surface, not its ingest or mutation API.
//!
//! The gate enforces the direction twice: over `Cargo.toml`
//! `[dependencies]` sections (`layering-cargo`) and over every
//! `loramon*::` path in non-test sources (`layering-import`,
//! `layering-restricted`). A crate referencing an allowed layer it
//! never declared (e.g. leaking a dev-dependency into library code) is
//! `layering-undeclared`.

use super::lex::{Tok, TokKind};
use super::Finding;
use crate::lint::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};

/// Rule id: a `Cargo.toml` dependency against the layering.
pub const LAYERING_CARGO: &str = "layering-cargo";
/// Rule id: a source import against the layering.
pub const LAYERING_IMPORT: &str = "layering-import";
/// Rule id: a source import over a restricted edge outside its allowlist.
pub const LAYERING_RESTRICTED: &str = "layering-restricted";
/// Rule id: a source import of an allowed crate that Cargo.toml does not declare.
pub const LAYERING_UNDECLARED: &str = "layering-undeclared";

/// One workspace crate and its allowed internal dependencies.
#[derive(Debug, Clone, Copy)]
pub struct CrateInfo {
    /// Source directory prefix, workspace-relative (`crates/phy` or `src`).
    pub dir: &'static str,
    /// Crate name as it appears in paths (underscored).
    pub name: &'static str,
    /// Manifest path, workspace-relative.
    pub manifest: &'static str,
    /// Internal crates this one may depend on (underscored names).
    pub deps: &'static [&'static str],
    /// Per-dependency item allowlists: `(dep, allowed first path
    /// segments)`. A dep absent from this list is unrestricted.
    pub restricted: &'static [(&'static str, &'static [&'static str])],
}

/// Vocabulary types the upper layers may take from the simulator: the
/// node identity and the clock, nothing else. Everything above the
/// simulator speaks in terms of these; the simulator's machinery
/// (`Simulator`, `Channel`, `Rng`, fault plans) stays below `core`.
const SIM_VOCABULARY: &[&str] = &["NodeId", "SimTime"];

/// The server's query/read surface — what a renderer may consume.
/// Ingest, configuration and the live `MonitorServer` object are not
/// part of it (the one sanctioned exception carries a reasoned
/// `lint:allow` in `crates/dashboard/src/html.rs`).
const SERVER_QUERY_SURFACE: &[&str] = &[
    "Alert",
    "AlertKind",
    "HealthLevel",
    "LinkDelivery",
    "LinkStats",
    "NodeHealth",
    "NodeSummary",
    "RollupPoint",
    "SeriesPoint",
    "StatusPoint",
    "Topology",
    "Window",
];

/// The workspace layering table, lowest layer first.
pub const CRATES: &[CrateInfo] = &[
    CrateInfo {
        dir: "crates/phy",
        name: "loramon_phy",
        manifest: "crates/phy/Cargo.toml",
        deps: &[],
        restricted: &[],
    },
    CrateInfo {
        dir: "crates/sim",
        name: "loramon_sim",
        manifest: "crates/sim/Cargo.toml",
        deps: &["loramon_phy"],
        restricted: &[],
    },
    CrateInfo {
        dir: "crates/mesh",
        name: "loramon_mesh",
        manifest: "crates/mesh/Cargo.toml",
        deps: &["loramon_phy", "loramon_sim"],
        restricted: &[],
    },
    CrateInfo {
        dir: "crates/core",
        name: "loramon_core",
        manifest: "crates/core/Cargo.toml",
        deps: &["loramon_phy", "loramon_sim", "loramon_mesh"],
        restricted: &[],
    },
    CrateInfo {
        dir: "crates/server",
        name: "loramon_server",
        manifest: "crates/server/Cargo.toml",
        deps: &["loramon_phy", "loramon_sim", "loramon_mesh", "loramon_core"],
        restricted: &[("loramon_sim", SIM_VOCABULARY)],
    },
    CrateInfo {
        dir: "crates/dashboard",
        name: "loramon_dashboard",
        manifest: "crates/dashboard/Cargo.toml",
        deps: &[
            "loramon_phy",
            "loramon_sim",
            "loramon_mesh",
            "loramon_core",
            "loramon_server",
        ],
        restricted: &[
            ("loramon_sim", SIM_VOCABULARY),
            ("loramon_server", SERVER_QUERY_SURFACE),
        ],
    },
    CrateInfo {
        dir: "src",
        name: "loramon",
        manifest: "Cargo.toml",
        deps: &[
            "loramon_phy",
            "loramon_sim",
            "loramon_mesh",
            "loramon_core",
            "loramon_server",
            "loramon_dashboard",
        ],
        restricted: &[],
    },
    CrateInfo {
        dir: "crates/bench",
        name: "loramon_bench",
        manifest: "crates/bench/Cargo.toml",
        deps: &[
            "loramon",
            "loramon_phy",
            "loramon_sim",
            "loramon_mesh",
            "loramon_core",
            "loramon_server",
            "loramon_dashboard",
        ],
        restricted: &[],
    },
    CrateInfo {
        dir: "crates/xtask",
        name: "xtask",
        manifest: "crates/xtask/Cargo.toml",
        deps: &["loramon"],
        restricted: &[],
    },
];

/// The crate owning a workspace-relative source path, per the table.
pub fn crate_for_path(rel: &str) -> Option<&'static CrateInfo> {
    CRATES
        .iter()
        .filter(|c| rel.starts_with(&format!("{}/", c.dir)) || rel == c.dir)
        .max_by_key(|c| c.dir.len())
}

/// Whether an identifier names a workspace crate (in path position).
fn internal_crate(name: &str) -> bool {
    name == "loramon" || name.starts_with("loramon_") || name == "xtask"
}

/// Declared internal `[dependencies]` of every crate, keyed by crate
/// name, read from the manifests. Used for the `layering-undeclared`
/// check; files of crates absent from the map skip that check.
pub type DeclaredDeps = BTreeMap<&'static str, BTreeSet<String>>;

/// Parse the internal crates out of a manifest's `[dependencies]`
/// section (dev- and build-dependencies deliberately exempt: tests may
/// reach across layers).
pub fn declared_internal_deps(manifest: &str) -> BTreeSet<String> {
    parse_dependency_lines(manifest)
        .into_iter()
        .map(|(name, _)| name)
        .collect()
}

/// `(underscored dep name, 1-based line)` for every internal dependency
/// in the `[dependencies]` section.
fn parse_dependency_lines(manifest: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for (idx, line) in manifest.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with('[') {
            in_deps = trimmed == "[dependencies]";
            continue;
        }
        if !in_deps || trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let key: String = trimmed
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '-' || *c == '_')
            .collect();
        let name = key.replace('-', "_");
        if internal_crate(&name) {
            out.push((name, idx + 1));
        }
    }
    out
}

/// Check one manifest against the layering table, emitting
/// `layering-cargo` diagnostics (file = the manifest path).
pub fn manifest_diagnostics(info: &CrateInfo, manifest: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (dep, line) in parse_dependency_lines(manifest) {
        if dep != info.name && !info.deps.contains(&dep.as_str()) {
            out.push(Diagnostic {
                file: info.manifest.to_string(),
                line,
                rule: LAYERING_CARGO.to_string(),
                message: format!(
                    "`{}` must not depend on `{}`: the workspace layers are \
                     phy < sim < mesh < core < server < dashboard (allowed here: {})",
                    info.name,
                    dep,
                    allowed_list(info)
                ),
            });
        }
    }
    out
}

fn allowed_list(info: &CrateInfo) -> String {
    if info.deps.is_empty() {
        "no internal crates".to_string()
    } else {
        info.deps.join(", ")
    }
}

/// Scan a file's tokens for `loramon*::` paths and check each against
/// the layering table (and, when `declared` covers the crate, against
/// its manifest). Test code must be filtered by the caller via the
/// returned line numbers.
pub fn check_tokens(rel: &str, toks: &[Tok], declared: Option<&DeclaredDeps>) -> Vec<Finding> {
    let Some(info) = crate_for_path(rel) else {
        return Vec::new();
    };
    let declared_here = declared.and_then(|d| d.get(info.name));
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !internal_crate(&t.text) || t.text == info.name {
            i += 1;
            continue;
        }
        // Only path-position references count: `loramon_x::…`, or a
        // bare `use loramon_x;`/`pub use … as loramon_x` style mention
        // immediately after `use`/`crate` keywords.
        let is_path = toks.get(i + 1).is_some_and(|n| n.kind == TokKind::PathSep);
        let after_use = i > 0
            && toks
                .get(i - 1)
                .is_some_and(|p| p.is_ident("use") || p.is_ident("extern"));
        if !is_path && !after_use {
            i += 1;
            continue;
        }
        let dep = t.text.clone();
        let line = t.line;
        if !info.deps.contains(&dep.as_str()) {
            out.push((
                line,
                LAYERING_IMPORT,
                format!(
                    "`{}` must not import `{dep}`: the workspace layers are \
                     phy < sim < mesh < core < server < dashboard (allowed here: {})",
                    info.name,
                    allowed_list(info)
                ),
            ));
            i += 1;
            continue;
        }
        if let Some(set) = declared_here {
            if !set.contains(&dep) {
                out.push((
                    line,
                    LAYERING_UNDECLARED,
                    format!(
                        "`{dep}` is used here but not declared under [dependencies] in {}",
                        info.manifest
                    ),
                ));
            }
        }
        if let Some((_, allowed)) = info
            .restricted
            .iter()
            .find(|(restricted_dep, _)| *restricted_dep == dep)
        {
            for (segment, seg_line) in first_segments(toks, i + 1) {
                if !allowed.contains(&segment.as_str()) {
                    out.push((
                        seg_line,
                        LAYERING_RESTRICTED,
                        format!(
                            "`{}` may use only {{{}}} from `{dep}`; `{segment}` crosses the \
                             layer boundary",
                            info.name,
                            allowed.join(", ")
                        ),
                    ));
                }
            }
        }
        i += 1;
    }
    out
}

/// The first path segments referenced after the crate name at `i`
/// (which is followed by `::`): a single ident, or each element of a
/// `{...}` use-group, or `*` for a glob.
fn first_segments(toks: &[Tok], path_sep: usize) -> Vec<(String, usize)> {
    if !toks
        .get(path_sep)
        .is_some_and(|t| t.kind == TokKind::PathSep)
    {
        return Vec::new();
    }
    let mut i = path_sep + 1;
    match toks.get(i) {
        Some(t) if t.kind == TokKind::Ident => vec![(t.text.clone(), t.line)],
        Some(t) if t.is_punct('*') => vec![("*".to_string(), t.line)],
        Some(t) if t.is_punct('{') => {
            // Collect the first ident (or `*`) of every top-level
            // element of the group.
            let mut out = Vec::new();
            let mut depth = 1usize;
            let mut element_head = true;
            i += 1;
            while let Some(t) = toks.get(i) {
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.is_punct(',') {
                    if depth == 1 {
                        element_head = true;
                    }
                } else if element_head && depth == 1 {
                    if t.kind == TokKind::Ident || t.is_punct('*') {
                        out.push((t.text.clone(), t.line));
                    }
                    element_head = false;
                }
                i += 1;
            }
            out
        }
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::lex::lex;
    use crate::lint::scanner::mask;

    fn findings(rel: &str, src: &str) -> Vec<Finding> {
        check_tokens(rel, &lex(&mask(src)), None)
    }

    #[test]
    fn table_is_a_strict_layering() {
        // Every allowed dep must itself be a lower-indexed crate (no
        // cycles), and within the product crates the allowed sets are
        // transitively closed. `xtask` is tooling: it sees only the
        // `loramon` facade on purpose, so transitivity stops there.
        for (idx, c) in CRATES.iter().enumerate() {
            for dep in c.deps {
                let dep_idx = CRATES
                    .iter()
                    .position(|o| o.name == *dep)
                    .unwrap_or_else(|| panic!("{dep} missing from table"));
                assert!(dep_idx < idx, "{} -> {dep} is not downward", c.name);
                if c.name == "xtask" {
                    continue;
                }
                for transitive in CRATES[dep_idx].deps {
                    assert!(
                        c.deps.contains(transitive),
                        "{} allows {dep} but not its dep {transitive}",
                        c.name
                    );
                }
            }
        }
    }

    #[test]
    fn crate_for_path_resolves_dirs() {
        assert_eq!(
            crate_for_path("crates/phy/src/adr.rs").unwrap().name,
            "loramon_phy"
        );
        assert_eq!(crate_for_path("src/scenario.rs").unwrap().name, "loramon");
        assert_eq!(
            crate_for_path("src/bin/loramon.rs").unwrap().name,
            "loramon"
        );
        assert_eq!(
            crate_for_path("crates/xtask/src/main.rs").unwrap().name,
            "xtask"
        );
        assert!(crate_for_path("tests/determinism.rs").is_none());
    }

    #[test]
    fn upward_import_is_flagged_with_line() {
        let src = "//! Doc.\nuse loramon_server::MonitorServer;\n";
        let f = findings("crates/phy/src/bad.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].0, f[0].1), (2, LAYERING_IMPORT));
    }

    #[test]
    fn downward_import_is_clean() {
        assert!(findings("crates/mesh/src/ok.rs", "use loramon_phy::RadioConfig;\n").is_empty());
        assert!(findings("crates/server/src/ok.rs", "use loramon_core::Report;\n").is_empty());
    }

    #[test]
    fn restricted_edge_allows_vocabulary_only() {
        let ok = findings(
            "crates/server/src/ok.rs",
            "use loramon_sim::{NodeId, SimTime};\nfn f(t: loramon_sim::SimTime) {}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
        let bad = findings(
            "crates/server/src/bad.rs",
            "use loramon_sim::{NodeId, Rng};\n",
        );
        assert_eq!(bad.len(), 1);
        assert_eq!((bad[0].0, bad[0].1), (1, LAYERING_RESTRICTED));
        assert!(bad[0].2.contains("`Rng`"));
    }

    #[test]
    fn glob_over_restricted_edge_is_flagged() {
        let f = findings("crates/dashboard/src/bad.rs", "use loramon_sim::*;\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].1, LAYERING_RESTRICTED);
    }

    #[test]
    fn dashboard_reads_only_query_types() {
        let ok = findings(
            "crates/dashboard/src/ok.rs",
            "use loramon_server::{Alert, Topology};\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
        let bad = findings(
            "crates/dashboard/src/bad.rs",
            "use loramon_server::MonitorServer;\n",
        );
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].1, LAYERING_RESTRICTED);
    }

    #[test]
    fn undeclared_dep_is_flagged_when_manifest_known() {
        let mut declared = DeclaredDeps::new();
        declared.insert("loramon_mesh", BTreeSet::from(["loramon_phy".to_string()]));
        let toks = lex(&mask("use loramon_sim::NodeId;\n"));
        let f = check_tokens("crates/mesh/src/x.rs", &toks, Some(&declared));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].1, LAYERING_UNDECLARED);
    }

    #[test]
    fn manifest_upward_dep_is_flagged() {
        let info = CRATES.iter().find(|c| c.name == "loramon_phy").unwrap();
        let manifest = "[package]\nname = \"loramon-phy\"\n\n[dependencies]\nserde.workspace = true\nloramon-server.workspace = true\n\n[dev-dependencies]\nloramon-sim.workspace = true\n";
        let d = manifest_diagnostics(info, manifest);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, LAYERING_CARGO);
        assert_eq!(d[0].line, 6);
        assert_eq!(d[0].file, "crates/phy/Cargo.toml");
    }

    #[test]
    fn mentions_in_strings_and_comments_do_not_count() {
        let src = "// loramon_server::MonitorServer in prose\nlet s = \"loramon_server::X\";\n";
        assert!(findings("crates/phy/src/ok.rs", src).is_empty());
    }
}
