//! Item-aware structural analysis for `cargo xtask lint`.
//!
//! Layered on the lint scanner's masked view of each source file:
//!
//! ```text
//! source ──mask──▶ masked text ──lex──▶ tokens ──items──▶ item spans
//!                       │                  │                  │
//!                  pattern rules      panic_surface        layering
//!                  (lint::rules)      slice-index /        import gate
//!                                     as-truncation            │
//!                                                           schema
//!                                                      wire-schema lock
//! ```
//!
//! Everything here is dependency-free and line-number-preserving: the
//! scanner blanks literals and comments in place, the lexer keeps
//! 1-based lines on every token, and the item parser only recognizes
//! items in item position so findings always anchor to real source
//! lines. [`json`] is the self-contained reader/writer behind the
//! committed `wire.schema.json` baseline and `--format json` output.

pub mod items;
pub mod json;
pub mod layering;
pub mod lex;
pub mod panic_surface;
pub mod schema;

/// A token-level finding before allow-filtering: `(line, rule id,
/// message)`. The lint engine routes these through the `lint:allow`
/// machinery and test-code scoping.
pub type Finding = (usize, &'static str, String);
