//! Token-level panic-surface rules.
//!
//! The no-panic scope (server, core, and the root scenario driver —
//! code a deployed monitoring server actually runs) already bans
//! `unwrap`/`expect`/`panic!`. Two quieter panic/corruption sources
//! remain visible only at the token level:
//!
//! - **`slice-index`** — `expr[...]` indexing panics on out-of-range;
//!   report decoding must use `get`/iterators or carry a reasoned
//!   `lint:allow` proving the bound.
//! - **`as-truncation`** — `expr as u8/u16/u32/i8/i16/i32` silently
//!   wraps; wire counters must use `try_from` with an explicit
//!   saturation/error policy instead.
//!
//! Widening or same-width casts (`as u64`, `as usize`, `as f64`) are
//! deliberately out of scope: they cannot lose integer range on the
//! 64-bit targets this workspace supports.

use super::lex::{Tok, TokKind};
use super::Finding;

/// Rule id: panicking slice/array indexing.
pub const SLICE_INDEX: &str = "slice-index";
/// Rule id: truncating `as` integer cast.
pub const AS_TRUNCATION: &str = "as-truncation";

/// Keywords after which a `[` starts an expression or pattern, not an
/// index into the preceding value.
const NON_VALUE_KEYWORDS: &[&str] = &[
    "as", "box", "break", "continue", "crate", "dyn", "else", "enum", "extern", "fn", "for", "if",
    "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "self",
    "static", "struct", "trait", "type", "unsafe", "use", "where", "while",
];

/// Target widths a cast can truncate into.
const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Scan a token stream for panic-surface findings. The caller filters
/// test code by line and routes findings through the `lint:allow`
/// machinery.
pub fn check(toks: &[Tok]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('[') {
            if let Some(prev) = i.checked_sub(1).and_then(|p| toks.get(p)) {
                let indexes_value = match prev.kind {
                    TokKind::Ident => {
                        !NON_VALUE_KEYWORDS.contains(&prev.text.as_str())
                            // `self` as a receiver (`self[i]`) never occurs
                            // here, but `self.buf[i]` ends on an Ident anyway.
                            && prev.text != "Self"
                    }
                    TokKind::Punct => matches!(prev.text.as_str(), "]" | ")" | "?"),
                    _ => false,
                };
                if indexes_value {
                    out.push((
                        t.line,
                        SLICE_INDEX,
                        format!(
                            "indexing after `{}` can panic out-of-range; use `get`/iterators \
                             or add a reasoned lint:allow proving the bound",
                            prev.text
                        ),
                    ));
                }
            }
        } else if t.is_ident("as") {
            // `expr as u32` — only when the left side is a value (an
            // ident, number, `)`, `]` or `?`), so `use x as y` and
            // trait casts don't trip.
            let value_lhs =
                i.checked_sub(1)
                    .and_then(|p| toks.get(p))
                    .is_some_and(|p| match p.kind {
                        TokKind::Ident => !NON_VALUE_KEYWORDS.contains(&p.text.as_str()),
                        TokKind::Number => true,
                        TokKind::Punct => matches!(p.text.as_str(), ")" | "]" | "?"),
                        _ => false,
                    });
            if let Some(target) = toks.get(i + 1) {
                if value_lhs
                    && target.kind == TokKind::Ident
                    && NARROW_INTS.contains(&target.text.as_str())
                {
                    out.push((
                        t.line,
                        AS_TRUNCATION,
                        format!(
                            "`as {}` silently truncates; use `{}::try_from` with an explicit \
                             saturation or error policy",
                            target.text, target.text
                        ),
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::lex::lex;
    use crate::lint::scanner::mask;

    fn findings(src: &str) -> Vec<Finding> {
        check(&lex(&mask(src)))
    }

    #[test]
    fn flags_slice_indexing() {
        let f = findings("let x = buf[4];\nlet y = self.fields[i + 1];\n");
        assert_eq!(f.len(), 2);
        assert_eq!((f[0].0, f[0].1), (1, SLICE_INDEX));
        assert_eq!(f[1].0, 2);
    }

    #[test]
    fn flags_indexing_after_call_and_try() {
        let f = findings("let a = decode(x)?[0];\nlet b = grid[r][c];\n");
        // `?[`, `ident[` and `][` all index values.
        assert_eq!(f.len(), 3, "{f:?}");
    }

    #[test]
    fn array_types_and_literals_are_not_indexing() {
        let clean = "let a: [u8; 4] = [0; 4];\nfn f(x: &[u8]) -> Vec<[u8; 2]> { vec![] }\nstatic T: [u8; 1] = [9];\nlet m = matches!(x, [1, ..]);\nfor [a, b] in pairs {}\nlet s = &buf[..];\n";
        let f = findings(clean);
        // `&buf[..]` is still indexing (range-indexing a value); the
        // rest must be clean.
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].0, 6);
    }

    #[test]
    fn vec_macro_is_not_indexing() {
        assert!(findings("let v = vec![1, 2];\n").is_empty());
    }

    #[test]
    fn flags_truncating_casts_only() {
        let f = findings(
            "let a = n as u32;\nlet b = n as u64;\nlet c = n as usize;\nlet d = x.len() as u16;\nlet e = n as f64;\nlet g = 300 as u8;\n",
        );
        let lines: Vec<usize> = f.iter().map(|x| x.0).collect();
        assert_eq!(lines, vec![1, 4, 6], "{f:?}");
        assert!(f.iter().all(|x| x.1 == AS_TRUNCATION));
    }

    #[test]
    fn use_alias_is_not_a_cast() {
        assert!(
            findings("use std::io::Result as IoResult;\npub use loramon_core as core;\n")
                .is_empty()
        );
    }
}
