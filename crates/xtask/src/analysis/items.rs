//! Lightweight item parser over the token stream.
//!
//! Consumes the output of [`super::lex`] and recovers the item-level
//! structure the analyses need: `fn`/`struct`/`enum`/`impl`/`mod`
//! spans, `use` declarations expanded to leaf paths, struct fields and
//! enum variants with canonical type strings, and `const` items. It is
//! *not* a Rust parser: expressions are skipped as balanced token
//! groups, items are only recognized in item position (top level and
//! inside `mod`/`impl`/`trait` bodies, never inside `fn` bodies), and
//! anything unrecognized is skipped one token at a time. The parser
//! must never panic or loop on arbitrary input — the lint engine runs
//! over mid-edit sources.

use super::lex::{Tok, TokKind};

/// What kind of item a span describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A function (free or associated).
    Fn,
    /// A struct definition.
    Struct,
    /// An enum definition.
    Enum,
    /// An `impl` block.
    Impl,
    /// An inline or out-of-line module.
    Mod,
    /// A trait definition.
    Trait,
    /// A `use` declaration.
    Use,
    /// A `const` or `static` item.
    Const,
    /// A `type` alias.
    TypeAlias,
}

/// One parsed item span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// Item classification.
    pub kind: ItemKind,
    /// Item name (`impl` blocks use the implemented type's first path
    /// segment; anonymous items use `_`).
    pub name: String,
    /// 1-based line the item starts on (its keyword token).
    pub line: usize,
    /// 1-based line the item ends on (closing brace or semicolon).
    pub end_line: usize,
    /// Whether the item is `pub` (any visibility restriction counts).
    pub public: bool,
}

/// One named (or tuple-positional) field of a struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name; tuple fields are named by position (`0`, `1`, …).
    pub name: String,
    /// Canonical type text (see [`render_tokens`]).
    pub ty: String,
    /// 1-based line of the field.
    pub line: usize,
}

/// A parsed struct definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: usize,
    /// Whether the struct is `pub`.
    pub public: bool,
    /// Whether a `#[derive(...)]`/attribute on it mentions serde
    /// (`Serialize`/`Deserialize`/`serde`).
    pub serde: bool,
    /// Fields in declaration order.
    pub fields: Vec<Field>,
}

/// One enum variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// Canonical payload text (`(u8)`, `{ a: u8 }`), if any.
    pub payload: Option<String>,
    /// 1-based line of the variant.
    pub line: usize,
}

/// A parsed enum definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: usize,
    /// Whether the enum is `pub`.
    pub public: bool,
    /// Whether an attribute on it mentions serde.
    pub serde: bool,
    /// Variants in declaration order.
    pub variants: Vec<Variant>,
}

/// A parsed `const`/`static` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstDef {
    /// Item name.
    pub name: String,
    /// 1-based line of the declaration.
    pub line: usize,
    /// 1-based line of the terminating semicolon.
    pub end_line: usize,
    /// Whether the item is `pub`.
    pub public: bool,
    /// Canonical type text.
    pub ty: String,
}

/// One expanded leaf of a `use` tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsePath {
    /// Path segments, e.g. `["loramon_sim", "NodeId"]`. A glob import
    /// ends with `*`.
    pub segments: Vec<String>,
    /// 1-based line of the leaf.
    pub line: usize,
}

/// Everything recovered from one file.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ParsedFile {
    /// Flat list of item spans, in source order (nested items included).
    pub items: Vec<Item>,
    /// Struct definitions, in source order.
    pub structs: Vec<StructDef>,
    /// Enum definitions, in source order.
    pub enums: Vec<EnumDef>,
    /// Const/static items, in source order.
    pub consts: Vec<ConstDef>,
    /// `use` declarations expanded to leaf paths.
    pub uses: Vec<UsePath>,
}

/// Parse a lexed (masked) file into its item structure.
pub fn parse(toks: &[Tok]) -> ParsedFile {
    let mut out = ParsedFile::default();
    let mut i = 0usize;
    parse_items(toks, &mut i, &mut out, 0);
    out
}

/// Join tokens into a canonical type/payload string: spaces between
/// word-like tokens and after commas/semicolons, none elsewhere.
pub fn render_tokens(toks: &[Tok]) -> String {
    let mut s = String::new();
    let wordish = |t: &Tok| matches!(t.kind, TokKind::Ident | TokKind::Number | TokKind::Lifetime);
    for (k, t) in toks.iter().enumerate() {
        if k > 0 {
            let prev = &toks[k - 1];
            if (wordish(prev) && wordish(t)) || prev.is_punct(',') || prev.is_punct(';') {
                s.push(' ');
            }
        }
        s.push_str(&t.text);
    }
    s
}

const OPEN: [char; 3] = ['(', '[', '{'];
const CLOSE: [char; 3] = [')', ']', '}'];

fn is_open(t: &Tok) -> bool {
    OPEN.iter().any(|&c| t.is_punct(c))
}

fn is_close(t: &Tok) -> bool {
    CLOSE.iter().any(|&c| t.is_punct(c))
}

/// Advance past one balanced bracket group starting at the opener at
/// `*i`; on malformed input, stops at end of tokens.
fn skip_group(toks: &[Tok], i: &mut usize) {
    let mut depth = 0usize;
    while *i < toks.len() {
        let t = &toks[*i];
        if is_open(t) {
            depth += 1;
        } else if is_close(t) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                *i += 1;
                return;
            }
        }
        *i += 1;
    }
}

/// Skip a generics group `<...>` if one starts at `*i`. `->` arrows do
/// not occur in generic parameter lists, so `<`/`>` counting suffices.
fn skip_generics(toks: &[Tok], i: &mut usize) {
    if !toks.get(*i).is_some_and(|t| t.is_punct('<')) {
        return;
    }
    let mut depth = 0isize;
    while *i < toks.len() {
        let t = &toks[*i];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
            if depth <= 0 {
                *i += 1;
                return;
            }
        } else if is_open(t) {
            skip_group(toks, i);
            continue;
        }
        *i += 1;
    }
}

/// Collect type tokens until a `,` at nesting depth 0 or the end of the
/// enclosing group. Understands `<...>` nesting and skips `->` arrows.
fn take_type(toks: &[Tok], i: &mut usize) -> Vec<Tok> {
    let mut ty = Vec::new();
    let mut angle = 0isize;
    let mut depth = 0isize;
    while *i < toks.len() {
        let t = &toks[*i];
        if t.is_punct('-') && toks.get(*i + 1).is_some_and(|n| n.is_punct('>')) {
            ty.push(t.clone());
            ty.push(toks[*i + 1].clone());
            *i += 2;
            continue;
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if is_open(t) {
            depth += 1;
        } else if is_close(t) {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if (t.is_punct(',') || t.is_punct(';') || t.is_punct('='))
            && depth == 0
            && angle <= 0
        {
            break;
        }
        ty.push(t.clone());
        *i += 1;
    }
    ty
}

/// Whether a run of attribute tokens mentions serde.
fn attr_mentions_serde(toks: &[Tok]) -> bool {
    toks.iter().any(|t| {
        t.kind == TokKind::Ident && matches!(t.text.as_str(), "Serialize" | "Deserialize" | "serde")
    })
}

/// Parse items until the matching `}` of the current item context (or
/// end of input at nesting 0). `depth` guards against runaway recursion
/// on pathological input.
fn parse_items(toks: &[Tok], i: &mut usize, out: &mut ParsedFile, depth: usize) {
    let mut serde_attr = false;
    while *i < toks.len() {
        let t = &toks[*i];
        // End of the enclosing mod/impl/trait body.
        if t.is_punct('}') {
            return;
        }
        // Attribute: `#` `[...]` or `#` `!` `[...]`.
        if t.is_punct('#') {
            *i += 1;
            if toks.get(*i).is_some_and(|t| t.is_punct('!')) {
                *i += 1;
            }
            let start = *i;
            if toks.get(*i).is_some_and(|t| t.is_punct('[')) {
                skip_group(toks, i);
                serde_attr |= attr_mentions_serde(toks.get(start..*i).unwrap_or(&[]));
            }
            continue;
        }
        if t.kind != TokKind::Ident {
            *i += 1;
            continue;
        }
        let line = t.line;
        let mut public = false;
        let mut j = *i;
        if toks[j].is_ident("pub") {
            public = true;
            j += 1;
            if toks.get(j).is_some_and(|t| t.is_punct('(')) {
                skip_group(toks, &mut j);
            }
        }
        // Skip item qualifiers.
        while toks.get(j).is_some_and(|t| {
            ["unsafe", "async", "default", "extern"]
                .iter()
                .any(|q| t.is_ident(q))
        }) {
            j += 1;
        }
        let Some(kw) = toks.get(j) else {
            return;
        };
        let kw_text = if kw.kind == TokKind::Ident {
            kw.text.as_str()
        } else {
            ""
        };
        match kw_text {
            "fn" => {
                *i = j + 1;
                let name = ident_at(toks, *i).unwrap_or_else(|| "_".into());
                // Scan to the body `{` (or `;` for a bare signature),
                // skipping balanced groups so closures/defaults in the
                // signature cannot fool us.
                while *i < toks.len() {
                    let t = &toks[*i];
                    if t.is_punct('{') {
                        let start_line = t.line;
                        skip_group(toks, i);
                        let end_line = toks.get(i.saturating_sub(1)).map_or(start_line, |t| t.line);
                        out.items.push(Item {
                            kind: ItemKind::Fn,
                            name,
                            line,
                            end_line,
                            public,
                        });
                        break;
                    }
                    if t.is_punct(';') {
                        out.items.push(Item {
                            kind: ItemKind::Fn,
                            name,
                            line,
                            end_line: t.line,
                            public,
                        });
                        *i += 1;
                        break;
                    }
                    if t.is_punct('(') {
                        skip_group(toks, i);
                        continue;
                    }
                    *i += 1;
                }
            }
            "struct" => {
                *i = j + 1;
                let name = ident_at(toks, *i).unwrap_or_else(|| "_".into());
                if ident_at(toks, *i).is_some() {
                    *i += 1;
                }
                skip_generics(toks, i);
                // Optional where clause before the body.
                while toks
                    .get(*i)
                    .is_some_and(|t| !t.is_punct('{') && !t.is_punct('(') && !t.is_punct(';'))
                {
                    *i += 1;
                }
                let mut def = StructDef {
                    name,
                    line,
                    public,
                    serde: serde_attr,
                    fields: Vec::new(),
                };
                let end_line = match toks.get(*i) {
                    Some(t) if t.is_punct('{') => {
                        *i += 1;
                        parse_named_fields(toks, i, &mut def.fields);
                        toks.get(i.saturating_sub(1)).map_or(line, |t| t.line)
                    }
                    Some(t) if t.is_punct('(') => {
                        *i += 1;
                        parse_tuple_fields(toks, i, &mut def.fields);
                        // Trailing `;`.
                        if toks.get(*i).is_some_and(|t| t.is_punct(';')) {
                            *i += 1;
                        }
                        toks.get(i.saturating_sub(1)).map_or(line, |t| t.line)
                    }
                    Some(t) if t.is_punct(';') => {
                        *i += 1;
                        t.line
                    }
                    _ => line,
                };
                out.items.push(Item {
                    kind: ItemKind::Struct,
                    name: def.name.clone(),
                    line,
                    end_line,
                    public,
                });
                out.structs.push(def);
            }
            "enum" => {
                *i = j + 1;
                let name = ident_at(toks, *i).unwrap_or_else(|| "_".into());
                if ident_at(toks, *i).is_some() {
                    *i += 1;
                }
                skip_generics(toks, i);
                while toks
                    .get(*i)
                    .is_some_and(|t| !t.is_punct('{') && !t.is_punct(';'))
                {
                    *i += 1;
                }
                let mut def = EnumDef {
                    name,
                    line,
                    public,
                    serde: serde_attr,
                    variants: Vec::new(),
                };
                if toks.get(*i).is_some_and(|t| t.is_punct('{')) {
                    *i += 1;
                    parse_variants(toks, i, &mut def.variants);
                }
                let end_line = toks.get(i.saturating_sub(1)).map_or(line, |t| t.line);
                out.items.push(Item {
                    kind: ItemKind::Enum,
                    name: def.name.clone(),
                    line,
                    end_line,
                    public,
                });
                out.enums.push(def);
            }
            "impl" | "mod" | "trait" => {
                let kind = match kw_text {
                    "impl" => ItemKind::Impl,
                    "mod" => ItemKind::Mod,
                    _ => ItemKind::Trait,
                };
                *i = j + 1;
                skip_generics(toks, i);
                let name = ident_at(toks, *i).unwrap_or_else(|| "_".into());
                // Scan to the body `{` or `;`, skipping groups (the
                // impl header may contain parenthesized types).
                while *i < toks.len() {
                    let t = &toks[*i];
                    if t.is_punct('{') {
                        *i += 1;
                        let body_start = out.items.len();
                        if depth < 64 {
                            parse_items(toks, i, out, depth + 1);
                        } else {
                            skip_to_close(toks, i);
                        }
                        // Consume the closing `}`.
                        let end_line = toks.get(*i).map_or(line, |t| t.line);
                        if toks.get(*i).is_some_and(|t| t.is_punct('}')) {
                            *i += 1;
                        }
                        out.items.insert(
                            body_start,
                            Item {
                                kind,
                                name,
                                line,
                                end_line,
                                public,
                            },
                        );
                        break;
                    }
                    if t.is_punct(';') {
                        out.items.push(Item {
                            kind,
                            name,
                            line,
                            end_line: t.line,
                            public,
                        });
                        *i += 1;
                        break;
                    }
                    if is_open(t) {
                        skip_group(toks, i);
                        continue;
                    }
                    *i += 1;
                }
            }
            "use" => {
                *i = j + 1;
                let start = out.uses.len();
                parse_use_tree(toks, i, &mut Vec::new(), out);
                if toks.get(*i).is_some_and(|t| t.is_punct(';')) {
                    *i += 1;
                }
                let end_line = out
                    .uses
                    .get(start..)
                    .and_then(|s| s.last())
                    .map_or(line, |u| u.line);
                out.items.push(Item {
                    kind: ItemKind::Use,
                    name: out
                        .uses
                        .get(start)
                        .map_or_else(|| "_".into(), |u| u.segments.join("::")),
                    line,
                    end_line,
                    public,
                });
            }
            "const" | "static" => {
                *i = j + 1;
                // `const fn` / `const unsafe fn`: re-dispatch as a fn.
                if toks.get(*i).is_some_and(|t| {
                    t.is_ident("fn")
                        || t.is_ident("unsafe")
                        || t.is_ident("async")
                        || t.is_ident("extern")
                }) {
                    continue;
                }
                if toks.get(*i).is_some_and(|t| t.is_ident("mut")) {
                    *i += 1;
                }
                let name = ident_at(toks, *i).unwrap_or_else(|| "_".into());
                if ident_at(toks, *i).is_some() {
                    *i += 1;
                }
                let mut ty = String::new();
                if toks.get(*i).is_some_and(|t| t.is_punct(':')) {
                    *i += 1;
                    ty = render_tokens(&take_type(toks, i));
                }
                // Skip the initializer to the terminating `;`.
                while *i < toks.len() {
                    let t = &toks[*i];
                    if t.is_punct(';') {
                        break;
                    }
                    if is_open(t) {
                        skip_group(toks, i);
                        continue;
                    }
                    *i += 1;
                }
                let end_line = toks.get(*i).map_or(line, |t| t.line);
                if toks.get(*i).is_some_and(|t| t.is_punct(';')) {
                    *i += 1;
                }
                out.items.push(Item {
                    kind: ItemKind::Const,
                    name: name.clone(),
                    line,
                    end_line,
                    public,
                });
                out.consts.push(ConstDef {
                    name,
                    line,
                    end_line,
                    public,
                    ty,
                });
            }
            "type" => {
                *i = j + 1;
                let name = ident_at(toks, *i).unwrap_or_else(|| "_".into());
                while *i < toks.len() && !toks[*i].is_punct(';') {
                    if is_open(&toks[*i]) {
                        skip_group(toks, i);
                        continue;
                    }
                    *i += 1;
                }
                let end_line = toks.get(*i).map_or(line, |t| t.line);
                if toks.get(*i).is_some_and(|t| t.is_punct(';')) {
                    *i += 1;
                }
                out.items.push(Item {
                    kind: ItemKind::TypeAlias,
                    name,
                    line,
                    end_line,
                    public,
                });
            }
            "macro_rules" => {
                // `macro_rules! name { ... }` — skip entirely.
                *i = j + 1;
                while *i < toks.len() && !toks[*i].is_punct('{') {
                    *i += 1;
                }
                if *i < toks.len() {
                    skip_group(toks, i);
                }
            }
            _ => {
                // Macro invocation at item position (`foo! { ... }`,
                // `foo!(...);`): skip its body as one balanced group so
                // the contents cannot desync item context.
                if toks.get(j + 1).is_some_and(|t| t.is_punct('!')) {
                    *i = j + 2;
                    if ident_at(toks, *i).is_some() {
                        *i += 1;
                    }
                    if toks.get(*i).is_some_and(is_open) {
                        skip_group(toks, i);
                    }
                } else {
                    // Unrecognized token: skip one and resync.
                    *i += 1;
                }
            }
        }
        serde_attr = false;
    }
}

/// Skip to (but not past) the `}` closing the current context.
fn skip_to_close(toks: &[Tok], i: &mut usize) {
    let mut depth = 0usize;
    while *i < toks.len() {
        let t = &toks[*i];
        if is_open(t) {
            depth += 1;
        } else if is_close(t) {
            if depth == 0 {
                return;
            }
            depth -= 1;
        }
        *i += 1;
    }
}

fn ident_at(toks: &[Tok], i: usize) -> Option<String> {
    toks.get(i)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
}

/// Parse `{ name: Ty, ... }` named fields; consumes through the
/// closing `}`.
fn parse_named_fields(toks: &[Tok], i: &mut usize, fields: &mut Vec<Field>) {
    while *i < toks.len() {
        let t = &toks[*i];
        if t.is_punct('}') {
            *i += 1;
            return;
        }
        if t.is_punct('#') {
            *i += 1;
            if toks.get(*i).is_some_and(|t| t.is_punct('[')) {
                skip_group(toks, i);
            }
            continue;
        }
        if t.is_ident("pub") {
            *i += 1;
            if toks.get(*i).is_some_and(|t| t.is_punct('(')) {
                skip_group(toks, i);
            }
            continue;
        }
        if t.kind == TokKind::Ident && toks.get(*i + 1).is_some_and(|n| n.is_punct(':')) {
            let name = t.text.clone();
            let field_line = t.line;
            *i += 2;
            let ty = render_tokens(&take_type(toks, i));
            fields.push(Field {
                name,
                ty,
                line: field_line,
            });
            continue;
        }
        if t.is_punct(',') {
            *i += 1;
            continue;
        }
        // Unexpected token (malformed source): resync.
        *i += 1;
    }
}

/// Parse `(Ty, Ty)` tuple fields; consumes through the closing `)`.
fn parse_tuple_fields(toks: &[Tok], i: &mut usize, fields: &mut Vec<Field>) {
    let mut index = 0usize;
    while *i < toks.len() {
        let t = &toks[*i];
        if t.is_punct(')') {
            *i += 1;
            return;
        }
        if t.is_punct('#') {
            *i += 1;
            if toks.get(*i).is_some_and(|t| t.is_punct('[')) {
                skip_group(toks, i);
            }
            continue;
        }
        if t.is_ident("pub") {
            *i += 1;
            if toks.get(*i).is_some_and(|t| t.is_punct('(')) {
                skip_group(toks, i);
            }
            continue;
        }
        if t.is_punct(',') {
            *i += 1;
            continue;
        }
        let line = t.line;
        let ty = render_tokens(&take_type(toks, i));
        if ty.is_empty() {
            *i += 1;
            continue;
        }
        fields.push(Field {
            name: index.to_string(),
            ty,
            line,
        });
        index += 1;
    }
}

/// Parse `Name`, `Name(..)`, `Name { .. }`, `Name = expr` variants;
/// consumes through the closing `}` of the enum body.
fn parse_variants(toks: &[Tok], i: &mut usize, variants: &mut Vec<Variant>) {
    while *i < toks.len() {
        let t = &toks[*i];
        if t.is_punct('}') {
            *i += 1;
            return;
        }
        if t.is_punct('#') {
            *i += 1;
            if toks.get(*i).is_some_and(|t| t.is_punct('[')) {
                skip_group(toks, i);
            }
            continue;
        }
        if t.kind == TokKind::Ident {
            let name = t.text.clone();
            let line = t.line;
            *i += 1;
            let payload = match toks.get(*i) {
                Some(p) if p.is_punct('(') || p.is_punct('{') => {
                    let start = *i;
                    skip_group(toks, i);
                    Some(render_tokens(toks.get(start..*i).unwrap_or(&[])))
                }
                _ => None,
            };
            // Skip an explicit discriminant.
            if toks.get(*i).is_some_and(|t| t.is_punct('=')) {
                while *i < toks.len() && !toks[*i].is_punct(',') && !toks[*i].is_punct('}') {
                    if is_open(&toks[*i]) {
                        skip_group(toks, i);
                        continue;
                    }
                    *i += 1;
                }
            }
            variants.push(Variant {
                name,
                payload,
                line,
            });
            continue;
        }
        *i += 1;
    }
}

/// Expand a `use` tree into leaf paths. `prefix` carries the segments
/// accumulated so far; stops before the terminating `;` (or the `,`/`}`
/// closing this branch of the tree).
fn parse_use_tree(toks: &[Tok], i: &mut usize, prefix: &mut Vec<String>, out: &mut ParsedFile) {
    let depth_in = prefix.len();
    loop {
        let Some(t) = toks.get(*i) else { break };
        let line = t.line;
        if t.kind == TokKind::Ident {
            prefix.push(t.text.clone());
            *i += 1;
            match toks.get(*i) {
                Some(n) if n.kind == TokKind::PathSep => {
                    *i += 1;
                    continue;
                }
                Some(n) if n.is_ident("as") => {
                    // `path as alias` — the original path is the leaf.
                    *i += 1;
                    if ident_at(toks, *i).is_some() {
                        *i += 1;
                    }
                }
                _ => {}
            }
            out.uses.push(UsePath {
                segments: prefix.clone(),
                line,
            });
            prefix.truncate(depth_in);
            break;
        }
        if t.is_punct('*') {
            prefix.push("*".into());
            out.uses.push(UsePath {
                segments: prefix.clone(),
                line,
            });
            prefix.truncate(depth_in);
            *i += 1;
            break;
        }
        if t.is_punct('{') {
            *i += 1;
            loop {
                match toks.get(*i) {
                    Some(t) if t.is_punct('}') => {
                        *i += 1;
                        break;
                    }
                    Some(t) if t.is_punct(',') => {
                        *i += 1;
                    }
                    Some(_) => {
                        let before = *i;
                        parse_use_tree(toks, i, prefix, out);
                        if *i == before {
                            *i += 1; // malformed: force progress
                        }
                    }
                    None => break,
                }
            }
            prefix.truncate(depth_in);
            break;
        }
        break;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::lex::lex;
    use crate::lint::scanner::mask;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(&mask(src)))
    }

    #[test]
    fn parses_struct_fields_in_order() {
        let src = "/// Doc.\n#[derive(Debug, Serialize)]\npub struct P {\n    pub seq: u64,\n    pub rssi: Option<f64>,\n    pub map: BTreeMap<u8, Vec<u16>>,\n}\n";
        let p = parse_src(src);
        assert_eq!(p.structs.len(), 1);
        let s = &p.structs[0];
        assert_eq!(s.name, "P");
        assert!(s.public);
        assert!(s.serde);
        assert_eq!(s.line, 3);
        let fields: Vec<(&str, &str)> = s
            .fields
            .iter()
            .map(|f| (f.name.as_str(), f.ty.as_str()))
            .collect();
        assert_eq!(
            fields,
            vec![
                ("seq", "u64"),
                ("rssi", "Option<f64>"),
                ("map", "BTreeMap<u8, Vec<u16>>"),
            ]
        );
        assert_eq!(s.fields[1].line, 5);
    }

    #[test]
    fn parses_tuple_and_unit_structs() {
        let p = parse_src("pub struct T(pub u16, Vec<u8>);\nstruct U;\n");
        assert_eq!(p.structs.len(), 2);
        assert_eq!(p.structs[0].fields[0].name, "0");
        assert_eq!(p.structs[0].fields[1].ty, "Vec<u8>");
        assert!(p.structs[1].fields.is_empty());
    }

    #[test]
    fn parses_enum_variants() {
        let src = "pub enum E {\n    A,\n    B(u8),\n    C { x: u64 },\n    D = 4,\n}\n";
        let p = parse_src(src);
        let e = &p.enums[0];
        let names: Vec<&str> = e.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["A", "B", "C", "D"]);
        assert_eq!(e.variants[1].payload.as_deref(), Some("(u8)"));
        assert_eq!(e.variants[2].line, 4);
    }

    #[test]
    fn expands_use_trees() {
        let src = "use loramon_sim::{NodeId, SimTime};\nuse loramon_server::query::{self, Window as W};\nuse loramon_phy::*;\n";
        let p = parse_src(src);
        let paths: Vec<String> = p.uses.iter().map(|u| u.segments.join("::")).collect();
        assert_eq!(
            paths,
            vec![
                "loramon_sim::NodeId",
                "loramon_sim::SimTime",
                "loramon_server::query::self",
                "loramon_server::query::Window",
                "loramon_phy::*",
            ]
        );
        assert_eq!(p.uses[1].line, 1);
        assert_eq!(p.uses[3].line, 2);
    }

    #[test]
    fn finds_fns_inside_impls_and_mods() {
        let src = "impl Foo {\n    pub fn a(&self) -> u8 { self.x[0] }\n}\nmod inner {\n    fn b() {}\n}\n";
        let p = parse_src(src);
        let fns: Vec<(&str, usize)> = p
            .items
            .iter()
            .filter(|i| i.kind == ItemKind::Fn)
            .map(|i| (i.name.as_str(), i.line))
            .collect();
        assert_eq!(fns, vec![("a", 2), ("b", 5)]);
        assert!(p.items.iter().any(|i| i.kind == ItemKind::Impl));
        assert!(p.items.iter().any(|i| i.kind == ItemKind::Mod));
    }

    #[test]
    fn fn_bodies_do_not_leak_items() {
        // `struct`-looking tokens inside a fn body are skipped with it.
        let src =
            "fn f() {\n    let struct_like = 1;\n    if x { y } else { z }\n}\nstruct Real;\n";
        let p = parse_src(src);
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].name, "Real");
    }

    #[test]
    fn consts_carry_types_and_spans() {
        let src = "pub const MAGIC: [u8; 4] = *b\"LMRB\";\nconst VERSION: u8 = 1;\n";
        let p = parse_src(src);
        assert_eq!(p.consts.len(), 2);
        assert_eq!(p.consts[0].name, "MAGIC");
        assert_eq!(p.consts[0].ty, "[u8; 4]");
        assert!(p.consts[0].public);
        assert_eq!(p.consts[1].end_line, 2);
    }

    #[test]
    fn survives_malformed_input() {
        // Must terminate without panicking on garbage.
        for src in [
            "struct",
            "use ::{{{",
            "fn (",
            "enum E { (",
            "pub pub pub",
            "impl {",
        ] {
            let _ = parse_src(src);
        }
    }
}
