//! Wire-schema compatibility lock.
//!
//! The monitoring pipeline persists and exchanges a small set of wire
//! types (`PacketRecord`, `Report`, `NodeStatus`, `MonitorCommand`, …)
//! whose binary layout is positional: the report reader decodes fields
//! in declaration order, and the gateway/server pair must agree on
//! that order across versions. Renaming, reordering, retyping or
//! deleting a field is therefore a *compatibility event*, not a
//! refactor.
//!
//! This module extracts the canonical shape of every public
//! serde-carrying struct/enum (plus the public wire constants) from
//! the watched core sources, fingerprints it, and diffs it against the
//! committed baseline `wire.schema.json`. Any drift is reported as
//! `schema-drift` — a rule that deliberately has **no** `lint:allow`
//! escape: the only way to accept a change is to regenerate the
//! baseline with `cargo xtask lint --bless-schema`, which puts the new
//! schema in front of a reviewer as its own diff hunk.

use super::items::{self, ParsedFile};
use super::json::{self, Value};
use super::lex;
use crate::lint::scanner::mask;
use crate::lint::Diagnostic;
use std::fs;
use std::io;
use std::path::Path;

/// Rule id for any divergence from the committed wire schema.
pub const SCHEMA_DRIFT: &str = "schema-drift";

/// Baseline file name, at the workspace root.
pub const BASELINE_FILE: &str = "wire.schema.json";

/// Format version of the baseline file itself.
pub const SCHEMA_VERSION: u64 = 1;

/// The core sources that define the wire surface.
pub const WATCHED_FILES: &[&str] = &[
    "crates/core/src/command.rs",
    "crates/core/src/record.rs",
    "crates/core/src/report.rs",
    "crates/core/src/status.rs",
];

/// One named entry of a wire type: a struct field, an enum variant
/// (with its rendered payload as the "type"), or a const's
/// `type`/`value` rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Entry name.
    pub name: String,
    /// Canonical type / payload / value text.
    pub ty: String,
    /// 1-based source line (0 for baseline entries, which carry none).
    pub line: usize,
}

/// One wire type in the schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireType {
    /// Type name.
    pub name: String,
    /// `struct`, `enum` or `const`.
    pub kind: String,
    /// Defining file, workspace-relative.
    pub file: String,
    /// 1-based line of the definition (0 for baseline entries).
    pub line: usize,
    /// Entries in declaration order.
    pub entries: Vec<Entry>,
}

/// The extracted wire schema: types sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    /// Wire types, sorted by name for canonical output.
    pub types: Vec<WireType>,
}

/// Extract the wire schema from in-memory `(path, source)` pairs.
/// Included: `pub` structs/enums whose attributes mention serde, and
/// `pub` consts (the binary magic and version). Sorted by type name.
pub fn extract_sources(sources: &[(&str, &str)]) -> Schema {
    let mut types = Vec::new();
    for (rel, source) in sources {
        let masked = mask(source);
        let parsed: ParsedFile = items::parse(&lex::lex(&masked));
        let raw_lines: Vec<&str> = source.lines().collect();
        for s in &parsed.structs {
            if !(s.public && s.serde) {
                continue;
            }
            types.push(WireType {
                name: s.name.clone(),
                kind: "struct".into(),
                file: (*rel).to_string(),
                line: s.line,
                entries: s
                    .fields
                    .iter()
                    .map(|f| Entry {
                        name: f.name.clone(),
                        ty: f.ty.clone(),
                        line: f.line,
                    })
                    .collect(),
            });
        }
        for e in &parsed.enums {
            if !(e.public && e.serde) {
                continue;
            }
            types.push(WireType {
                name: e.name.clone(),
                kind: "enum".into(),
                file: (*rel).to_string(),
                line: e.line,
                entries: e
                    .variants
                    .iter()
                    .map(|v| Entry {
                        name: v.name.clone(),
                        ty: v.payload.clone().unwrap_or_default(),
                        line: v.line,
                    })
                    .collect(),
            });
        }
        for c in &parsed.consts {
            if !c.public {
                continue;
            }
            types.push(WireType {
                name: c.name.clone(),
                kind: "const".into(),
                file: (*rel).to_string(),
                line: c.line,
                entries: vec![
                    Entry {
                        name: "type".into(),
                        ty: c.ty.clone(),
                        line: c.line,
                    },
                    Entry {
                        name: "value".into(),
                        ty: const_value_text(&raw_lines, c.line, c.end_line),
                        line: c.line,
                    },
                ],
            });
        }
    }
    types.sort_by(|a, b| a.name.cmp(&b.name));
    Schema { types }
}

/// The initializer text of a const spanning `line..=end_line` (1-based)
/// in the raw source: everything between the first `=` and the final
/// `;`, whitespace-normalized. Works on the *unmasked* source so
/// string/byte literals keep their contents.
fn const_value_text(raw_lines: &[&str], line: usize, end_line: usize) -> String {
    let lo = line.saturating_sub(1);
    let hi = end_line.min(raw_lines.len());
    let span = raw_lines.get(lo..hi).unwrap_or(&[]).join(" ");
    let Some(eq) = span.find('=') else {
        return String::new();
    };
    let tail = &span[eq + 1..];
    let body = tail.rfind(';').map_or(tail, |semi| &tail[..semi]);
    body.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// FNV-1a 64 over the canonical flat rendering of the schema.
pub fn fingerprint(schema: &Schema) -> u64 {
    let mut flat = String::new();
    for t in &schema.types {
        flat.push_str(&t.name);
        flat.push('|');
        flat.push_str(&t.kind);
        flat.push('|');
        flat.push_str(&t.file);
        flat.push('|');
        for e in &t.entries {
            flat.push_str(&e.name);
            flat.push(':');
            flat.push_str(&e.ty);
            flat.push(';');
        }
        flat.push('\n');
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in flat.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Render the schema as the committed baseline JSON document.
pub fn to_json(schema: &Schema) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    out.push_str(&format!(
        "  \"fingerprint\": {},\n",
        json::quote(&format!("{:#018x}", fingerprint(schema)))
    ));
    out.push_str("  \"types\": {\n");
    for (k, t) in schema.types.iter().enumerate() {
        out.push_str(&format!("    {}: {{\n", json::quote(&t.name)));
        out.push_str(&format!("      \"file\": {},\n", json::quote(&t.file)));
        out.push_str(&format!("      \"kind\": {},\n", json::quote(&t.kind)));
        out.push_str("      \"entries\": [\n");
        for (j, e) in t.entries.iter().enumerate() {
            out.push_str(&format!(
                "        [{}, {}]{}\n",
                json::quote(&e.name),
                json::quote(&e.ty),
                if j + 1 < t.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if k + 1 < schema.types.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// Parse a committed baseline document back into a [`Schema`] plus its
/// stored fingerprint string.
///
/// # Errors
///
/// Returns a description of the first structural problem.
pub fn parse_baseline(text: &str) -> Result<(String, Schema), String> {
    let doc = json::parse(text)?;
    let version = doc
        .get("schema_version")
        .and_then(|v| match v {
            Value::Number(n) => n.parse::<u64>().ok(),
            _ => None,
        })
        .ok_or("missing schema_version")?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "unsupported schema_version {version} (expected {SCHEMA_VERSION})"
        ));
    }
    let stored = doc
        .get("fingerprint")
        .and_then(Value::as_str)
        .ok_or("missing fingerprint")?
        .to_string();
    let mut types = Vec::new();
    for (name, body) in doc
        .get("types")
        .and_then(Value::as_object)
        .ok_or("missing types object")?
    {
        let file = body
            .get("file")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("type {name}: missing file"))?
            .to_string();
        let kind = body
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("type {name}: missing kind"))?
            .to_string();
        let mut entries = Vec::new();
        for pair in body
            .get("entries")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("type {name}: missing entries"))?
        {
            let row = pair
                .as_array()
                .filter(|r| r.len() == 2)
                .ok_or_else(|| format!("type {name}: malformed entry"))?;
            entries.push(Entry {
                name: row[0]
                    .as_str()
                    .ok_or_else(|| format!("type {name}: non-string entry name"))?
                    .to_string(),
                ty: row[1]
                    .as_str()
                    .ok_or_else(|| format!("type {name}: non-string entry type"))?
                    .to_string(),
                line: 0,
            });
        }
        types.push(WireType {
            name: name.clone(),
            kind,
            file,
            line: 0,
            entries,
        });
    }
    types.sort_by(|a, b| a.name.cmp(&b.name));
    Ok((stored, Schema { types }))
}

/// Diff the current extraction against the committed baseline. Every
/// divergence becomes one `schema-drift` diagnostic anchored at the
/// current source (or the baseline's file at line 1 for removals).
pub fn diff(current: &Schema, baseline: &Schema) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let drift = |file: &str, line: usize, message: String| Diagnostic {
        file: file.to_string(),
        line: line.max(1),
        rule: SCHEMA_DRIFT.to_string(),
        message,
    };
    for base in &baseline.types {
        let Some(cur) = current.types.iter().find(|t| t.name == base.name) else {
            out.push(drift(
                &base.file,
                1,
                format!(
                    "wire type `{}` was removed from the committed schema; if intentional, \
                     run `cargo xtask lint --bless-schema`",
                    base.name
                ),
            ));
            continue;
        };
        if cur.kind != base.kind {
            out.push(drift(
                &cur.file,
                cur.line,
                format!(
                    "wire type `{}` changed kind from {} to {}",
                    base.name, base.kind, cur.kind
                ),
            ));
            continue;
        }
        diff_entries(base, cur, &mut out, &drift);
    }
    for cur in &current.types {
        if !baseline.types.iter().any(|t| t.name == cur.name) {
            out.push(drift(
                &cur.file,
                cur.line,
                format!(
                    "new wire type `{}` is not in the committed schema; run \
                     `cargo xtask lint --bless-schema` to accept it",
                    cur.name
                ),
            ));
        }
    }
    out
}

fn diff_entries(
    base: &WireType,
    cur: &WireType,
    out: &mut Vec<Diagnostic>,
    drift: &impl Fn(&str, usize, String) -> Diagnostic,
) {
    let noun = if base.kind == "enum" {
        "variant"
    } else {
        "field"
    };
    for (idx, be) in base.entries.iter().enumerate() {
        match cur.entries.iter().position(|ce| ce.name == be.name) {
            None => {
                // Same slot, same type, different name: a rename.
                if let Some(ce) = cur.entries.get(idx) {
                    let renamed =
                        ce.ty == be.ty && !base.entries.iter().any(|other| other.name == ce.name);
                    if renamed {
                        out.push(drift(
                            &cur.file,
                            ce.line,
                            format!(
                                "wire {noun} `{}.{}` was renamed to `{}` (same position and \
                                 type); serialized data keyed by the old name will not decode",
                                base.name, be.name, ce.name
                            ),
                        ));
                        continue;
                    }
                }
                out.push(drift(
                    &cur.file,
                    cur.line,
                    format!(
                        "wire {noun} `{}.{}` ({}) was removed; binary decoding is positional, \
                         so every later {noun} shifts",
                        base.name, be.name, be.ty
                    ),
                ));
            }
            Some(pos) => {
                let ce = &cur.entries[pos];
                if ce.ty != be.ty {
                    out.push(drift(
                        &cur.file,
                        ce.line,
                        format!(
                            "wire {noun} `{}.{}` changed type from `{}` to `{}`",
                            base.name, be.name, be.ty, ce.ty
                        ),
                    ));
                }
                if pos != idx {
                    out.push(drift(
                        &cur.file,
                        ce.line,
                        format!(
                            "wire {noun} `{}.{}` moved from position {idx} to {pos}; \
                             binary layout is declaration-order",
                            base.name, be.name
                        ),
                    ));
                }
            }
        }
    }
    for ce in &cur.entries {
        let known = base.entries.iter().any(|be| be.name == ce.name);
        let rename_target = cur
            .entries
            .iter()
            .position(|e| e.name == ce.name)
            .and_then(|pos| base.entries.get(pos))
            .is_some_and(|be| be.ty == ce.ty && !cur.entries.iter().any(|e| e.name == be.name));
        if !known && !rename_target {
            out.push(drift(
                &cur.file,
                ce.line,
                format!(
                    "new wire {noun} `{}.{}` ({}) is not in the committed schema; run \
                     `cargo xtask lint --bless-schema` to accept it",
                    cur.name, ce.name, ce.ty
                ),
            ));
        }
    }
}

/// Read the watched files under `root` and extract the current schema.
/// Unreadable watched files produce diagnostics (the wire surface must
/// stay where the lock can see it).
pub fn extract_workspace(root: &Path, out_diags: &mut Vec<Diagnostic>) -> Schema {
    let mut sources: Vec<(String, String)> = Vec::new();
    for rel in WATCHED_FILES {
        match fs::read_to_string(root.join(rel)) {
            Ok(text) => sources.push(((*rel).to_string(), text)),
            Err(err) => out_diags.push(Diagnostic {
                file: (*rel).to_string(),
                line: 1,
                rule: SCHEMA_DRIFT.to_string(),
                message: format!("watched wire source is unreadable: {err}"),
            }),
        }
    }
    let borrowed: Vec<(&str, &str)> = sources
        .iter()
        .map(|(r, s)| (r.as_str(), s.as_str()))
        .collect();
    extract_sources(&borrowed)
}

/// Check the workspace against the committed baseline, appending
/// `schema-drift` diagnostics. These bypass `lint:allow` by design.
pub fn check(root: &Path) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let current = extract_workspace(root, &mut diags);
    let baseline_path = root.join(BASELINE_FILE);
    let text = match fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(_) => {
            diags.push(Diagnostic {
                file: BASELINE_FILE.to_string(),
                line: 1,
                rule: SCHEMA_DRIFT.to_string(),
                message: "committed wire schema is missing; run `cargo xtask lint \
                          --bless-schema` to create it"
                    .to_string(),
            });
            return diags;
        }
    };
    match parse_baseline(&text) {
        Ok((stored, baseline)) => {
            diags.extend(diff(&current, &baseline));
            let recomputed = format!("{:#018x}", fingerprint(&baseline));
            if stored != recomputed {
                diags.push(Diagnostic {
                    file: BASELINE_FILE.to_string(),
                    line: 1,
                    rule: SCHEMA_DRIFT.to_string(),
                    message: format!(
                        "baseline fingerprint {stored} does not match its own contents \
                         ({recomputed}); the file was hand-edited — regenerate it with \
                         `cargo xtask lint --bless-schema`"
                    ),
                });
            }
        }
        Err(err) => diags.push(Diagnostic {
            file: BASELINE_FILE.to_string(),
            line: 1,
            rule: SCHEMA_DRIFT.to_string(),
            message: format!(
                "committed wire schema is malformed ({err}); regenerate it with \
                 `cargo xtask lint --bless-schema`"
            ),
        }),
    }
    diags
}

/// Regenerate the committed baseline from the current sources.
///
/// # Errors
///
/// Propagates I/O failures reading the watched files or writing the
/// baseline.
pub fn bless(root: &Path) -> io::Result<String> {
    let mut diags = Vec::new();
    let current = extract_workspace(root, &mut diags);
    if let Some(d) = diags.first() {
        return Err(io::Error::other(format!("{}: {}", d.file, d.message)));
    }
    let rendered = to_json(&current);
    fs::write(root.join(BASELINE_FILE), &rendered)?;
    Ok(format!("{:#018x}", fingerprint(&current)))
}

#[cfg(test)]
mod tests {
    use super::*;

    const RECORD: &str = "//! Wire record.\n#[derive(Debug, Serialize, Deserialize)]\npub struct PacketRecord {\n    pub seq: u64,\n    pub rssi_dbm: Option<f64>,\n}\n\n#[derive(Serialize)]\npub enum Direction {\n    Tx,\n    Rx,\n}\n\npub const BINARY_MAGIC: [u8; 4] = *b\"LMRB\";\nstruct Private;\n";

    fn schema_of(src: &str) -> Schema {
        extract_sources(&[("crates/core/src/record.rs", src)])
    }

    #[test]
    fn extracts_serde_types_and_pub_consts_only() {
        let s = schema_of(RECORD);
        let names: Vec<&str> = s.types.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["BINARY_MAGIC", "Direction", "PacketRecord"]);
        let magic = &s.types[0];
        assert_eq!(magic.kind, "const");
        assert_eq!(magic.entries[0].ty, "[u8; 4]");
        assert_eq!(magic.entries[1].ty, "*b\"LMRB\"");
        let rec = &s.types[2];
        assert_eq!(rec.entries[1].name, "rssi_dbm");
        assert_eq!(rec.entries[1].line, 5);
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = fingerprint(&schema_of(RECORD));
        let b = fingerprint(&schema_of(RECORD));
        assert_eq!(a, b);
        let changed = RECORD.replace("rssi_dbm", "rssi");
        assert_ne!(a, fingerprint(&schema_of(&changed)));
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let s = schema_of(RECORD);
        let (stored, parsed) = parse_baseline(&to_json(&s)).unwrap();
        assert_eq!(stored, format!("{:#018x}", fingerprint(&s)));
        // Lines are not persisted; compare everything else.
        assert_eq!(parsed.types.len(), s.types.len());
        for (p, o) in parsed.types.iter().zip(&s.types) {
            assert_eq!((&p.name, &p.kind, &p.file), (&o.name, &o.kind, &o.file));
            let pe: Vec<(&str, &str)> = p
                .entries
                .iter()
                .map(|e| (e.name.as_str(), e.ty.as_str()))
                .collect();
            let oe: Vec<(&str, &str)> = o
                .entries
                .iter()
                .map(|e| (e.name.as_str(), e.ty.as_str()))
                .collect();
            assert_eq!(pe, oe);
        }
        assert!(diff(&s, &parsed).is_empty());
    }

    #[test]
    fn rename_is_detected_as_rename() {
        let base = schema_of(RECORD);
        let cur = schema_of(&RECORD.replace("rssi_dbm", "rssi"));
        let d = diff(&cur, &base);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, SCHEMA_DRIFT);
        assert!(
            d[0].message.contains("renamed to `rssi`"),
            "{}",
            d[0].message
        );
        assert_eq!(d[0].line, 5);
    }

    #[test]
    fn type_change_and_removal_are_distinct() {
        let base = schema_of(RECORD);
        let retyped = schema_of(&RECORD.replace("Option<f64>", "f64"));
        let d = diff(&retyped, &base);
        assert_eq!(d.len(), 1);
        assert!(d[0]
            .message
            .contains("changed type from `Option<f64>` to `f64`"));

        let removed = schema_of(&RECORD.replace("    pub rssi_dbm: Option<f64>,\n", ""));
        let d = diff(&removed, &base);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("was removed"), "{}", d[0].message);
    }

    #[test]
    fn reorder_and_addition_are_reported() {
        let swapped = "#[derive(Serialize)]\npub struct PacketRecord {\n    pub rssi_dbm: Option<f64>,\n    pub seq: u64,\n}\n#[derive(Serialize)]\npub enum Direction { Tx, Rx }\npub const BINARY_MAGIC: [u8; 4] = *b\"LMRB\";\n";
        let base = schema_of(RECORD);
        let d = diff(&schema_of(swapped), &base);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|x| x.message.contains("moved from position")));

        let grown = RECORD.replace(
            "    pub seq: u64,\n",
            "    pub seq: u64,\n    pub hop: u8,\n",
        );
        let d = diff(&schema_of(&grown), &base);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d
            .iter()
            .any(|x| x.message.contains("new wire field `PacketRecord.hop`")));
        assert!(d.iter().any(|x| x.message.contains("moved from position")));
    }

    #[test]
    fn const_value_change_is_drift() {
        let base = schema_of(RECORD);
        let bumped = RECORD.replace("*b\"LMRB\"", "*b\"LMRC\"");
        let d = diff(&schema_of(&bumped), &base);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0]
            .message
            .contains("changed type from `*b\"LMRB\"` to `*b\"LMRC\"`"));
    }

    #[test]
    fn missing_type_is_reported_at_baseline_file() {
        let base = schema_of(RECORD);
        let gone = schema_of(&RECORD.replace("pub enum Direction", "enum Direction"));
        let d = diff(&gone, &base);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("wire type `Direction` was removed"));
    }
}
