//! Token-level lexer over masked source.
//!
//! The scanner ([`crate::lint::scanner::mask`]) has already blanked
//! string/char-literal contents and comments, so what remains is pure
//! code: identifiers, numbers, lifetimes and punctuation. This lexer
//! turns that residue into a flat token stream with line numbers — the
//! substrate the item parser ([`super::items`]) and the token-level
//! rules ([`super::panic_surface`]) operate on.
//!
//! Deliberately simple: single-character punctuation except `::`
//! (which matters for path parsing), no float recognition (a float
//! lexes as `Number . Number`, which is fine for every analysis built
//! on top), and no keyword table (keywords are plain `Ident`s; the
//! parser decides what is a keyword in context).

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `PacketRecord`, `r#raw`).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// Integer-ish literal (`42`, `0xFF`, `1_000u64`).
    Number,
    /// The `::` path separator.
    PathSep,
    /// Any other single punctuation character.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token classification.
    pub kind: TokKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Tok {
    /// Whether this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex masked source into a token stream.
///
/// Input must already be masked: any `'` left in the text is a
/// lifetime/label quote (char-literal quotes are blanked by the
/// scanner), and there are no string or comment contents to trip on.
pub fn lex(masked: &str) -> Vec<Tok> {
    let chars: Vec<char> = masked.chars().collect();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            // Raw identifiers (`r#match`) keep their prefix attached.
            let mut text: String = chars[start..i].iter().collect();
            if (text == "r" || text == "b") && chars.get(i) == Some(&'#') {
                if let Some(&after) = chars.get(i + 1) {
                    if is_ident_start(after) {
                        i += 1;
                        let tail_start = i;
                        while i < chars.len() && is_ident_continue(chars[i]) {
                            i += 1;
                        }
                        text.push('#');
                        text.extend(&chars[tail_start..i]);
                    }
                }
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Number,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        if c == '\'' && chars.get(i + 1).copied().is_some_and(is_ident_start) {
            let start = i;
            i += 1;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Lifetime,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        if c == ':' && chars.get(i + 1) == Some(&':') {
            toks.push(Tok {
                kind: TokKind::PathSep,
                text: "::".to_string(),
                line,
            });
            i += 2;
            continue;
        }
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn lexes_idents_numbers_and_paths() {
        let toks = kinds("use loramon_core::PacketRecord;");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "use".into()),
                (TokKind::Ident, "loramon_core".into()),
                (TokKind::PathSep, "::".into()),
                (TokKind::Ident, "PacketRecord".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn lexes_lifetimes_and_labels() {
        let toks = kinds("fn f<'a>(x: &'a u8) { 'outer: loop {} }");
        assert!(toks.contains(&(TokKind::Lifetime, "'a".into())));
        assert!(toks.contains(&(TokKind::Lifetime, "'outer".into())));
    }

    #[test]
    fn tracks_lines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn numbers_keep_suffixes() {
        let toks = kinds("let x = 1_000u64 + 0xFF;");
        assert!(toks.contains(&(TokKind::Number, "1_000u64".into())));
        assert!(toks.contains(&(TokKind::Number, "0xFF".into())));
    }

    #[test]
    fn raw_identifiers_stay_one_token() {
        let toks = kinds("let r#match = 1;");
        assert!(toks.contains(&(TokKind::Ident, "r#match".into())));
    }
}
