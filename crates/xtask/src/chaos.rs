//! `cargo xtask chaos`: a reproducible chaos smoke run.
//!
//! One scenario throws everything the robustness work defends against
//! at the pipeline at once — a lossy uplink with a mid-run outage,
//! random node crash/reboot cycles, and the acked transport retrying
//! through all of it. The run executes twice from one seed (chaos must
//! replay exactly), then a handful of sanity gates check the system
//! actually rode the faults out: reports still overwhelmingly arrive,
//! and the server noticed every reboot.

use crate::determinism::RunDigest;
use loramon::core::{TransportConfig, UplinkModel};
use loramon::scenario::{run_scenario, ScenarioConfig, ScenarioResult};
use loramon::sim::{FaultPlan, SimTime, TraceLevel};
use std::time::Duration;

/// Knobs for the chaos smoke run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosCheck {
    /// Seed for the simulation, the uplink dice and the fault plan.
    pub seed: u64,
    /// Number of nodes in the line topology.
    pub nodes: usize,
    /// Simulated duration in seconds.
    pub secs: u64,
    /// Crash/reboot cycles injected by the fault plan.
    pub crashes: usize,
}

impl Default for ChaosCheck {
    fn default() -> Self {
        ChaosCheck {
            seed: 1337,
            nodes: 5,
            secs: 1800,
            crashes: 2,
        }
    }
}

/// What the chaos run is judged on.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOutcome {
    /// The (replayed-identical) run digest.
    pub digest: RunDigest,
    /// Fraction of generated reports that reached the server.
    pub delivery_ratio: f64,
    /// Reboots the server detected from report seq/clock resets.
    pub restarts: u64,
    /// Transport retransmissions across all clients.
    pub retransmissions: u64,
}

fn chaos_config(check: &ChaosCheck) -> ScenarioConfig {
    let positions = loramon::sim::placement::line(check.nodes, 350.0);
    let outage_start = check.secs / 3;
    let mut config = ScenarioConfig::new(positions, check.nodes - 1, check.seed)
        .with_duration(Duration::from_secs(check.secs))
        .with_uplink(UplinkModel::flaky(0.10, check.seed ^ 0xC4A0).with_outage(
            SimTime::from_secs(outage_start),
            SimTime::from_secs(outage_start + check.secs / 6),
        ))
        .with_transport(TransportConfig::new())
        .with_fault_plan(FaultPlan::random(
            check.seed,
            check.nodes,
            Duration::from_secs(check.secs),
            check.crashes,
        ));
    config.trace_level = TraceLevel::Verbose;
    config
}

fn digest_of(result: &ScenarioResult) -> RunDigest {
    let t = result.transport.unwrap_or_default();
    RunDigest {
        trace_fingerprint: result.sim.trace().fingerprint(),
        trace_len: result.sim.trace().len(),
        reports_delivered: result.reports_delivered,
        total_records: result.server.total_records(),
        transport: (t.enqueued, t.retransmissions, t.acked),
    }
}

/// Run the chaos scenario twice and gate on replay equality plus the
/// survival properties.
///
/// # Errors
///
/// Returns a human-readable description when the replays diverge or a
/// sanity gate fails (delivery collapsed, or reboots went unnoticed).
pub fn chaos_run(check: &ChaosCheck) -> Result<ChaosOutcome, String> {
    let first = run_scenario(&chaos_config(check));
    let second = run_scenario(&chaos_config(check));
    let digest = digest_of(&first);
    if digest != digest_of(&second) {
        return Err(format!(
            "chaos replay diverged for seed {}:\n  first:  {:?}\n  second: {:?}",
            check.seed,
            digest,
            digest_of(&second)
        ));
    }

    let outcome = ChaosOutcome {
        delivery_ratio: first.delivery_ratio(),
        restarts: first.server.ingest_stats().restarts,
        retransmissions: digest.transport.1,
        digest,
    };

    // Crashed nodes lose whatever sat in their volatile queues, but
    // the retrying transport must still land the overwhelming bulk.
    if outcome.delivery_ratio < 0.80 {
        return Err(format!(
            "chaos delivery collapsed: ratio {:.3} < 0.80 (seed {})",
            outcome.delivery_ratio, check.seed
        ));
    }
    // Every crash in the random plan reboots; the server must notice.
    if check.crashes > 0 && outcome.restarts == 0 {
        return Err(format!(
            "server detected no restarts despite {} crash/reboot cycles (seed {})",
            check.crashes, check.seed
        ));
    }
    // A 10% lossy uplink with an outage must exercise the retry path.
    if outcome.retransmissions == 0 {
        return Err(format!(
            "no transport retransmissions under a lossy uplink (seed {})",
            check.seed
        ));
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_chaos_run_passes_the_gates() {
        let check = ChaosCheck {
            seed: 11,
            nodes: 3,
            secs: 600,
            crashes: 1,
        };
        let outcome = chaos_run(&check).expect("chaos smoke must pass");
        assert!(outcome.digest.reports_delivered > 0);
        assert!(outcome.restarts >= 1);
    }
}
