//! `cargo xtask` — workspace task runner.
//!
//! Commands:
//! - `lint` — static-analysis pass for determinism/robustness/layering/
//!   hygiene plus the wire-schema lock (exit 1 on any violation).
//!   `--format json` emits machine-readable diagnostics on stdout;
//!   `--bless-schema` regenerates the committed `wire.schema.json`.
//! - `determinism` — run a scenario twice from one seed on both
//!   delivery paths and require identical trace fingerprints (exit 1
//!   on divergence).
//! - `chaos` — replayed chaos smoke run: loss + outage + crash/reboot
//!   cycles + acked-transport retries, with survival gates (exit 1 on
//!   divergence or a failed gate).

use std::process::ExitCode;
use xtask::chaos::{chaos_run, ChaosCheck};
use xtask::determinism::{double_run, DeterminismCheck};

const USAGE: &str = "\
usage: cargo xtask <command>

commands:
  lint [options]            run the static-analysis pass (determinism, no-panic
                            surface, crate layering, wire-schema lock, hygiene)
      --format json         print diagnostics as a JSON document on stdout
      --bless-schema        regenerate wire.schema.json from the current sources
  determinism [options]     double-run both delivery paths, compare fingerprints
      --seed N              seed shared by both runs (default 42)
      --nodes N             nodes in the line topology (default 6)
      --secs N              simulated seconds (default 600)
  chaos [options]           replayed chaos smoke run with survival gates
      --seed N              seed for sim, uplink dice and fault plan (default 1337)
      --nodes N             nodes in the line topology (default 5)
      --secs N              simulated seconds (default 1800)
      --crashes N           crash/reboot cycles to inject (default 2)
  help                      show this message
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("determinism") => run_determinism(&args[1..]),
        Some("chaos") => run_chaos(&args[1..]),
        Some("help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut bless = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                _ => {
                    eprintln!("--format takes `json` or `text`\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--bless-schema" => bless = true,
            _ => {
                eprintln!("bad lint arguments\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = xtask::workspace_root();
    if bless {
        return match xtask::analysis::schema::bless(&root) {
            Ok(fingerprint) => {
                println!(
                    "blessed {}: fingerprint {fingerprint}",
                    xtask::analysis::schema::BASELINE_FILE
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("lint: failed to bless wire schema: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let report = match xtask::lint::lint_root(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("lint: failed to scan workspace: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        // Machine-readable mode: the JSON document is the only stdout
        // output, so `cargo xtask lint --format json > lint.json` is
        // directly consumable.
        print!("{}", render_json(&report));
    } else {
        for diagnostic in &report.diagnostics {
            eprintln!("{diagnostic}");
        }
    }
    if report.is_clean() {
        if !json {
            println!(
                "lint OK: {} files scanned, 0 violations ({} suppressed by lint:allow)",
                report.files_scanned, report.suppressed
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "lint FAILED: {} violation(s) in {} files scanned",
            report.diagnostics.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}

/// Render a lint report as a stable JSON document: summary fields plus
/// one object per diagnostic, in the report's (file, line, rule) order.
fn render_json(report: &xtask::lint::LintReport) -> String {
    use xtask::analysis::json::quote;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"suppressed\": {},\n  \"violations\": {},\n",
        report.files_scanned,
        report.suppressed,
        report.diagnostics.len()
    ));
    out.push_str("  \"diagnostics\": [\n");
    for (i, d) in report.diagnostics.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}{}\n",
            quote(&d.file),
            d.line,
            quote(&d.rule),
            quote(&d.message),
            if i + 1 < report.diagnostics.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn run_determinism(args: &[String]) -> ExitCode {
    let mut check = DeterminismCheck::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = it.next().and_then(|v| v.parse::<u64>().ok());
        match (flag.as_str(), value) {
            ("--seed", Some(v)) => check.seed = v,
            ("--nodes", Some(v)) => check.nodes = v as usize,
            ("--secs", Some(v)) => check.secs = v,
            _ => {
                eprintln!("bad determinism arguments\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    match double_run(&check) {
        Ok([legacy, transport]) => {
            println!(
                "determinism OK: seed {} → fire-and-forget fingerprint {:#018x} ({} events), \
                 acked-transport fingerprint {:#018x} ({} events, {} reports, {} retransmissions) \
                 on both runs",
                check.seed,
                legacy.trace_fingerprint,
                legacy.trace_len,
                transport.trace_fingerprint,
                transport.trace_len,
                transport.reports_delivered,
                transport.transport.1,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("determinism FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_chaos(args: &[String]) -> ExitCode {
    let mut check = ChaosCheck::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = it.next().and_then(|v| v.parse::<u64>().ok());
        match (flag.as_str(), value) {
            ("--seed", Some(v)) => check.seed = v,
            ("--nodes", Some(v)) => check.nodes = v as usize,
            ("--secs", Some(v)) => check.secs = v,
            ("--crashes", Some(v)) => check.crashes = v as usize,
            _ => {
                eprintln!("bad chaos arguments\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    match chaos_run(&check) {
        Ok(outcome) => {
            println!(
                "chaos OK: seed {} replayed identically → delivery {:.3}, {} restarts detected, \
                 {} retransmissions, fingerprint {:#018x}",
                check.seed,
                outcome.delivery_ratio,
                outcome.restarts,
                outcome.retransmissions,
                outcome.digest.trace_fingerprint,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("chaos FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}
