//! The shared radio medium: a log of transmissions and overlap queries.
//!
//! The channel keeps a sliding record of every transmission. When one
//! ends, the simulator asks which other records overlapped it at a given
//! receiver to drive the capture-effect evaluation.

use crate::node::NodeId;
use crate::time::SimTime;
use bytes::Bytes;
use loramon_phy::RadioConfig;
use std::time::Duration;

/// Channel-wide stochastic parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelParams {
    /// Per-packet fast-fading standard deviation in dB (on top of the
    /// per-link log-normal shadowing from the path-loss model).
    pub fading_sigma_db: f64,
    /// How long completed transmissions are kept for interference queries.
    /// Must exceed the longest possible airtime; 30 s is generous.
    pub retention: Duration,
}

impl Default for ChannelParams {
    fn default() -> Self {
        ChannelParams {
            fading_sigma_db: 1.0,
            retention: Duration::from_secs(30),
        }
    }
}

/// One transmission on the medium.
#[derive(Debug, Clone)]
pub struct TxRecord {
    /// Unique transmission id.
    pub tx_id: u64,
    /// Index of the sender in the simulator's node table.
    pub sender_idx: usize,
    /// Sender's address.
    pub sender: NodeId,
    /// Radio configuration used for this transmission.
    pub config: RadioConfig,
    /// The payload bytes.
    pub payload: Bytes,
    /// Start of the transmission.
    pub start: SimTime,
    /// End of the transmission.
    pub end: SimTime,
    /// End of the preamble (start of header/payload).
    pub preamble_end: SimTime,
}

impl TxRecord {
    /// Whether this record overlaps the interval `[start, end)` in time.
    pub fn overlaps(&self, start: SimTime, end: SimTime) -> bool {
        self.start < end && start < self.end
    }

    /// Whether this record is still on the air at `now`.
    pub fn active_at(&self, now: SimTime) -> bool {
        self.start <= now && now < self.end
    }
}

/// The medium.
#[derive(Debug, Default)]
pub struct Channel {
    records: Vec<TxRecord>,
}

impl Channel {
    /// An empty channel.
    pub fn new() -> Self {
        Channel::default()
    }

    /// Register a new transmission.
    pub fn add(&mut self, record: TxRecord) {
        self.records.push(record);
    }

    /// Find a record by id.
    pub fn get(&self, tx_id: u64) -> Option<&TxRecord> {
        self.records.iter().find(|r| r.tx_id == tx_id)
    }

    /// All records overlapping `[start, end)` except `exclude_tx`.
    pub fn overlapping(
        &self,
        start: SimTime,
        end: SimTime,
        exclude_tx: u64,
    ) -> impl Iterator<Item = &TxRecord> {
        self.records
            .iter()
            .filter(move |r| r.tx_id != exclude_tx && r.overlaps(start, end))
    }

    /// Records from a given sender overlapping `[start, end)`.
    pub fn sender_overlaps(&self, sender_idx: usize, start: SimTime, end: SimTime) -> bool {
        self.records
            .iter()
            .any(|r| r.sender_idx == sender_idx && r.overlaps(start, end))
    }

    /// Records still on the air at `now`.
    pub fn active(&self, now: SimTime) -> impl Iterator<Item = &TxRecord> {
        self.records.iter().filter(move |r| r.active_at(now))
    }

    /// Drop records that ended more than `retention` before `now`.
    pub fn prune(&mut self, now: SimTime, retention: Duration) {
        let horizon =
            SimTime::from_micros(now.as_micros().saturating_sub(retention.as_micros() as u64));
        self.records.retain(|r| r.end >= horizon);
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tx_id: u64, sender_idx: usize, start_ms: u64, end_ms: u64) -> TxRecord {
        TxRecord {
            tx_id,
            sender_idx,
            sender: NodeId(sender_idx as u16 + 1),
            config: RadioConfig::mesher_default(),
            payload: Bytes::from_static(b"x"),
            start: SimTime::from_millis(start_ms),
            end: SimTime::from_millis(end_ms),
            preamble_end: SimTime::from_millis(start_ms + 12),
        }
    }

    #[test]
    fn overlap_semantics_are_half_open() {
        let r = rec(1, 0, 100, 200);
        assert!(r.overlaps(SimTime::from_millis(150), SimTime::from_millis(160)));
        assert!(r.overlaps(SimTime::from_millis(50), SimTime::from_millis(101)));
        assert!(r.overlaps(SimTime::from_millis(199), SimTime::from_millis(300)));
        // Touching endpoints do not overlap.
        assert!(!r.overlaps(SimTime::from_millis(200), SimTime::from_millis(300)));
        assert!(!r.overlaps(SimTime::from_millis(50), SimTime::from_millis(100)));
    }

    #[test]
    fn active_at_window() {
        let r = rec(1, 0, 100, 200);
        assert!(!r.active_at(SimTime::from_millis(99)));
        assert!(r.active_at(SimTime::from_millis(100)));
        assert!(r.active_at(SimTime::from_millis(199)));
        assert!(!r.active_at(SimTime::from_millis(200)));
    }

    #[test]
    fn overlapping_excludes_self() {
        let mut c = Channel::new();
        c.add(rec(1, 0, 100, 200));
        c.add(rec(2, 1, 150, 250));
        c.add(rec(3, 2, 300, 400));
        let hits: Vec<u64> = c
            .overlapping(SimTime::from_millis(100), SimTime::from_millis(200), 1)
            .map(|r| r.tx_id)
            .collect();
        assert_eq!(hits, vec![2]);
    }

    #[test]
    fn sender_overlap_detects_half_duplex() {
        let mut c = Channel::new();
        c.add(rec(1, 3, 100, 200));
        assert!(c.sender_overlaps(3, SimTime::from_millis(150), SimTime::from_millis(300)));
        assert!(!c.sender_overlaps(4, SimTime::from_millis(150), SimTime::from_millis(300)));
        assert!(!c.sender_overlaps(3, SimTime::from_millis(200), SimTime::from_millis(300)));
    }

    #[test]
    fn prune_drops_old_records() {
        let mut c = Channel::new();
        c.add(rec(1, 0, 0, 100));
        c.add(rec(2, 0, 5_000, 5_100));
        c.prune(SimTime::from_secs(10), Duration::from_secs(6));
        assert_eq!(c.len(), 1);
        assert!(c.get(2).is_some());
        assert!(c.get(1).is_none());
    }

    #[test]
    fn active_iterator() {
        let mut c = Channel::new();
        c.add(rec(1, 0, 100, 200));
        c.add(rec(2, 1, 150, 250));
        let active: Vec<u64> = c
            .active(SimTime::from_millis(220))
            .map(|r| r.tx_id)
            .collect();
        assert_eq!(active, vec![2]);
    }
}
