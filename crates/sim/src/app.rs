//! The application interface: what runs "on" each simulated node.
//!
//! The mesh protocol (and anything else that wants a radio) implements
//! [`Application`]. Callbacks receive a [`crate::sim::Context`] through
//! which they transmit frames, set timers and query the node.

use crate::sim::Context;
use crate::time::SimTime;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::time::Duration;

/// Opaque handle identifying one `transmit` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TxToken(pub u64);

/// Outcome of a `transmit` request, delivered via
/// [`Application::on_tx_result`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TxResult {
    /// The frame was put on the air; the radio is free again.
    Sent {
        /// Time the frame spent on the air.
        airtime: Duration,
    },
    /// The radio was already transmitting.
    Busy,
    /// The duty-cycle regulator refused the transmission.
    DutyCycleBlocked {
        /// Earliest compliant retry time (`None` if the frame can never
        /// comply, e.g. it alone exceeds the budget).
        retry_at: Option<SimTime>,
    },
}

impl TxResult {
    /// Whether the frame actually went out.
    pub fn is_sent(&self) -> bool {
        matches!(self, TxResult::Sent { .. })
    }
}

/// A frame handed to [`Application::on_frame`], with the PHY metadata the
/// monitoring client records.
#[derive(Debug, Clone)]
pub struct ReceivedFrame {
    /// The raw payload.
    pub payload: Bytes,
    /// The transmission id (useful for cross-referencing the trace).
    pub tx_id: u64,
    /// Received signal strength in dBm.
    pub rssi_dbm: f64,
    /// Signal-to-noise ratio in dB.
    pub snr_db: f64,
    /// When the transmission started.
    pub started: SimTime,
    /// When the reception completed (= now).
    pub ended: SimTime,
}

/// Code running on a simulated node.
///
/// All methods other than [`on_start`](Application::on_start) have no-op
/// defaults. Implementors must provide [`as_any`](Application::as_any) /
/// [`as_any_mut`](Application::as_any_mut) (usually `self`) so harnesses
/// can recover concrete state after a run via
/// [`Simulator::app_as`](crate::sim::Simulator::app_as).
pub trait Application {
    /// Called once when the simulation starts (and again on recovery from
    /// a failure, unless [`on_recover`](Application::on_recover) is
    /// overridden).
    fn on_start(&mut self, ctx: &mut Context<'_>);

    /// A frame was demodulated by this node's radio.
    fn on_frame(&mut self, ctx: &mut Context<'_>, frame: &ReceivedFrame) {
        let _ = (ctx, frame);
    }

    /// The outcome of an earlier `transmit` call.
    fn on_tx_result(&mut self, ctx: &mut Context<'_>, token: TxToken, result: TxResult) {
        let _ = (ctx, token, result);
    }

    /// A timer set via [`Context::set_timer`](crate::sim::Context::set_timer)
    /// fired.
    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: u64) {
        let _ = (ctx, timer);
    }

    /// The node recovered from an injected failure. Defaults to
    /// re-running [`on_start`](Application::on_start).
    fn on_recover(&mut self, ctx: &mut Context<'_>) {
        self.on_start(ctx);
    }

    /// Borrow as `Any` for post-run state extraction.
    fn as_any(&self) -> &dyn Any;

    /// Mutably borrow as `Any`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A trivial application that never transmits — useful as a passive
/// sniffer in tests.
#[derive(Debug, Default)]
pub struct IdleApp {
    /// Frames overheard.
    pub frames_seen: Vec<ReceivedFrame>,
}

impl Application for IdleApp {
    fn on_start(&mut self, _ctx: &mut Context<'_>) {}

    fn on_frame(&mut self, _ctx: &mut Context<'_>, frame: &ReceivedFrame) {
        self.frames_seen.push(frame.clone());
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_result_is_sent() {
        assert!(TxResult::Sent {
            airtime: Duration::from_millis(10)
        }
        .is_sent());
        assert!(!TxResult::Busy.is_sent());
        assert!(!TxResult::DutyCycleBlocked { retry_at: None }.is_sent());
    }

    #[test]
    fn idle_app_downcasts() {
        let app = IdleApp::default();
        let any: &dyn Any = app.as_any();
        assert!(any.downcast_ref::<IdleApp>().is_some());
    }
}
