//! Node placement generators for building scenarios.

use crate::rng::Rng;
use loramon_phy::Position;

/// `n` nodes on a horizontal line with the given spacing, starting at the
/// origin.
pub fn line(n: usize, spacing_m: f64) -> Vec<Position> {
    (0..n)
        .map(|i| Position::new(i as f64 * spacing_m, 0.0))
        .collect()
}

/// `n` nodes on a square-ish grid with the given spacing. The grid is
/// `ceil(sqrt(n))` columns wide.
pub fn grid(n: usize, spacing_m: f64) -> Vec<Position> {
    let cols = (n as f64).sqrt().ceil() as usize;
    (0..n)
        .map(|i| Position::new((i % cols) as f64 * spacing_m, (i / cols) as f64 * spacing_m))
        .collect()
}

/// `n` nodes evenly spaced on a circle of the given radius, centered at
/// the origin.
pub fn ring(n: usize, radius_m: f64) -> Vec<Position> {
    (0..n)
        .map(|i| {
            let theta = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            Position::new(radius_m * theta.cos(), radius_m * theta.sin())
        })
        .collect()
}

/// `n` nodes uniformly random in a `width × height` rectangle, re-sampling
/// until every pair is at least `min_separation_m` apart.
///
/// # Panics
///
/// Panics if the constraint cannot be met in a reasonable number of
/// attempts (the rectangle is too crowded).
pub fn uniform_random(
    n: usize,
    width_m: f64,
    height_m: f64,
    min_separation_m: f64,
    rng: &mut Rng,
) -> Vec<Position> {
    let mut placed: Vec<Position> = Vec::with_capacity(n);
    let mut attempts = 0usize;
    while placed.len() < n {
        attempts += 1;
        assert!(
            attempts < 100_000,
            "could not place {n} nodes with {min_separation_m} m separation \
             in {width_m}×{height_m} m"
        );
        let candidate = Position::new(rng.range_f64(0.0, width_m), rng.range_f64(0.0, height_m));
        if placed
            .iter()
            .all(|p| p.distance_to(candidate) >= min_separation_m)
        {
            placed.push(candidate);
        }
    }
    placed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_spacing() {
        let ps = line(4, 100.0);
        assert_eq!(ps.len(), 4);
        assert!((ps[3].x - 300.0).abs() < 1e-12);
        assert!(ps.iter().all(|p| p.y == 0.0));
    }

    #[test]
    fn grid_shape() {
        let ps = grid(9, 50.0);
        assert_eq!(ps.len(), 9);
        // 3x3 grid: last node at (100, 100).
        assert_eq!(ps[8], Position::new(100.0, 100.0));
        // Non-square count still places everyone.
        assert_eq!(grid(7, 50.0).len(), 7);
    }

    #[test]
    fn ring_is_on_the_circle() {
        let ps = ring(8, 200.0);
        for p in &ps {
            let r = (p.x * p.x + p.y * p.y).sqrt();
            assert!((r - 200.0).abs() < 1e-9);
        }
        // Adjacent nodes are equidistant.
        let d01 = ps[0].distance_to(ps[1]);
        let d12 = ps[1].distance_to(ps[2]);
        assert!((d01 - d12).abs() < 1e-9);
    }

    #[test]
    fn uniform_random_respects_bounds_and_separation() {
        let mut rng = Rng::new(5);
        let ps = uniform_random(20, 1000.0, 1000.0, 50.0, &mut rng);
        assert_eq!(ps.len(), 20);
        for (i, a) in ps.iter().enumerate() {
            assert!((0.0..=1000.0).contains(&a.x));
            assert!((0.0..=1000.0).contains(&a.y));
            for b in &ps[i + 1..] {
                assert!(a.distance_to(*b) >= 50.0);
            }
        }
    }

    #[test]
    fn uniform_random_is_deterministic() {
        let a = uniform_random(5, 500.0, 500.0, 10.0, &mut Rng::new(9));
        let b = uniform_random(5, 500.0, 500.0, 10.0, &mut Rng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "could not place")]
    fn impossible_packing_panics() {
        let mut rng = Rng::new(1);
        let _ = uniform_random(100, 10.0, 10.0, 50.0, &mut rng);
    }
}
