//! Ground-truth trace of everything that happened on the air.
//!
//! The trace is the simulator's omniscient view; the monitoring system
//! only ever sees what its clients report. Comparing the two is exactly
//! the "telemetry completeness" evaluation of the reconstructed
//! experiments (R-Fig-6, R-Fig-8).

use crate::node::NodeId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Why a frame failed to be received by a particular node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LossReason {
    /// Received power below the demodulation sensitivity.
    BelowSensitivity,
    /// Destroyed by interference (failed capture).
    Collision,
    /// The receiver was transmitting at the time (half-duplex radio).
    HalfDuplex,
    /// The receiver was failed/powered off.
    ReceiverDown,
}

/// One trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A node started transmitting.
    TxStarted {
        /// Time the transmission began.
        at: SimTime,
        /// Transmitting node.
        node: NodeId,
        /// Unique transmission id.
        tx_id: u64,
        /// Payload length in bytes.
        bytes: usize,
        /// Time-on-air.
        airtime: Duration,
    },
    /// A transmission was refused by the duty-cycle regulator.
    TxBlockedDutyCycle {
        /// Time of the attempt.
        at: SimTime,
        /// Node that attempted.
        node: NodeId,
        /// Earliest compliant retry time, if any.
        retry_at: Option<SimTime>,
    },
    /// A transmission was refused because the radio was already busy.
    TxBusy {
        /// Time of the attempt.
        at: SimTime,
        /// Node that attempted.
        node: NodeId,
    },
    /// A frame was successfully delivered to a receiver.
    FrameDelivered {
        /// Delivery (end-of-reception) time.
        at: SimTime,
        /// Transmission id.
        tx_id: u64,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Received signal strength.
        rssi_dbm: f64,
        /// Signal-to-noise ratio.
        snr_db: f64,
    },
    /// A frame failed to reach a receiver.
    FrameLost {
        /// Time of the (failed) end of reception.
        at: SimTime,
        /// Transmission id.
        tx_id: u64,
        /// Sender.
        from: NodeId,
        /// Intended receiver (every in-range node is evaluated).
        to: NodeId,
        /// Why it was lost.
        reason: LossReason,
    },
    /// A node failed (powered off / crashed).
    NodeFailed {
        /// Failure time.
        at: SimTime,
        /// The node.
        node: NodeId,
    },
    /// A node recovered.
    NodeRecovered {
        /// Recovery time.
        at: SimTime,
        /// The node.
        node: NodeId,
    },
    /// A node moved to a new position.
    NodeMoved {
        /// Move time.
        at: SimTime,
        /// The node.
        node: NodeId,
        /// New x coordinate (m).
        x: f64,
        /// New y coordinate (m).
        y: f64,
    },
    /// Free-form note emitted by an application.
    Note {
        /// Emission time.
        at: SimTime,
        /// Emitting node.
        node: NodeId,
        /// The message.
        message: String,
    },
}

impl TraceEvent {
    /// The timestamp of the event.
    pub fn at(&self) -> SimTime {
        match *self {
            TraceEvent::TxStarted { at, .. }
            | TraceEvent::TxBlockedDutyCycle { at, .. }
            | TraceEvent::TxBusy { at, .. }
            | TraceEvent::FrameDelivered { at, .. }
            | TraceEvent::FrameLost { at, .. }
            | TraceEvent::NodeFailed { at, .. }
            | TraceEvent::NodeRecovered { at, .. }
            | TraceEvent::NodeMoved { at, .. }
            | TraceEvent::Note { at, .. } => at,
        }
    }
}

/// Trace verbosity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub enum TraceLevel {
    /// Record nothing.
    Off,
    /// Record everything except below-sensitivity losses (which are
    /// O(nodes²) noise in sparse networks). The default.
    #[default]
    Normal,
    /// Record everything.
    Verbose,
}

/// An append-only trace with query helpers.
#[derive(Debug, Default)]
pub struct Trace {
    level: TraceLevel,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace at the given level.
    pub fn new(level: TraceLevel) -> Self {
        Trace {
            level,
            events: Vec::new(),
        }
    }

    /// The configured level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Record an event, honoring the level filter.
    pub fn record(&mut self, event: TraceEvent) {
        match self.level {
            TraceLevel::Off => {}
            TraceLevel::Normal => {
                let is_noise = matches!(
                    event,
                    TraceEvent::FrameLost {
                        reason: LossReason::BelowSensitivity,
                        ..
                    }
                );
                if !is_noise {
                    self.events.push(event);
                }
            }
            TraceLevel::Verbose => self.events.push(event),
        }
    }

    /// All recorded events in chronological order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Iterator over events.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEvent> {
        self.events.iter()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count of transmissions started by `node` (all nodes if `None`).
    pub fn transmissions(&self, node: Option<NodeId>) -> usize {
        self.events
            .iter()
            .filter(|e| match e {
                TraceEvent::TxStarted { node: n, .. } => node.is_none_or(|q| q == *n),
                _ => false,
            })
            .count()
    }

    /// Count of frames delivered to `to` (all receivers if `None`).
    pub fn deliveries(&self, to: Option<NodeId>) -> usize {
        self.events
            .iter()
            .filter(|e| match e {
                TraceEvent::FrameDelivered { to: t, .. } => to.is_none_or(|q| q == *t),
                _ => false,
            })
            .count()
    }

    /// Count of losses with the given reason (any reason if `None`).
    pub fn losses(&self, reason: Option<LossReason>) -> usize {
        self.events
            .iter()
            .filter(|e| match e {
                TraceEvent::FrameLost { reason: r, .. } => reason.is_none_or(|q| q == *r),
                _ => false,
            })
            .count()
    }

    /// Deliveries on the directed link `from → to`.
    pub fn link_deliveries(&self, from: NodeId, to: NodeId) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(e, TraceEvent::FrameDelivered { from: f, to: t, .. }
                    if *f == from && *t == to)
            })
            .count()
    }

    /// Mean RSSI of deliveries on the directed link, if any.
    pub fn link_mean_rssi(&self, from: NodeId, to: NodeId) -> Option<f64> {
        let rssis: Vec<f64> = self
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::FrameDelivered {
                    from: f,
                    to: t,
                    rssi_dbm,
                    ..
                } if *f == from && *t == to => Some(*rssi_dbm),
                _ => None,
            })
            .collect();
        if rssis.is_empty() {
            None
        } else {
            Some(rssis.iter().sum::<f64>() / rssis.len() as f64)
        }
    }

    /// Drain the trace, leaving it empty.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Order-sensitive FNV-1a fingerprint of the full event stream.
    ///
    /// Two runs of the same seeded scenario must produce identical
    /// fingerprints — this is the determinism contract checked by
    /// `cargo xtask determinism` and the tier-1 double-run test. The
    /// hash covers every event's `Debug` rendering (field names and
    /// shortest-roundtrip float formatting included), so any drift in
    /// ordering, timing or payload changes the value.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |byte: u8| {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for event in &self.events {
            for byte in format!("{event:?}").bytes() {
                mix(byte);
            }
            // Separator so event boundaries shift the hash.
            mix(0xFF);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delivered(tx_id: u64, from: u16, to: u16, rssi: f64) -> TraceEvent {
        TraceEvent::FrameDelivered {
            at: SimTime::from_millis(tx_id),
            tx_id,
            from: NodeId(from),
            to: NodeId(to),
            rssi_dbm: rssi,
            snr_db: 5.0,
        }
    }

    fn lost(tx_id: u64, reason: LossReason) -> TraceEvent {
        TraceEvent::FrameLost {
            at: SimTime::from_millis(tx_id),
            tx_id,
            from: NodeId(1),
            to: NodeId(2),
            reason,
        }
    }

    #[test]
    fn off_level_records_nothing() {
        let mut t = Trace::new(TraceLevel::Off);
        t.record(delivered(1, 1, 2, -90.0));
        assert!(t.is_empty());
    }

    #[test]
    fn normal_level_filters_sensitivity_noise() {
        let mut t = Trace::new(TraceLevel::Normal);
        t.record(lost(1, LossReason::BelowSensitivity));
        t.record(lost(2, LossReason::Collision));
        assert_eq!(t.len(), 1);
        assert_eq!(t.losses(Some(LossReason::Collision)), 1);
        assert_eq!(t.losses(Some(LossReason::BelowSensitivity)), 0);
    }

    #[test]
    fn verbose_level_keeps_everything() {
        let mut t = Trace::new(TraceLevel::Verbose);
        t.record(lost(1, LossReason::BelowSensitivity));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn counting_helpers() {
        let mut t = Trace::new(TraceLevel::Normal);
        t.record(TraceEvent::TxStarted {
            at: SimTime::ZERO,
            node: NodeId(1),
            tx_id: 1,
            bytes: 10,
            airtime: Duration::from_millis(50),
        });
        t.record(delivered(1, 1, 2, -90.0));
        t.record(delivered(1, 1, 3, -95.0));
        t.record(lost(2, LossReason::HalfDuplex));
        assert_eq!(t.transmissions(None), 1);
        assert_eq!(t.transmissions(Some(NodeId(1))), 1);
        assert_eq!(t.transmissions(Some(NodeId(2))), 0);
        assert_eq!(t.deliveries(None), 2);
        assert_eq!(t.deliveries(Some(NodeId(3))), 1);
        assert_eq!(t.losses(None), 1);
        assert_eq!(t.link_deliveries(NodeId(1), NodeId(2)), 1);
    }

    #[test]
    fn link_mean_rssi_averages() {
        let mut t = Trace::new(TraceLevel::Normal);
        t.record(delivered(1, 1, 2, -90.0));
        t.record(delivered(2, 1, 2, -100.0));
        assert_eq!(t.link_mean_rssi(NodeId(1), NodeId(2)), Some(-95.0));
        assert_eq!(t.link_mean_rssi(NodeId(2), NodeId(1)), None);
    }

    #[test]
    fn take_drains() {
        let mut t = Trace::new(TraceLevel::Normal);
        t.record(delivered(1, 1, 2, -90.0));
        let drained = t.take();
        assert_eq!(drained.len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn event_timestamps_accessible() {
        let e = delivered(5, 1, 2, -90.0);
        assert_eq!(e.at(), SimTime::from_millis(5));
    }
}
