//! # loramon-sim
//!
//! A deterministic discrete-event simulator for LoRa radio networks.
//!
//! This crate substitutes for the physical ESP32/SX1276 testbed of the
//! paper: it runs [`Application`]s (such as the mesh protocol in
//! `loramon-mesh`) on simulated nodes connected by a radio [`channel`]
//! whose propagation, collision and duty-cycle behaviour comes from
//! `loramon-phy`. Every run is reproducible from a single seed.
//!
//! ## Example
//!
//! ```
//! use loramon_sim::{SimBuilder, IdleApp};
//! use loramon_phy::{Position, RadioConfig};
//! use std::time::Duration;
//!
//! let mut sim = SimBuilder::new().seed(42).build();
//! let cfg = RadioConfig::mesher_default();
//! let a = sim.add_node(Position::new(0.0, 0.0), cfg, Box::new(IdleApp::default()));
//! let b = sim.add_node(Position::new(150.0, 0.0), cfg, Box::new(IdleApp::default()));
//! sim.run_for(Duration::from_secs(10));
//! assert_eq!(sim.node_count(), 2);
//! assert_eq!(sim.stats(a).frames_sent, 0); // idle apps never transmit
//! # let _ = b;
//! ```

pub mod app;
pub mod apps;
pub mod channel;
pub mod fault;
pub mod node;
pub mod placement;
pub mod rng;
pub mod sim;
pub mod time;
pub mod trace;

pub use app::{Application, IdleApp, ReceivedFrame, TxResult, TxToken};
pub use apps::{Jammer, PeriodicSender};
pub use channel::ChannelParams;
pub use fault::{CrashEvent, FaultPlan, GatewayFailover};
pub use node::{NodeId, NodeStats};
pub use rng::Rng;
pub use sim::{Context, SimBuilder, Simulator};
pub use time::SimTime;
pub use trace::{LossReason, Trace, TraceEvent, TraceLevel};
