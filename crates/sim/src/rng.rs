//! Deterministic random numbers.
//!
//! The simulator must replay byte-identically from a seed on every
//! platform, so it carries its own small PRNG (xoshiro256** seeded via
//! splitmix64) instead of depending on `rand`'s version-dependent
//! algorithms. Derived streams (per link, per packet) are obtained by
//! hashing identifiers into fresh seeds, which keeps random draws
//! independent of event-processing order.

/// splitmix64 step — used for seeding and for one-shot hashes.
pub fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
}

/// One splitmix64 output for the given state (advances it).
pub fn splitmix64_next(state: &mut u64) -> u64 {
    splitmix64(state);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix an arbitrary list of words into a single well-distributed seed.
pub fn mix_seed(words: &[u64]) -> u64 {
    let mut state = 0x853C_49E6_748F_EA9Bu64;
    let mut out = 0u64;
    for &w in words {
        state ^= w;
        out ^= splitmix64_next(&mut state);
        out = out.rotate_left(17);
    }
    out ^ splitmix64_next(&mut state)
}

/// xoshiro256** deterministic PRNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second Box–Muller output.
    gauss_spare: Option<u64>,
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64_next(&mut sm),
            splitmix64_next(&mut sm),
            splitmix64_next(&mut sm),
            splitmix64_next(&mut sm),
        ];
        Rng {
            s,
            gauss_spare: None,
        }
    }

    /// A derived, statistically independent stream for the given labels.
    ///
    /// The same `(seed, labels)` always produces the same stream, no matter
    /// how many draws the parent has made — the backbone of per-link and
    /// per-packet determinism.
    pub fn derive(seed: u64, labels: &[u64]) -> Self {
        let mut words = Vec::with_capacity(labels.len() + 1);
        words.push(seed);
        words.extend_from_slice(labels);
        Rng::new(mix_seed(&words))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping (slight bias acceptable in
        // a simulator; bounds here are tiny relative to 2^64).
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "empty range");
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Standard normal deviate via Box–Muller.
    pub fn gaussian(&mut self) -> f64 {
        if let Some(bits) = self.gauss_spare.take() {
            return f64::from_bits(bits);
        }
        // Avoid u1 == 0 which would produce -inf.
        let u1 = loop {
            let v = self.next_f64();
            if v > 0.0 {
                break v;
            }
        };
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some((r * theta.sin()).to_bits());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn gaussian_with(&mut self, mean: f64, sigma: f64) -> f64 {
        mean + sigma * self.gaussian()
    }

    /// Exponential deviate with the given mean (for Poisson arrivals).
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "mean must be positive");
        let u = loop {
            let v = self.next_f64();
            if v > 0.0 {
                break v;
            }
        };
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_is_order_independent() {
        let mut parent = Rng::new(7);
        let _ = parent.next_u64(); // consuming the parent...
        let mut d1 = Rng::derive(7, &[1, 2]);
        let _ = parent.next_u64();
        let mut d2 = Rng::derive(7, &[1, 2]);
        // ...does not change derived streams.
        assert_eq!(d1.next_u64(), d2.next_u64());
    }

    #[test]
    fn derive_labels_matter() {
        let mut a = Rng::derive(7, &[1]);
        let mut b = Rng::derive(7, &[2]);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Rng::new(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = Rng::new(4);
        for _ in 0..10_000 {
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    fn next_below_hits_all_values() {
        let mut r = Rng::new(5);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[r.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng::new(11);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn gaussian_with_scales() {
        let mut r = Rng::new(13);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.gaussian_with(10.0, 2.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng::new(17);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential(5.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(19);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range p is clamped, not a panic.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn chance_frequency() {
        let mut r = Rng::new(23);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn next_below_zero_panics() {
        Rng::new(1).next_below(0);
    }

    #[test]
    fn mix_seed_sensitive_to_every_word() {
        let base = mix_seed(&[1, 2, 3]);
        assert_ne!(base, mix_seed(&[1, 2, 4]));
        assert_ne!(base, mix_seed(&[0, 2, 3]));
        assert_ne!(base, mix_seed(&[1, 2]));
        // Order matters too.
        assert_ne!(mix_seed(&[1, 2]), mix_seed(&[2, 1]));
    }
}
