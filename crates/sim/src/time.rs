//! Simulation time.
//!
//! The simulator runs on a monotonically increasing microsecond clock,
//! represented by the [`SimTime`] newtype. Microseconds are fine-grained
//! enough for LoRa symbol times (≥ 1 ms at 125 kHz) while keeping the
//! arithmetic in exact integers.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in simulated time, in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// A time `us` microseconds after the epoch.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// A time `ms` milliseconds after the epoch.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// A time `s` seconds after the epoch.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Saturating difference `self - earlier`.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_micros(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_micros() as u64)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_micros() as u64;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    /// # Panics
    ///
    /// Panics if `rhs` is later than `self` (time went backwards).
    fn sub(self, rhs: SimTime) -> Duration {
        assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        Duration::from_micros(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_ms = self.0 / 1_000;
        let (s, ms) = (total_ms / 1_000, total_ms % 1_000);
        write!(f, "{s}.{ms:03}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
    }

    #[test]
    fn add_duration() {
        let t = SimTime::from_secs(1) + Duration::from_millis(500);
        assert_eq!(t.as_millis(), 1_500);
    }

    #[test]
    fn subtraction_gives_duration() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(2);
        assert_eq!(a - b, Duration::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn backwards_subtraction_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration::from_secs(1));
    }

    #[test]
    fn display_is_seconds_with_millis() {
        assert_eq!(SimTime::from_millis(1_234).to_string(), "1.234s");
        assert_eq!(SimTime::ZERO.to_string(), "0.000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert_eq!(
            SimTime::from_secs(1).max(SimTime::from_secs(3)),
            SimTime::from_secs(3)
        );
    }
}
