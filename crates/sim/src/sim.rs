//! The discrete-event simulator.
//!
//! [`Simulator`] owns the nodes, their applications, the radio channel and
//! the event queue. Determinism guarantees: events are ordered by
//! `(time, insertion sequence)`, all randomness flows from one seed
//! through derived streams, and no hash-map iteration order leaks into
//! behaviour. The same seed and scenario replay byte-identically.

use crate::app::{Application, ReceivedFrame, TxResult, TxToken};
use crate::channel::{Channel, ChannelParams, TxRecord};
use crate::node::{NodeId, NodeState, NodeStats};
use crate::rng::Rng;
use crate::time::SimTime;
use crate::trace::{LossReason, Trace, TraceEvent, TraceLevel};
use bytes::Bytes;
use loramon_phy::collision::{CollisionModel, Interferer};
use loramon_phy::energy::{EnergyModel, RadioState};
use loramon_phy::propagation::{received_power_dbm, snr_db, PathLossModel};
use loramon_phy::region::RegionParams;
use loramon_phy::{sensitivity_dbm, DutyCycleRegulator, LogDistance, Position, RadioConfig};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

#[derive(Debug, Clone)]
struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

#[derive(Debug, Clone)]
enum EventKind {
    Start {
        node: usize,
    },
    Timer {
        node: usize,
        id: u64,
    },
    TxEnd {
        tx_id: u64,
    },
    TxFailed {
        node: usize,
        token: TxToken,
        busy: bool,
        retry_at_us: Option<u64>,
    },
    Fail {
        node: usize,
    },
    Recover {
        node: usize,
    },
    Move {
        node: usize,
        x: f64,
        y: f64,
    },
}

/// Builder for a [`Simulator`].
///
/// ```
/// use loramon_sim::SimBuilder;
/// use loramon_phy::LogDistance;
///
/// let sim = SimBuilder::new()
///     .seed(7)
///     .path_loss(LogDistance::suburban())
///     .build();
/// assert_eq!(sim.node_count(), 0);
/// ```
pub struct SimBuilder {
    seed: u64,
    region: Option<RegionParams>,
    path_loss: Box<dyn PathLossModel>,
    collision: CollisionModel,
    channel_params: ChannelParams,
    duty_cycle: f64,
    energy: EnergyModel,
    trace_level: TraceLevel,
    die_on_battery_empty: bool,
}

impl std::fmt::Debug for SimBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimBuilder")
            .field("seed", &self.seed)
            .field("duty_cycle", &self.duty_cycle)
            .field("trace_level", &self.trace_level)
            .finish_non_exhaustive()
    }
}

impl SimBuilder {
    /// A builder with suburban propagation, the default collision model,
    /// EU868 1% duty cycle and seed 0.
    pub fn new() -> Self {
        SimBuilder {
            seed: 0,
            region: None,
            path_loss: Box::new(LogDistance::suburban()),
            collision: CollisionModel::default(),
            channel_params: ChannelParams::default(),
            duty_cycle: 0.01,
            energy: EnergyModel::sx1276_default(),
            trace_level: TraceLevel::Normal,
            die_on_battery_empty: false,
        }
    }

    /// Set the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enforce a regulatory region: node radio configurations are
    /// validated on [`Simulator::add_node`] and the regional duty cycle
    /// replaces the builder's.
    pub fn region(mut self, region: loramon_phy::Region) -> Self {
        let params = RegionParams::new(region);
        self.duty_cycle = params.duty_cycle();
        self.region = Some(params);
        self
    }

    /// Set the path-loss model.
    pub fn path_loss(mut self, model: impl PathLossModel + 'static) -> Self {
        self.path_loss = Box::new(model);
        self
    }

    /// Set the collision model.
    pub fn collision(mut self, model: CollisionModel) -> Self {
        self.collision = model;
        self
    }

    /// Set channel parameters (fading, retention).
    pub fn channel_params(mut self, params: ChannelParams) -> Self {
        self.channel_params = params;
        self
    }

    /// Set the per-node duty-cycle fraction (default 0.01 for EU868; use
    /// 1.0 to disable regulation).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < duty_cycle <= 1`.
    pub fn duty_cycle(mut self, duty_cycle: f64) -> Self {
        assert!(duty_cycle > 0.0 && duty_cycle <= 1.0);
        self.duty_cycle = duty_cycle;
        self
    }

    /// Set the energy model used by all nodes.
    pub fn energy(mut self, model: EnergyModel) -> Self {
        self.energy = model;
        self
    }

    /// Set trace verbosity.
    pub fn trace_level(mut self, level: TraceLevel) -> Self {
        self.trace_level = level;
        self
    }

    /// Fail nodes automatically when their battery empties.
    pub fn die_on_battery_empty(mut self, die: bool) -> Self {
        self.die_on_battery_empty = die;
        self
    }

    /// Build the simulator.
    pub fn build(self) -> Simulator {
        Simulator {
            now: SimTime::ZERO,
            region: self.region,
            queue: BinaryHeap::new(),
            seq: 0,
            nodes: Vec::new(),
            apps: Vec::new(),
            channel: Channel::new(),
            channel_params: self.channel_params,
            collision: self.collision,
            path_loss: self.path_loss,
            seed: self.seed,
            duty_cycle: self.duty_cycle,
            energy: self.energy,
            trace: Trace::new(self.trace_level),
            die_on_battery_empty: self.die_on_battery_empty,
            next_tx_id: 1,
            started: false,
        }
    }
}

impl Default for SimBuilder {
    fn default() -> Self {
        SimBuilder::new()
    }
}

/// The discrete-event LoRa network simulator.
pub struct Simulator {
    now: SimTime,
    region: Option<RegionParams>,
    queue: BinaryHeap<Reverse<Event>>,
    seq: u64,
    nodes: Vec<NodeState>,
    apps: Vec<Option<Box<dyn Application>>>,
    channel: Channel,
    channel_params: ChannelParams,
    collision: CollisionModel,
    path_loss: Box<dyn PathLossModel>,
    seed: u64,
    duty_cycle: f64,
    energy: EnergyModel,
    trace: Trace,
    die_on_battery_empty: bool,
    next_tx_id: u64,
    started: bool,
}

impl Simulator {
    /// Add a node at `position` with the given radio configuration and
    /// application. Returns the assigned address.
    ///
    /// # Panics
    ///
    /// Panics if called after the simulation started, if the node
    /// table is full (more than `0xFFFE` nodes), or if a configured
    /// region rejects the radio configuration.
    pub fn add_node(
        &mut self,
        position: Position,
        config: RadioConfig,
        app: Box<dyn Application>,
    ) -> NodeId {
        assert!(
            !self.started,
            "cannot add nodes after the simulation started"
        );
        assert!(self.nodes.len() < 0xFFFE, "node table full");
        if let Some(region) = &self.region {
            if let Err(violation) = region.validate(&config) {
                panic!(
                    "radio configuration violates {}: {violation}",
                    region.region()
                );
            }
        }
        let id = NodeId(self.nodes.len() as u16 + 1);
        let regulator = DutyCycleRegulator::new(self.duty_cycle);
        self.nodes
            .push(NodeState::new(id, position, config, regulator, self.energy));
        self.apps.push(Some(app));
        let node = self.nodes.len() - 1;
        self.push(SimTime::ZERO, EventKind::Start { node });
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Position of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is unknown.
    pub fn position(&self, id: NodeId) -> Position {
        self.nodes[self.index(id)].position
    }

    /// Ground-truth statistics of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is unknown.
    pub fn stats(&self, id: NodeId) -> NodeStats {
        self.nodes[self.index(id)].stats
    }

    /// Remaining battery percentage of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is unknown.
    pub fn battery_percent(&self, id: NodeId) -> u8 {
        let n = &self.nodes[self.index(id)];
        n.battery_percent_at(self.now)
    }

    /// Whether a node is currently failed.
    ///
    /// # Panics
    ///
    /// Panics if the node id is unknown.
    pub fn is_failed(&self, id: NodeId) -> bool {
        self.nodes[self.index(id)].failed
    }

    /// All node ids in creation order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|n| n.id).collect()
    }

    /// The trace collected so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the trace (e.g. to drain it).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Borrow a node's application downcast to its concrete type.
    ///
    /// Returns `None` if the type does not match.
    ///
    /// # Panics
    ///
    /// Panics if the node id is unknown or the call re-enters dispatch.
    pub fn app_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.apps[self.index(id)]
            .as_ref()
            .expect("application is checked out (re-entrant call?)")
            .as_any()
            .downcast_ref::<T>()
    }

    /// Mutably borrow a node's application downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the node id is unknown or the call re-enters dispatch.
    pub fn app_as_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        let idx = self.index(id);
        self.apps[idx]
            .as_mut()
            .expect("application is checked out (re-entrant call?)")
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Schedule a node failure at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if the node id is unknown.
    pub fn schedule_failure(&mut self, id: NodeId, at: SimTime) {
        let node = self.index(id);
        self.push(at, EventKind::Fail { node });
    }

    /// Schedule a node recovery at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if the node id is unknown.
    pub fn schedule_recovery(&mut self, id: NodeId, at: SimTime) {
        let node = self.index(id);
        self.push(at, EventKind::Recover { node });
    }

    /// Schedule a node to move (teleport) to `position` at `at`.
    ///
    /// Frames whose reception completes after the move are evaluated at
    /// the new position. Per-link shadowing samples are keyed by node
    /// pair and therefore stay fixed across moves — the model suits
    /// occasional repositioning (a maintenance relocation), not
    /// continuous vehicular fading.
    ///
    /// # Panics
    ///
    /// Panics if the node id is unknown.
    pub fn schedule_move(&mut self, id: NodeId, at: SimTime, position: Position) {
        let node = self.index(id);
        self.push(
            at,
            EventKind::Move {
                node,
                x: position.x,
                y: position.y,
            },
        );
    }

    /// Schedule a straight-line walk: the node is repositioned every
    /// `step` along the segment from its configured start to `to`,
    /// arriving at `depart + distance / speed_mps`.
    ///
    /// # Panics
    ///
    /// Panics if the node id is unknown, `speed_mps <= 0`, or `step`
    /// is zero.
    pub fn schedule_walk(
        &mut self,
        id: NodeId,
        depart: SimTime,
        to: Position,
        speed_mps: f64,
        step: Duration,
    ) {
        assert!(speed_mps > 0.0, "speed must be positive");
        assert!(!step.is_zero(), "step must be non-zero");
        let from = self.position(id);
        let distance = from.distance_to(to);
        if distance == 0.0 {
            return;
        }
        let travel = Duration::from_secs_f64(distance / speed_mps);
        let steps = (travel.as_secs_f64() / step.as_secs_f64()).ceil() as u64;
        for i in 1..=steps {
            let frac = (i as f64 / steps as f64).min(1.0);
            let pos = Position::new(
                from.x + (to.x - from.x) * frac,
                from.y + (to.y - from.y) * frac,
            );
            self.schedule_move(id, depart + step.mul_f64(i as f64), pos);
        }
    }

    /// Run until the queue is exhausted or `until` is reached; the clock
    /// ends at exactly `until`.
    pub fn run_until(&mut self, until: SimTime) {
        self.started = true;
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.at > until {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked");
            debug_assert!(ev.at >= self.now, "time went backwards");
            self.now = ev.at;
            self.dispatch(ev);
        }
        self.now = self.now.max(until);
        self.channel.prune(self.now, self.channel_params.retention);
    }

    /// Run for a duration from the current time.
    pub fn run_for(&mut self, dur: Duration) {
        self.run_until(self.now + dur);
    }

    fn index(&self, id: NodeId) -> usize {
        let idx = id.0 as usize;
        assert!(idx >= 1 && idx <= self.nodes.len(), "unknown node {id}");
        idx - 1
    }

    fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Event { at, seq, kind }));
    }

    fn dispatch(&mut self, ev: Event) {
        match ev.kind {
            EventKind::Start { node } => {
                if !self.nodes[node].failed {
                    self.with_app(node, |app, ctx| app.on_start(ctx));
                }
            }
            EventKind::Timer { node, id } => {
                if !self.nodes[node].failed {
                    self.with_app(node, |app, ctx| app.on_timer(ctx, id));
                }
            }
            EventKind::TxFailed {
                node,
                token,
                busy,
                retry_at_us,
            } => {
                if !self.nodes[node].failed {
                    let result = if busy {
                        TxResult::Busy
                    } else {
                        TxResult::DutyCycleBlocked {
                            retry_at: retry_at_us.map(SimTime::from_micros),
                        }
                    };
                    self.with_app(node, |app, ctx| app.on_tx_result(ctx, token, result));
                }
            }
            EventKind::TxEnd { tx_id } => self.handle_tx_end(tx_id),
            EventKind::Fail { node } => self.fail_node(node),
            EventKind::Recover { node } => self.recover_node(node),
            EventKind::Move { node, x, y } => {
                self.nodes[node].position = Position::new(x, y);
                let id = self.nodes[node].id;
                self.trace.record(TraceEvent::NodeMoved {
                    at: self.now,
                    node: id,
                    x,
                    y,
                });
            }
        }
    }

    fn with_app(&mut self, node: usize, f: impl FnOnce(&mut dyn Application, &mut Context<'_>)) {
        let mut app = self.apps[node].take().expect("app checked out");
        {
            let mut ctx = Context { sim: self, node };
            f(app.as_mut(), &mut ctx);
        }
        self.apps[node] = Some(app);
    }

    fn fail_node(&mut self, node: usize) {
        if self.nodes[node].failed {
            return;
        }
        let now = self.now;
        let n = &mut self.nodes[node];
        n.transition(now, RadioState::Sleep);
        n.failed = true;
        n.tx_until = None;
        self.trace.record(TraceEvent::NodeFailed {
            at: now,
            node: n.id,
        });
    }

    fn recover_node(&mut self, node: usize) {
        if !self.nodes[node].failed {
            return;
        }
        let now = self.now;
        {
            let n = &mut self.nodes[node];
            n.transition(now, RadioState::Rx);
            n.failed = false;
        }
        self.trace.record(TraceEvent::NodeRecovered {
            at: now,
            node: self.nodes[node].id,
        });
        self.with_app(node, |app, ctx| app.on_recover(ctx));
    }

    /// Median received power on the directed link `tx → rx` (stable per
    /// link: log-normal shadowing is sampled once from a derived stream).
    fn median_rx_power_dbm(&self, tx_idx: usize, rx_idx: usize) -> f64 {
        let tx = &self.nodes[tx_idx];
        let rx = &self.nodes[rx_idx];
        let d = tx.position.distance_to(rx.position);
        let pl = self.path_loss.path_loss_db(d);
        let sigma = self.path_loss.shadowing_sigma_db();
        let shadow = if sigma > 0.0 {
            // Symmetric per-link sample: key by the unordered pair.
            let (a, b) = if tx_idx <= rx_idx {
                (tx_idx, rx_idx)
            } else {
                (rx_idx, tx_idx)
            };
            let mut rng = Rng::derive(self.seed, &[0x5AD0, a as u64, b as u64]);
            rng.gaussian_with(0.0, sigma)
        } else {
            0.0
        };
        received_power_dbm(tx.config.tx_power_dbm(), pl, shadow)
    }

    /// Per-packet received power: median plus fast fading.
    fn packet_rx_power_dbm(&self, tx_idx: usize, rx_idx: usize, tx_id: u64) -> f64 {
        let median = self.median_rx_power_dbm(tx_idx, rx_idx);
        let sigma = self.channel_params.fading_sigma_db;
        if sigma > 0.0 {
            let mut rng = Rng::derive(self.seed, &[0xFAD1, tx_id, rx_idx as u64]);
            median + rng.gaussian_with(0.0, sigma)
        } else {
            median
        }
    }

    fn handle_tx_end(&mut self, tx_id: u64) {
        let Some(record) = self.channel.get(tx_id).cloned() else {
            return; // pruned (cannot normally happen)
        };
        let sender_idx = record.sender_idx;
        let now = self.now;

        // Sender's radio is free again.
        {
            let n = &mut self.nodes[sender_idx];
            if !n.failed {
                n.transition(now, RadioState::Rx);
                n.tx_until = None;
            }
        }

        // Evaluate reception at every other node, in id order.
        for rx_idx in 0..self.nodes.len() {
            if rx_idx == sender_idx {
                continue;
            }
            self.evaluate_reception(&record, rx_idx);
        }

        // Tell the sender its frame went out.
        if !self.nodes[sender_idx].failed {
            let airtime = record.end - record.start;
            self.with_app(sender_idx, |app, ctx| {
                app.on_tx_result(ctx, TxToken(tx_id), TxResult::Sent { airtime });
            });
        }

        self.channel.prune(now, self.channel_params.retention);
    }

    fn evaluate_reception(&mut self, record: &TxRecord, rx_idx: usize) {
        let rx = &self.nodes[rx_idx];
        let rx_id = rx.id;
        let rx_config = rx.config;
        let rx_failed = rx.failed;

        if !rx_config.compatible_with(&record.config) {
            return;
        }

        let rssi = self.packet_rx_power_dbm(record.sender_idx, rx_idx, record.tx_id);
        let sens = sensitivity_dbm(rx_config.sf(), rx_config.bw());
        if rssi < sens {
            self.trace.record(TraceEvent::FrameLost {
                at: self.now,
                tx_id: record.tx_id,
                from: record.sender,
                to: rx_id,
                reason: LossReason::BelowSensitivity,
            });
            return;
        }

        if rx_failed {
            self.trace.record(TraceEvent::FrameLost {
                at: self.now,
                tx_id: record.tx_id,
                from: record.sender,
                to: rx_id,
                reason: LossReason::ReceiverDown,
            });
            self.nodes[rx_idx].stats.frames_lost += 1;
            return;
        }

        // Half-duplex: the receiver transmitted during the window.
        if self
            .channel
            .sender_overlaps(rx_idx, record.start, record.end)
        {
            self.trace.record(TraceEvent::FrameLost {
                at: self.now,
                tx_id: record.tx_id,
                from: record.sender,
                to: rx_id,
                reason: LossReason::HalfDuplex,
            });
            self.nodes[rx_idx].stats.frames_lost += 1;
            return;
        }

        // Gather interference from every other overlapping transmission.
        let interferers: Vec<Interferer> = self
            .channel
            .overlapping(record.start, record.end, record.tx_id)
            .filter(|other| other.sender_idx != rx_idx)
            .filter(|other| CollisionModel::interacts(&other.config, &record.config))
            .map(|other| Interferer {
                power_dbm: self.packet_rx_power_dbm(other.sender_idx, rx_idx, other.tx_id),
                same_sf: other.config.sf() == record.config.sf(),
                overlaps_preamble: other.start < record.preamble_end && record.start < other.end,
            })
            .collect();

        let outcome = self.collision.evaluate(rssi, &interferers);
        if !outcome.survives() {
            self.trace.record(TraceEvent::FrameLost {
                at: self.now,
                tx_id: record.tx_id,
                from: record.sender,
                to: rx_id,
                reason: LossReason::Collision,
            });
            self.nodes[rx_idx].stats.frames_lost += 1;
            return;
        }

        let snr = snr_db(rssi, rx_config.bw().hz());
        self.trace.record(TraceEvent::FrameDelivered {
            at: self.now,
            tx_id: record.tx_id,
            from: record.sender,
            to: rx_id,
            rssi_dbm: rssi,
            snr_db: snr,
        });
        self.nodes[rx_idx].stats.frames_received += 1;

        let frame = ReceivedFrame {
            payload: record.payload.clone(),
            tx_id: record.tx_id,
            rssi_dbm: rssi,
            snr_db: snr,
            started: record.start,
            ended: self.now,
        };
        self.with_app(rx_idx, |app, ctx| app.on_frame(ctx, &frame));
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("queued_events", &self.queue.len())
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

/// Handle through which an [`Application`] interacts with its node and
/// the world. Only valid during a callback.
pub struct Context<'a> {
    sim: &'a mut Simulator,
    node: usize,
}

impl std::fmt::Debug for Context<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("node", &self.node)
            .field("now", &self.sim.now)
            .finish_non_exhaustive()
    }
}

impl Context<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.sim.now
    }

    /// This node's address.
    pub fn node_id(&self) -> NodeId {
        self.sim.nodes[self.node].id
    }

    /// This node's position.
    pub fn position(&self) -> Position {
        self.sim.nodes[self.node].position
    }

    /// This node's radio configuration.
    pub fn radio_config(&self) -> RadioConfig {
        self.sim.nodes[self.node].config
    }

    /// Remaining battery percentage.
    pub fn battery_percent(&self) -> u8 {
        self.sim.nodes[self.node].battery_percent_at(self.sim.now)
    }

    /// Duty-cycle budget utilization (1.0 = at the regulatory cap).
    pub fn duty_cycle_utilization(&self) -> f64 {
        self.sim.nodes[self.node]
            .regulator
            .utilization(self.sim.now.as_micros())
    }

    /// A random stream for this node (derived; draws do not perturb other
    /// nodes' streams).
    pub fn rng(&self) -> Rng {
        Rng::derive(
            self.sim.seed,
            &[0xA991, self.node as u64, self.sim.now.as_micros()],
        )
    }

    /// Channel-activity detection: is any demodulable transmission
    /// currently on the air at this node?
    pub fn channel_busy(&self) -> bool {
        let cfg = self.sim.nodes[self.node].config;
        let sens = sensitivity_dbm(cfg.sf(), cfg.bw());
        let now = self.sim.now;
        let hits: Vec<(usize, u64)> = self
            .sim
            .channel
            .active(now)
            .filter(|r| r.sender_idx != self.node && cfg.compatible_with(&r.config))
            .map(|r| (r.sender_idx, r.tx_id))
            .collect();
        hits.into_iter().any(|(sender_idx, tx_id)| {
            self.sim.packet_rx_power_dbm(sender_idx, self.node, tx_id) >= sens
        })
    }

    /// Queue a frame for transmission. The outcome arrives later via
    /// [`Application::on_tx_result`]: `Sent` when the airtime completes,
    /// or `Busy`/`DutyCycleBlocked` (scheduled immediately) on refusal.
    pub fn transmit(&mut self, payload: Bytes) -> TxToken {
        let now = self.sim.now;
        let token = TxToken(self.sim.next_tx_id);
        self.sim.next_tx_id += 1;

        let node = &mut self.sim.nodes[self.node];
        if node.is_transmitting(now) {
            node.stats.busy_rejections += 1;
            let id = node.id;
            self.sim
                .trace
                .record(TraceEvent::TxBusy { at: now, node: id });
            self.sim.push(
                now,
                EventKind::TxFailed {
                    node: self.node,
                    token,
                    busy: true,
                    retry_at_us: None,
                },
            );
            return token;
        }

        let airtime = loramon_phy::airtime::time_on_air(&node.config, payload.len());
        let airtime_us = airtime.as_micros() as u64;
        if !node.regulator.may_transmit(now.as_micros(), airtime_us) {
            node.stats.duty_cycle_blocks += 1;
            let retry = node.regulator.next_allowed_at(now.as_micros(), airtime_us);
            let id = node.id;
            self.sim.trace.record(TraceEvent::TxBlockedDutyCycle {
                at: now,
                node: id,
                retry_at: retry.map(SimTime::from_micros),
            });
            self.sim.push(
                now,
                EventKind::TxFailed {
                    node: self.node,
                    token,
                    busy: false,
                    retry_at_us: retry,
                },
            );
            return token;
        }

        node.regulator
            .record_transmission(now.as_micros(), airtime_us);
        node.stats.frames_sent += 1;
        node.stats.airtime_us += airtime_us;
        node.transition(now, RadioState::Tx);
        let end = now + airtime;
        node.tx_until = Some(end);
        let preamble = loramon_phy::airtime::preamble_duration(&node.config);
        let record = TxRecord {
            tx_id: token.0,
            sender_idx: self.node,
            sender: node.id,
            config: node.config,
            payload,
            start: now,
            end,
            preamble_end: now + preamble,
        };
        let bytes = record.payload.len();
        let sender = node.id;
        self.sim.channel.add(record);
        self.sim.trace.record(TraceEvent::TxStarted {
            at: now,
            node: sender,
            tx_id: token.0,
            bytes,
            airtime,
        });
        self.sim.push(end, EventKind::TxEnd { tx_id: token.0 });

        if self.sim.die_on_battery_empty && self.sim.nodes[self.node].battery.is_empty() {
            self.sim.push(now, EventKind::Fail { node: self.node });
        }
        token
    }

    /// Arrange for [`Application::on_timer`] to fire `delay` from now with
    /// the given application-chosen id.
    pub fn set_timer(&mut self, delay: Duration, id: u64) {
        let at = self.sim.now + delay;
        self.sim.push(
            at,
            EventKind::Timer {
                node: self.node,
                id,
            },
        );
    }

    /// Emit a free-form note into the trace.
    pub fn note(&mut self, message: impl Into<String>) {
        let id = self.sim.nodes[self.node].id;
        let at = self.sim.now;
        self.sim.trace.record(TraceEvent::Note {
            at,
            node: id,
            message: message.into(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::IdleApp;
    use std::any::Any;

    /// Sends one fixed frame after a configurable delay.
    struct OneShot {
        delay: Duration,
        payload: &'static [u8],
        results: Vec<TxResult>,
        frames: Vec<ReceivedFrame>,
        starts: u32,
    }

    impl OneShot {
        fn new(delay: Duration) -> Self {
            OneShot {
                delay,
                payload: b"hello mesh",
                results: Vec::new(),
                frames: Vec::new(),
                starts: 0,
            }
        }
    }

    impl Application for OneShot {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            self.starts += 1;
            ctx.set_timer(self.delay, 1);
        }

        fn on_timer(&mut self, ctx: &mut Context<'_>, _timer: u64) {
            ctx.transmit(Bytes::from_static(self.payload));
        }

        fn on_frame(&mut self, _ctx: &mut Context<'_>, frame: &ReceivedFrame) {
            self.frames.push(frame.clone());
        }

        fn on_tx_result(&mut self, _ctx: &mut Context<'_>, _token: TxToken, result: TxResult) {
            self.results.push(result);
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_node_sim(distance_m: f64) -> (Simulator, NodeId, NodeId) {
        let mut sim = SimBuilder::new().seed(1).build();
        let cfg = RadioConfig::mesher_default();
        let a = sim.add_node(
            Position::new(0.0, 0.0),
            cfg,
            Box::new(OneShot::new(Duration::from_millis(10))),
        );
        let b = sim.add_node(
            Position::new(distance_m, 0.0),
            cfg,
            Box::new(IdleApp::default()),
        );
        (sim, a, b)
    }

    #[test]
    fn close_nodes_deliver_frames() {
        let (mut sim, a, b) = two_node_sim(100.0);
        sim.run_for(Duration::from_secs(1));
        let idle: &IdleApp = sim.app_as(b).unwrap();
        assert_eq!(idle.frames_seen.len(), 1);
        assert_eq!(&idle.frames_seen[0].payload[..], b"hello mesh");
        assert!(idle.frames_seen[0].rssi_dbm < 0.0);
        assert_eq!(sim.stats(a).frames_sent, 1);
        assert_eq!(sim.stats(b).frames_received, 1);
    }

    #[test]
    fn distant_nodes_hear_nothing() {
        let (mut sim, _a, b) = two_node_sim(100_000.0);
        sim.run_for(Duration::from_secs(1));
        let idle: &IdleApp = sim.app_as(b).unwrap();
        assert!(idle.frames_seen.is_empty());
        assert_eq!(sim.stats(b).frames_received, 0);
    }

    #[test]
    fn sender_gets_sent_result() {
        let (mut sim, a, _b) = two_node_sim(100.0);
        sim.run_for(Duration::from_secs(1));
        let app: &OneShot = sim.app_as(a).unwrap();
        assert_eq!(app.results.len(), 1);
        assert!(app.results[0].is_sent());
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed: u64| {
            let mut sim = SimBuilder::new().seed(seed).build();
            let cfg = RadioConfig::mesher_default();
            // Long marginal links (shadowing-sensitive) and staggered,
            // non-overlapping transmissions so the realized trace depends
            // on the per-seed channel randomness.
            for i in 0..5u64 {
                sim.add_node(
                    Position::new(i as f64 * 900.0, 0.0),
                    cfg,
                    Box::new(OneShot::new(Duration::from_millis(10 + 100 * i))),
                );
            }
            sim.run_for(Duration::from_secs(2));
            format!("{:?}", sim.trace().events())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn simultaneous_equal_transmissions_collide() {
        let mut sim = SimBuilder::new()
            .seed(1)
            .channel_params(ChannelParams {
                fading_sigma_db: 0.0,
                retention: Duration::from_secs(30),
            })
            .build();
        // Two senders equidistant from a middle receiver, transmitting at
        // the same instant: symmetric powers → both lost.
        let cfg = RadioConfig::mesher_default();
        let zero = Duration::from_millis(10);
        sim.add_node(
            Position::new(-100.0, 0.0),
            cfg,
            Box::new(OneShot::new(zero)),
        );
        sim.add_node(Position::new(100.0, 0.0), cfg, Box::new(OneShot::new(zero)));
        let c = sim.add_node(Position::new(0.0, 0.0), cfg, Box::new(IdleApp::default()));
        sim.run_for(Duration::from_secs(1));
        let idle: &IdleApp = sim.app_as(c).unwrap();
        assert!(idle.frames_seen.is_empty(), "both should collide");
        assert_eq!(sim.trace().losses(Some(LossReason::Collision)), 2);
    }

    #[test]
    fn capture_effect_near_far() {
        let mut sim = SimBuilder::new()
            .seed(1)
            .channel_params(ChannelParams {
                fading_sigma_db: 0.0,
                retention: Duration::from_secs(30),
            })
            .build();
        let cfg = RadioConfig::mesher_default();
        let zero = Duration::from_millis(10);
        // Near (50 m) and far (800 m) senders collide at the receiver:
        // the near one should capture.
        let near = sim.add_node(Position::new(50.0, 0.0), cfg, Box::new(OneShot::new(zero)));
        sim.add_node(Position::new(800.0, 0.0), cfg, Box::new(OneShot::new(zero)));
        let c = sim.add_node(Position::new(0.0, 0.0), cfg, Box::new(IdleApp::default()));
        sim.run_for(Duration::from_secs(1));
        let idle: &IdleApp = sim.app_as(c).unwrap();
        assert_eq!(idle.frames_seen.len(), 1, "near sender should capture");
        assert_eq!(sim.trace().link_deliveries(near, c), 1);
    }

    #[test]
    fn half_duplex_sender_misses_frames() {
        // Both transmit simultaneously: neither can hear the other.
        let mut sim = SimBuilder::new().seed(1).build();
        let cfg = RadioConfig::mesher_default();
        let zero = Duration::from_millis(10);
        let a = sim.add_node(Position::new(0.0, 0.0), cfg, Box::new(OneShot::new(zero)));
        let b = sim.add_node(Position::new(50.0, 0.0), cfg, Box::new(OneShot::new(zero)));
        sim.run_for(Duration::from_secs(1));
        for id in [a, b] {
            let app: &OneShot = sim.app_as(id).unwrap();
            assert!(app.frames.is_empty(), "half-duplex node heard a frame");
        }
        assert_eq!(sim.trace().losses(Some(LossReason::HalfDuplex)), 2);
    }

    #[test]
    fn busy_radio_rejects_second_transmit() {
        struct DoubleSend {
            results: Vec<TxResult>,
        }
        impl Application for DoubleSend {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.transmit(Bytes::from_static(&[0u8; 32]));
                ctx.transmit(Bytes::from_static(&[1u8; 32]));
            }
            fn on_tx_result(&mut self, _c: &mut Context<'_>, _t: TxToken, r: TxResult) {
                self.results.push(r);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = SimBuilder::new().seed(1).build();
        let a = sim.add_node(
            Position::new(0.0, 0.0),
            RadioConfig::mesher_default(),
            Box::new(DoubleSend { results: vec![] }),
        );
        sim.run_for(Duration::from_secs(1));
        let app: &DoubleSend = sim.app_as(a).unwrap();
        assert_eq!(app.results.len(), 2);
        // Busy result arrives first (immediate), Sent second (at TxEnd).
        assert_eq!(app.results[0], TxResult::Busy);
        assert!(app.results[1].is_sent());
        assert_eq!(sim.stats(a).busy_rejections, 1);
    }

    #[test]
    fn duty_cycle_blocks_after_budget() {
        struct Spammer {
            blocked: u32,
            sent: u32,
        }
        impl Application for Spammer {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(Duration::from_millis(1), 0);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, _id: u64) {
                ctx.transmit(Bytes::from_static(&[0u8; 200]));
            }
            fn on_tx_result(&mut self, ctx: &mut Context<'_>, _t: TxToken, r: TxResult) {
                match r {
                    TxResult::Sent { .. } => {
                        self.sent += 1;
                        ctx.set_timer(Duration::from_millis(1), 0);
                    }
                    TxResult::DutyCycleBlocked { .. } => self.blocked += 1,
                    TxResult::Busy => {}
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = SimBuilder::new().seed(1).duty_cycle(0.01).build();
        let a = sim.add_node(
            Position::new(0.0, 0.0),
            RadioConfig::mesher_default(),
            Box::new(Spammer {
                blocked: 0,
                sent: 0,
            }),
        );
        sim.run_for(Duration::from_secs(600));
        let app: &Spammer = sim.app_as(a).unwrap();
        assert!(app.blocked >= 1, "duty cycle never blocked");
        // Airtime must respect ~1% of 10 minutes = 6 s.
        let airtime_s = sim.stats(a).airtime_us as f64 / 1e6;
        assert!(
            airtime_s <= 36.5,
            "airtime {airtime_s}s exceeds hourly budget"
        );
    }

    #[test]
    fn failed_node_neither_sends_nor_receives() {
        let (mut sim, a, b) = two_node_sim(100.0);
        sim.schedule_failure(b, SimTime::ZERO);
        sim.run_for(Duration::from_secs(1));
        let idle: &IdleApp = sim.app_as(b).unwrap();
        assert!(idle.frames_seen.is_empty());
        assert!(sim.is_failed(b));
        assert!(!sim.is_failed(a));
        assert_eq!(sim.trace().losses(Some(LossReason::ReceiverDown)), 1);
    }

    #[test]
    fn recovery_restarts_app() {
        let (mut sim, a, _b) = two_node_sim(100.0);
        sim.schedule_failure(a, SimTime::ZERO);
        sim.schedule_recovery(a, SimTime::from_secs(1));
        sim.run_for(Duration::from_secs(2));
        let app: &OneShot = sim.app_as(a).unwrap();
        // on_start ran at t=0 (the Start event precedes the same-time Fail
        // event) and again at recovery; only the post-recovery timer
        // survived to produce a transmission.
        assert_eq!(app.starts, 2);
        assert_eq!(app.results.len(), 1);
    }

    #[test]
    fn clock_advances_to_run_until_bound() {
        let mut sim = SimBuilder::new().build();
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn battery_drains_in_rx() {
        let mut sim = SimBuilder::new()
            .energy(EnergyModel::new(0.0, 0.0, 100.0, 200.0, 1.0))
            .build();
        let a = sim.add_node(
            Position::new(0.0, 0.0),
            RadioConfig::mesher_default(),
            Box::new(IdleApp::default()),
        );
        assert_eq!(sim.battery_percent(a), 100);
        // 1 mAh at 100 mA rx = 36 s to empty. Run 18 s then force accrual
        // via a failure event.
        sim.schedule_failure(a, SimTime::from_secs(18));
        sim.run_for(Duration::from_secs(20));
        let pct = sim.battery_percent(a);
        assert!((45..=55).contains(&pct), "battery {pct}%");
    }

    #[test]
    fn trace_records_tx_and_delivery() {
        let (mut sim, a, b) = two_node_sim(100.0);
        sim.run_for(Duration::from_secs(1));
        assert_eq!(sim.trace().transmissions(Some(a)), 1);
        assert_eq!(sim.trace().link_deliveries(a, b), 1);
    }

    #[test]
    #[should_panic(expected = "after the simulation started")]
    fn adding_nodes_after_start_panics() {
        let mut sim = SimBuilder::new().build();
        sim.run_for(Duration::from_secs(1));
        sim.add_node(
            Position::new(0.0, 0.0),
            RadioConfig::mesher_default(),
            Box::new(IdleApp::default()),
        );
    }

    #[test]
    fn moved_node_comes_into_range() {
        // Receiver starts 50 km away (unreachable), teleports to 100 m
        // before the sender's frame goes out.
        let mut sim = SimBuilder::new().seed(1).build();
        let cfg = RadioConfig::mesher_default();
        sim.add_node(
            Position::new(0.0, 0.0),
            cfg,
            Box::new(OneShot::new(Duration::from_secs(5))),
        );
        let b = sim.add_node(
            Position::new(50_000.0, 0.0),
            cfg,
            Box::new(IdleApp::default()),
        );
        sim.schedule_move(b, SimTime::from_secs(1), Position::new(100.0, 0.0));
        sim.run_for(Duration::from_secs(10));
        assert_eq!(sim.position(b), Position::new(100.0, 0.0));
        let idle: &IdleApp = sim.app_as(b).unwrap();
        assert_eq!(idle.frames_seen.len(), 1, "moved node heard nothing");
        assert!(sim
            .trace()
            .iter()
            .any(|e| matches!(e, TraceEvent::NodeMoved { .. })));
    }

    #[test]
    fn walk_interpolates_positions() {
        let mut sim = SimBuilder::new().seed(1).build();
        let cfg = RadioConfig::mesher_default();
        let a = sim.add_node(Position::new(0.0, 0.0), cfg, Box::new(IdleApp::default()));
        // 100 m at 10 m/s = 10 s of travel, stepped every second.
        sim.schedule_walk(
            a,
            SimTime::ZERO,
            Position::new(100.0, 0.0),
            10.0,
            Duration::from_secs(1),
        );
        sim.run_until(SimTime::from_secs(5));
        let mid = sim.position(a).x;
        assert!((45.0..=55.0).contains(&mid), "midpoint x = {mid}");
        sim.run_until(SimTime::from_secs(20));
        assert_eq!(sim.position(a), Position::new(100.0, 0.0));
        let moves = sim
            .trace()
            .iter()
            .filter(|e| matches!(e, TraceEvent::NodeMoved { .. }))
            .count();
        assert_eq!(moves, 10);
    }

    #[test]
    fn channel_busy_reflects_active_transmissions() {
        /// Checks CAD at a scheduled instant and records the answer.
        struct CadProbe {
            probe_at: Duration,
            verdicts: Vec<bool>,
        }
        impl Application for CadProbe {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(self.probe_at, 0);
                ctx.set_timer(self.probe_at + Duration::from_secs(5), 1);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, _id: u64) {
                self.verdicts.push(ctx.channel_busy());
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = SimBuilder::new().seed(1).build();
        let cfg = RadioConfig::mesher_default();
        // Sender transmits a ~460 ms frame (200 B) at t = 10 s.
        sim.add_node(
            Position::new(0.0, 0.0),
            cfg,
            Box::new(OneShot {
                delay: Duration::from_secs(10),
                payload: &[0u8; 200],
                results: vec![],
                frames: vec![],
                starts: 0,
            }),
        );
        // Probe during the frame (t = 10.1 s) and well after (t = 15.1 s).
        let p = sim.add_node(
            Position::new(100.0, 0.0),
            cfg,
            Box::new(CadProbe {
                probe_at: Duration::from_millis(10_100),
                verdicts: vec![],
            }),
        );
        sim.run_for(Duration::from_secs(20));
        let probe: &CadProbe = sim.app_as(p).unwrap();
        assert_eq!(probe.verdicts, vec![true, false]);
    }

    #[test]
    fn note_lands_in_trace() {
        struct Noter;
        impl Application for Noter {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.note("hello from the app");
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = SimBuilder::new().build();
        sim.add_node(
            Position::new(0.0, 0.0),
            RadioConfig::mesher_default(),
            Box::new(Noter),
        );
        sim.run_for(Duration::from_secs(1));
        assert!(sim.trace().iter().any(|e| matches!(
            e,
            TraceEvent::Note { message, .. } if message == "hello from the app"
        )));
    }

    #[test]
    fn region_enforcement_accepts_compliant_configs() {
        let mut sim = SimBuilder::new().region(loramon_phy::Region::Eu868).build();
        sim.add_node(
            Position::new(0.0, 0.0),
            RadioConfig::mesher_default(),
            Box::new(IdleApp::default()),
        );
        assert_eq!(sim.node_count(), 1);
    }

    #[test]
    #[should_panic(expected = "violates EU868")]
    fn region_enforcement_rejects_off_plan_frequency() {
        let mut sim = SimBuilder::new().region(loramon_phy::Region::Eu868).build();
        sim.add_node(
            Position::new(0.0, 0.0),
            RadioConfig::mesher_default().with_frequency_hz(915_000_000.0),
            Box::new(IdleApp::default()),
        );
    }

    #[test]
    #[should_panic(expected = "violates EU868")]
    fn region_enforcement_rejects_excess_power() {
        let mut sim = SimBuilder::new().region(loramon_phy::Region::Eu868).build();
        sim.add_node(
            Position::new(0.0, 0.0),
            RadioConfig::mesher_default().with_tx_power_dbm(20.0),
            Box::new(IdleApp::default()),
        );
    }

    #[test]
    fn mismatched_sf_is_not_received() {
        let mut sim = SimBuilder::new().seed(1).build();
        let tx_cfg = RadioConfig::mesher_default();
        let rx_cfg = tx_cfg.with_sf(loramon_phy::SpreadingFactor::Sf9);
        sim.add_node(
            Position::new(0.0, 0.0),
            tx_cfg,
            Box::new(OneShot::new(Duration::from_millis(10))),
        );
        let b = sim.add_node(
            Position::new(50.0, 0.0),
            rx_cfg,
            Box::new(IdleApp::default()),
        );
        sim.run_for(Duration::from_secs(1));
        let idle: &IdleApp = sim.app_as(b).unwrap();
        assert!(idle.frames_seen.is_empty());
    }
}
