//! Node identity and per-node simulator state.

use loramon_phy::energy::{BatteryMeter, EnergyModel, RadioState};
use loramon_phy::{DutyCycleRegulator, Position, RadioConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::time::SimTime;

/// A 16-bit node address, LoRaMesher style (addresses are derived from the
/// device MAC on real hardware; the simulator assigns them sequentially
/// from `0x0001`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The broadcast address understood by the mesh layer.
    pub const BROADCAST: NodeId = NodeId(0xFFFF);

    /// Raw 16-bit address.
    pub fn raw(self) -> u16 {
        self.0
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == NodeId::BROADCAST
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04X}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

/// Ground-truth per-node counters maintained by the simulator itself
/// (not by the monitoring system — these are what the monitoring reports
/// are later validated against).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Frames this node put on the air.
    pub frames_sent: u64,
    /// Frames delivered to this node by the channel.
    pub frames_received: u64,
    /// Frames addressed at this node that were destroyed (collision,
    /// half-duplex) — counted per loss event.
    pub frames_lost: u64,
    /// Total transmit airtime in microseconds.
    pub airtime_us: u64,
    /// Transmissions refused by the duty-cycle regulator.
    pub duty_cycle_blocks: u64,
    /// Transmissions refused because the radio was already transmitting.
    pub busy_rejections: u64,
}

/// Internal mutable state of a simulated node.
#[derive(Debug)]
pub(crate) struct NodeState {
    pub(crate) id: NodeId,
    pub(crate) position: Position,
    pub(crate) config: RadioConfig,
    pub(crate) regulator: DutyCycleRegulator,
    pub(crate) battery: BatteryMeter,
    pub(crate) radio_state: RadioState,
    pub(crate) last_state_change: SimTime,
    /// End of the in-progress transmission, if any.
    pub(crate) tx_until: Option<SimTime>,
    pub(crate) failed: bool,
    pub(crate) stats: NodeStats,
}

impl NodeState {
    pub(crate) fn new(
        id: NodeId,
        position: Position,
        config: RadioConfig,
        regulator: DutyCycleRegulator,
        energy: EnergyModel,
    ) -> Self {
        NodeState {
            id,
            position,
            config,
            regulator,
            battery: BatteryMeter::new(energy),
            radio_state: RadioState::Rx,
            last_state_change: SimTime::ZERO,
            tx_until: None,
            failed: false,
            stats: NodeStats::default(),
        }
    }

    /// Accrue battery drain up to `now` and switch to `next` state.
    pub(crate) fn transition(&mut self, now: SimTime, next: RadioState) {
        let elapsed = now.saturating_since(self.last_state_change);
        self.battery.spend(self.radio_state, elapsed);
        self.radio_state = next;
        self.last_state_change = now;
    }

    /// Battery percentage including drain accrued up to `now` (does not
    /// mutate the meter).
    pub(crate) fn battery_percent_at(&self, now: SimTime) -> u8 {
        let mut meter = self.battery;
        meter.spend(
            self.radio_state,
            now.saturating_since(self.last_state_change),
        );
        meter.percent()
    }

    pub(crate) fn is_transmitting(&self, now: SimTime) -> bool {
        self.tx_until.is_some_and(|until| until > now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_address() {
        assert!(NodeId::BROADCAST.is_broadcast());
        assert!(!NodeId(1).is_broadcast());
        assert_eq!(NodeId::BROADCAST.raw(), 0xFFFF);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(NodeId(0x00A3).to_string(), "00A3");
        assert_eq!(NodeId::BROADCAST.to_string(), "FFFF");
    }

    #[test]
    fn from_u16() {
        let id: NodeId = 7u16.into();
        assert_eq!(id, NodeId(7));
    }

    #[test]
    fn transition_accrues_battery() {
        let mut n = NodeState::new(
            NodeId(1),
            Position::default(),
            RadioConfig::mesher_default(),
            DutyCycleRegulator::unlimited(),
            EnergyModel::sx1276_default(),
        );
        // One hour in Rx at 11.5 mA.
        n.transition(SimTime::from_secs(3600), RadioState::Tx);
        assert!((n.battery.consumed_mah() - 11.5).abs() < 1e-6);
        assert_eq!(n.radio_state, RadioState::Tx);
    }

    #[test]
    fn is_transmitting_window() {
        let mut n = NodeState::new(
            NodeId(1),
            Position::default(),
            RadioConfig::mesher_default(),
            DutyCycleRegulator::unlimited(),
            EnergyModel::sx1276_default(),
        );
        assert!(!n.is_transmitting(SimTime::ZERO));
        n.tx_until = Some(SimTime::from_millis(10));
        assert!(n.is_transmitting(SimTime::from_millis(5)));
        assert!(!n.is_transmitting(SimTime::from_millis(10)));
    }
}
