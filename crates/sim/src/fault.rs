//! Declarative crash/reboot fault plans.
//!
//! A [`FaultPlan`] describes, ahead of a run, which nodes crash when,
//! whether they come back, and whether the monitoring gateway role
//! fails over to another node mid-run. Plans address nodes by *index*
//! (creation order) rather than [`NodeId`] so they can be built before
//! the simulator exists; [`FaultPlan::schedule`] resolves indices once
//! the ids are known. Plans derive from a seed via [`Rng::derive`], so
//! a chaos run is exactly reproducible.

use crate::rng::Rng;
use crate::sim::Simulator;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Domain-separation label for fault-plan randomness.
const FAULT_LABEL: u64 = 0x0FA0_17ED;

/// One node crash, with an optional reboot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashEvent {
    /// Which node, by creation order.
    pub node_index: usize,
    /// When the node loses power.
    pub at: SimTime,
    /// When it boots again; `None` means it stays dark.
    pub recover_at: Option<SimTime>,
}

/// A mid-run change of which node acts as the monitoring gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatewayFailover {
    /// When the failover takes effect.
    pub at: SimTime,
    /// The node (by creation order) that takes over the gateway role.
    pub to_index: usize,
}

/// A deterministic schedule of faults to inject into a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Node crashes, in no particular order.
    pub crashes: Vec<CrashEvent>,
    /// At most one gateway failover.
    pub failover: Option<GatewayFailover>,
}

impl FaultPlan {
    /// An empty plan: nothing fails.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add a crash at `at`, rebooting at `recover_at` (builder style).
    pub fn with_crash(
        mut self,
        node_index: usize,
        at: SimTime,
        recover_at: Option<SimTime>,
    ) -> Self {
        self.crashes.push(CrashEvent {
            node_index,
            at,
            recover_at,
        });
        self
    }

    /// Set a gateway failover (builder style).
    pub fn with_failover(mut self, at: SimTime, to_index: usize) -> Self {
        self.failover = Some(GatewayFailover { at, to_index });
        self
    }

    /// A reproducible chaos plan: `crashes` crash/reboot cycles spread
    /// over the middle of a run of length `duration` across
    /// `node_count` nodes. Node index 0 — the conventional gateway
    /// slot — is spared so the plan composes with gateway-failover
    /// experiments that handle that role explicitly.
    pub fn random(seed: u64, node_count: usize, duration: Duration, crashes: usize) -> Self {
        let mut plan = FaultPlan::new();
        if node_count < 2 {
            return plan;
        }
        let span_ms = duration.as_millis() as u64;
        for i in 0..crashes {
            let mut rng = Rng::derive(seed, &[FAULT_LABEL, i as u64]);
            let node_index = 1 + rng.next_below(node_count as u64 - 1) as usize;
            // Crash somewhere in the first 60% of the run, stay dark
            // for 5–20% of it, so every reboot happens on-screen.
            let at_ms = span_ms / 10 + rng.next_below(span_ms / 2 + 1);
            let dark_ms = span_ms / 20 + rng.next_below(span_ms * 3 / 20 + 1);
            plan.crashes.push(CrashEvent {
                node_index,
                at: SimTime::ZERO + Duration::from_millis(at_ms),
                recover_at: Some(SimTime::ZERO + Duration::from_millis(at_ms + dark_ms)),
            });
        }
        plan
    }

    /// Resolve indices against `ids` (creation order) and schedule
    /// every crash and recovery on the simulator. Entries whose index
    /// is out of range are skipped; the failover is *not* scheduled
    /// here — redirecting the gateway role is the harness's job — it
    /// is only carried by the plan. Returns how many sim events were
    /// scheduled.
    pub fn schedule(&self, sim: &mut Simulator, ids: &[crate::node::NodeId]) -> usize {
        let mut scheduled = 0;
        for c in &self.crashes {
            let Some(&id) = ids.get(c.node_index) else {
                continue;
            };
            sim.schedule_failure(id, c.at);
            scheduled += 1;
            if let Some(back) = c.recover_at {
                sim.schedule_recovery(id, back);
                scheduled += 1;
            }
        }
        scheduled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::IdleApp;
    use crate::sim::SimBuilder;

    #[test]
    fn builders_accumulate() {
        let plan = FaultPlan::new()
            .with_crash(2, SimTime::from_secs(100), Some(SimTime::from_secs(200)))
            .with_crash(3, SimTime::from_secs(50), None)
            .with_failover(SimTime::from_secs(120), 1);
        assert_eq!(plan.crashes.len(), 2);
        assert_eq!(plan.failover.unwrap().to_index, 1);
    }

    #[test]
    fn random_plans_are_deterministic_and_spare_the_gateway_slot() {
        let a = FaultPlan::random(7, 6, Duration::from_secs(3600), 4);
        let b = FaultPlan::random(7, 6, Duration::from_secs(3600), 4);
        assert_eq!(a, b);
        assert_eq!(a.crashes.len(), 4);
        for c in &a.crashes {
            assert_ne!(c.node_index, 0);
            assert!(c.node_index < 6);
            let back = c.recover_at.expect("random plans always reboot");
            assert!(c.at < back);
            assert!(back <= SimTime::from_secs(3600));
        }
        let c = FaultPlan::random(8, 6, Duration::from_secs(3600), 4);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn single_node_random_plan_is_empty() {
        assert!(FaultPlan::random(1, 1, Duration::from_secs(60), 3)
            .crashes
            .is_empty());
    }

    #[test]
    fn schedule_drives_failures_and_recoveries() {
        let mut sim = SimBuilder::new().seed(1).build();
        let cfg = loramon_phy::RadioConfig::mesher_default();
        let ids: Vec<_> = (0..3)
            .map(|i| {
                sim.add_node(
                    loramon_phy::Position::new(100.0 * f64::from(i), 0.0),
                    cfg,
                    Box::new(IdleApp::default()),
                )
            })
            .collect();
        let plan = FaultPlan::new()
            .with_crash(1, SimTime::from_secs(10), Some(SimTime::from_secs(20)))
            .with_crash(99, SimTime::from_secs(5), None); // out of range: skipped
        assert_eq!(plan.schedule(&mut sim, &ids), 2);
        sim.run_until(SimTime::from_secs(15));
        assert!(sim.is_failed(ids[1]));
        assert!(!sim.is_failed(ids[0]));
        sim.run_until(SimTime::from_secs(25));
        assert!(!sim.is_failed(ids[1]));
    }
}
