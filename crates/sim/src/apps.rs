//! Reusable simple applications for tests, benches and workload modeling.
//!
//! These run directly on the radio (no mesh layer): handy for PHY/channel
//! characterisation (R-Fig-5) and for modelling *foreign* traffic — e.g.
//! an interfering network sharing the band.

use crate::app::{Application, ReceivedFrame, TxResult, TxToken};
use crate::sim::Context;
use bytes::Bytes;
use std::any::Any;
use std::time::Duration;

/// Transmits a fixed-size frame on a fixed period, starting after one
/// period. Useful as a beacon source or interferer.
#[derive(Debug)]
pub struct PeriodicSender {
    period: Duration,
    payload_len: usize,
    max_frames: Option<u32>,
    /// Frames actually sent (confirmed on the air).
    pub sent: u32,
    /// Frames refused (busy radio or duty cycle).
    pub refused: u32,
    /// Frames heard from others.
    pub heard: u32,
}

impl PeriodicSender {
    /// A sender with the given period and payload size, unlimited count.
    pub fn new(period: Duration, payload_len: usize) -> Self {
        PeriodicSender {
            period,
            payload_len,
            max_frames: None,
            sent: 0,
            refused: 0,
            heard: 0,
        }
    }

    /// Stop after `n` frames (builder style).
    pub fn with_max_frames(mut self, n: u32) -> Self {
        self.max_frames = Some(n);
        self
    }

    fn exhausted(&self) -> bool {
        self.max_frames.is_some_and(|m| self.sent >= m)
    }
}

impl Application for PeriodicSender {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.period, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _timer: u64) {
        if self.exhausted() {
            return;
        }
        ctx.transmit(Bytes::from(vec![0u8; self.payload_len]));
        ctx.set_timer(self.period, 0);
    }

    fn on_frame(&mut self, _ctx: &mut Context<'_>, _frame: &ReceivedFrame) {
        self.heard += 1;
    }

    fn on_tx_result(&mut self, _ctx: &mut Context<'_>, _token: TxToken, result: TxResult) {
        if result.is_sent() {
            self.sent += 1;
        } else {
            self.refused += 1;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A saturating interferer: transmits back-to-back as fast as the radio
/// and duty cycle allow — the worst neighbor imaginable.
#[derive(Debug, Default)]
pub struct Jammer {
    payload_len: usize,
    /// Frames put on the air.
    pub sent: u32,
}

impl Jammer {
    /// A jammer emitting frames of the given size.
    pub fn new(payload_len: usize) -> Self {
        Jammer {
            payload_len,
            sent: 0,
        }
    }
}

impl Application for Jammer {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.transmit(Bytes::from(vec![0xAA; self.payload_len]));
    }

    fn on_tx_result(&mut self, ctx: &mut Context<'_>, _token: TxToken, result: TxResult) {
        match result {
            TxResult::Sent { .. } => {
                self.sent += 1;
                ctx.transmit(Bytes::from(vec![0xAA; self.payload_len]));
            }
            TxResult::Busy => {
                ctx.set_timer(Duration::from_millis(10), 0);
            }
            TxResult::DutyCycleBlocked { retry_at } => {
                let wait = retry_at
                    .map(|at| at.saturating_since(ctx.now()) + Duration::from_millis(1))
                    .unwrap_or(Duration::from_secs(1));
                ctx.set_timer(wait, 0);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _timer: u64) {
        ctx.transmit(Bytes::from(vec![0xAA; self.payload_len]));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimBuilder;
    use crate::IdleApp;
    use loramon_phy::{Position, RadioConfig};

    #[test]
    fn periodic_sender_honors_period_and_cap() {
        let mut sim = SimBuilder::new().seed(1).build();
        let cfg = RadioConfig::mesher_default();
        let a = sim.add_node(
            Position::new(0.0, 0.0),
            cfg,
            Box::new(PeriodicSender::new(Duration::from_secs(5), 20).with_max_frames(4)),
        );
        let b = sim.add_node(Position::new(100.0, 0.0), cfg, Box::new(IdleApp::default()));
        sim.run_for(Duration::from_secs(60));
        let sender: &PeriodicSender = sim.app_as(a).unwrap();
        assert_eq!(sender.sent, 4);
        let idle: &IdleApp = sim.app_as(b).unwrap();
        assert_eq!(idle.frames_seen.len(), 4);
        // Frames are 5 s apart.
        let times: Vec<u64> = idle
            .frames_seen
            .iter()
            .map(|f| f.started.as_millis())
            .collect();
        assert!(times.windows(2).all(|w| w[1] - w[0] == 5_000));
    }

    #[test]
    fn periodic_senders_count_overheard_frames() {
        let mut sim = SimBuilder::new().seed(2).build();
        let cfg = RadioConfig::mesher_default();
        let a = sim.add_node(
            Position::new(0.0, 0.0),
            cfg,
            Box::new(PeriodicSender::new(Duration::from_secs(7), 16)),
        );
        let b = sim.add_node(
            Position::new(150.0, 0.0),
            cfg,
            Box::new(PeriodicSender::new(Duration::from_secs(11), 16)),
        );
        sim.run_for(Duration::from_secs(120));
        let pa: &PeriodicSender = sim.app_as(a).unwrap();
        let pb: &PeriodicSender = sim.app_as(b).unwrap();
        assert!(pa.heard > 0 && pb.heard > 0);
    }

    #[test]
    fn jammer_is_limited_by_duty_cycle() {
        let mut sim = SimBuilder::new().seed(3).duty_cycle(0.01).build();
        let cfg = RadioConfig::mesher_default();
        let j = sim.add_node(Position::new(0.0, 0.0), cfg, Box::new(Jammer::new(100)));
        sim.run_for(Duration::from_secs(3600));
        // 1% of an hour = 36 s of airtime; a 100-byte SF7 frame ≈ 0.18 s
        // → at most ~200 frames.
        let jam: &Jammer = sim.app_as(j).unwrap();
        assert!(jam.sent > 50, "jammer sent only {}", jam.sent);
        let airtime_s = sim.stats(j).airtime_us as f64 / 1e6;
        assert!(airtime_s <= 36.5, "exceeded duty cycle: {airtime_s}");
    }

    #[test]
    fn jammer_degrades_neighbor_delivery() {
        // Sender → receiver at 100 m, jammer next to the receiver with
        // no duty cycle: most frames collide.
        let mut sim = SimBuilder::new().seed(4).duty_cycle(1.0).build();
        let cfg = RadioConfig::mesher_default();
        sim.add_node(
            Position::new(0.0, 0.0),
            cfg,
            Box::new(PeriodicSender::new(Duration::from_secs(3), 20)),
        );
        let rx = sim.add_node(Position::new(100.0, 0.0), cfg, Box::new(IdleApp::default()));
        sim.add_node(Position::new(110.0, 0.0), cfg, Box::new(Jammer::new(200)));
        sim.run_for(Duration::from_secs(300));
        let idle: &IdleApp = sim.app_as(rx).unwrap();
        // ~100 frames sent (every 3 s); with a saturating co-located
        // jammer the receiver hears far fewer from the sender — and
        // plenty of jammer frames in between.
        let from_sender = idle
            .frames_seen
            .iter()
            .filter(|f| f.payload.iter().all(|&b| b == 0))
            .count();
        assert!(
            from_sender < 60,
            "jammer barely hurt: {from_sender} sender frames heard"
        );
    }
}
