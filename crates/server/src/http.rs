//! A small dependency-free HTTP server exposing the monitoring API and
//! the live dashboard page.
//!
//! Endpoints:
//!
//! | method | path            | payload                                   |
//! |--------|-----------------|-------------------------------------------|
//! | GET    | `/`             | the dashboard HTML page                   |
//! | GET    | `/api/health`   | `{"ok":true}`                             |
//! | GET    | `/api/nodes`    | node summaries                            |
//! | GET    | `/api/stats`    | ingest counters + totals                  |
//! | GET    | `/api/series`   | `?node=&direction=in|out&bucket_s=60&window_s=` |
//! | GET    | `/api/links`    | `?window_s=` per-link RSSI/SNR stats      |
//! | GET    | `/api/pdr`      | per-link delivery ratios                  |
//! | GET    | `/api/e2e`      | end-to-end delivery + latency             |
//! | GET    | `/api/topology` | inferred topology                         |
//! | GET    | `/api/alerts`   | alert history                             |
//! | GET    | `/api/status_series` | `?node=` battery/queue/duty history  |
//! | GET    | `/api/occupancy`| `?window_s=` estimated channel occupancy  |
//! | GET    | `/api/sizes`    | `?window_s=` packet-size histogram        |
//! | GET    | `/api/rollups`  | `?node=` long-horizon rollup series       |
//! | POST   | `/api/reports`  | a JSON report body → `{outcome, command}` |
//! | POST   | `/api/commands` | `?node=` + JSON command body → queued     |
//!
//! The server is threaded (one handler thread per connection) and shuts
//! down cleanly on [`HttpServer::shutdown`].

use crate::query::Window;
use crate::server::MonitorServer;
use loramon_mesh::Direction;
use loramon_sim::{NodeId, SimTime};
use serde_json::json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running HTTP front end for a [`MonitorServer`].
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Bind and start serving. Use port 0 for an ephemeral port.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn bind(server: MonitorServer, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let server = server.clone();
                std::thread::spawn(move || {
                    let _ = handle_connection(stream, &server);
                });
            }
        });
        Ok(HttpServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept thread.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the blocked accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_inner();
        }
    }
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .finish()
    }
}

struct Request {
    method: String,
    path: String,
    query: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Request {
    fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The query window from an optional `window_s` parameter: the
    /// trailing `window_s` seconds anchored at the server clock, or all
    /// time when absent/unparsable.
    fn window(&self, server: &MonitorServer) -> Window {
        match self.param("window_s").and_then(|s| s.parse::<u64>().ok()) {
            Some(secs) => Window::last(Duration::from_secs(secs.max(1)), server.clock()),
            None => Window::all(),
        }
    }
}

/// What came off the wire: a routable request, or a protocol violation
/// the caller must answer with `400 Bad Request`.
enum Parsed {
    /// A well-formed request.
    Request(Request),
    /// A malformed request, with the reason to report.
    Bad(String),
}

fn parse_request(stream: &mut TcpStream) -> std::io::Result<Option<Parsed>> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_owned();
    let target = parts.next().unwrap_or("/").to_owned();
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target, String::new()),
    };
    let query = query_str
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_owned(), v.to_owned()),
            None => (pair.to_owned(), String::new()),
        })
        .collect();

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                // A Content-Length we cannot parse must be rejected, not
                // treated as zero: silently dropping the body would turn
                // a framing error into a confusing empty-payload error
                // (or worse, desync the connection).
                match value.trim().parse() {
                    Ok(n) => content_length = n,
                    Err(_) => {
                        return Ok(Some(Parsed::Bad(format!(
                            "invalid Content-Length: {:?}",
                            value.trim()
                        ))));
                    }
                }
            }
        }
    }
    let mut body = vec![0u8; content_length.min(16 * 1024 * 1024)];
    if content_length > 0 {
        reader.read_exact(&mut body)?;
    }
    Ok(Some(Parsed::Request(Request {
        method,
        path,
        query,
        body,
    })))
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &[u8]) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body);
    let _ = stream.flush();
}

fn respond_json(stream: &mut TcpStream, status: &str, value: &serde_json::Value) {
    respond(
        stream,
        status,
        "application/json",
        value.to_string().as_bytes(),
    );
}

/// Serialize `value` and respond `200 OK`, or `500` with a JSON error
/// body when serialization fails — request handlers must never panic.
fn respond_serialized<T: serde::Serialize>(stream: &mut TcpStream, value: &T) {
    match serde_json::to_value(value) {
        Ok(v) => respond_json(stream, "200 OK", &v),
        Err(e) => respond_json(
            stream,
            "500 Internal Server Error",
            &json!({"error": format!("serialization failed: {e}")}),
        ),
    }
}

fn handle_connection(mut stream: TcpStream, server: &MonitorServer) -> std::io::Result<()> {
    match parse_request(&mut stream)? {
        Some(Parsed::Request(req)) => route(&mut stream, &req, server),
        Some(Parsed::Bad(reason)) => {
            respond_json(&mut stream, "400 Bad Request", &json!({"error": reason}));
        }
        None => {}
    }
    Ok(())
}

fn route(stream: &mut TcpStream, req: &Request, server: &MonitorServer) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/") => respond(
            stream,
            "200 OK",
            "text/html; charset=utf-8",
            DASHBOARD_HTML.as_bytes(),
        ),
        ("GET", "/api/health") => respond_json(stream, "200 OK", &json!({"ok": true})),
        ("GET", "/api/nodes") => {
            let summaries = server.node_summaries();
            respond_serialized(stream, &summaries);
        }
        ("GET", "/api/stats") => {
            let stats = server.ingest_stats();
            respond_json(
                stream,
                "200 OK",
                &json!({
                    "ingest": stats,
                    "nodes": server.node_ids().len(),
                    "records_retained": server.total_records(),
                    "clock_ms": server.clock().as_millis(),
                    "latest_receive_ms": server.latest_receive_time().map(|t| t.as_millis()),
                }),
            );
        }
        ("GET", "/api/series") => {
            let node = req
                .param("node")
                .and_then(|s| s.parse::<u16>().ok())
                .map(NodeId);
            let direction = match req.param("direction") {
                Some("in") => Some(Direction::In),
                Some("out") => Some(Direction::Out),
                _ => None,
            };
            let bucket_s = req
                .param("bucket_s")
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(60)
                .max(1);
            let series = server.series(
                node,
                direction,
                req.window(server),
                Duration::from_secs(bucket_s),
            );
            let points: Vec<serde_json::Value> = series
                .iter()
                .map(|p| json!({"t_ms": p.bucket.as_millis(), "count": p.count}))
                .collect();
            respond_json(stream, "200 OK", &json!(points));
        }
        ("GET", "/api/links") => {
            let links = server.link_stats(req.window(server));
            respond_serialized(stream, &links);
        }
        ("GET", "/api/pdr") => {
            let links = server.link_deliveries(Window::all());
            let rows: Vec<serde_json::Value> = links
                .iter()
                .map(|l| {
                    json!({
                        "from": l.from, "to": l.to,
                        "sent": l.sent, "received": l.received,
                        "pdr": l.pdr(),
                    })
                })
                .collect();
            respond_json(stream, "200 OK", &json!(rows));
        }
        ("GET", "/api/e2e") => {
            let pairs = server.end_to_end(Window::all());
            let rows: Vec<serde_json::Value> = pairs
                .iter()
                .map(|e| {
                    json!({
                        "origin": e.origin, "final_dst": e.final_dst,
                        "sent": e.sent, "delivered": e.delivered,
                        "ratio": e.delivery_ratio(),
                        "mean_latency_ms": e.mean_latency().map(|d| d.as_millis() as u64),
                    })
                })
                .collect();
            respond_json(stream, "200 OK", &json!(rows));
        }
        ("GET", "/api/topology") => {
            // `?window_s=N` restricts the heard view to the trailing N
            // seconds of the server clock; default is all time.
            let topo = match req.param("window_s").and_then(|s| s.parse::<u64>().ok()) {
                Some(secs) => server.recent_topology(Duration::from_secs(secs.max(1))),
                None => server.topology(Window::all()),
            };
            respond_serialized(stream, &topo);
        }
        ("GET", "/api/alerts") => {
            let history = server.alert_history();
            respond_serialized(stream, &history);
        }
        ("GET", "/api/status_series") => {
            let Some(node) = req.param("node").and_then(|s| s.parse::<u16>().ok()) else {
                respond_json(
                    stream,
                    "400 Bad Request",
                    &json!({"error": "node parameter required"}),
                );
                return;
            };
            let series = server.status_series(NodeId(node));
            respond_serialized(stream, &series);
        }
        ("GET", "/api/occupancy") => {
            let bucket_s = req
                .param("bucket_s")
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(60)
                .max(1);
            let radio = loramon_phy::RadioConfig::mesher_default();
            let occ =
                server.channel_occupancy(req.window(server), &radio, Duration::from_secs(bucket_s));
            let rows: Vec<serde_json::Value> = occ
                .iter()
                .map(|(t, f)| json!({"t_ms": t.as_millis(), "fraction": f}))
                .collect();
            respond_json(stream, "200 OK", &json!(rows));
        }
        ("GET", "/api/health_levels") => {
            let health = server.health(&crate::health::HealthRules::default(), server.clock());
            respond_serialized(stream, &health);
        }
        ("GET", "/api/rollups") => {
            let node = req
                .param("node")
                .and_then(|s| s.parse::<u16>().ok())
                .map(NodeId);
            let series = server.rollup_series(node);
            respond_serialized(stream, &series);
        }
        ("GET", "/api/sizes") => {
            let node = req
                .param("node")
                .and_then(|s| s.parse::<u16>().ok())
                .map(NodeId);
            let bin = req
                .param("bin")
                .and_then(|s| s.parse::<u32>().ok())
                .unwrap_or(16)
                .max(1);
            let hist = server.size_histogram(node, req.window(server), bin);
            let rows: Vec<serde_json::Value> = hist
                .iter()
                .map(|(b, c)| json!({"bin": b, "count": c}))
                .collect();
            respond_json(stream, "200 OK", &json!(rows));
        }
        ("POST", "/api/reports") => {
            let received_at = req
                .param("at_ms")
                .and_then(|s| s.parse::<u64>().ok())
                .map_or_else(|| server.clock(), SimTime::from_millis);
            match loramon_core::Report::decode_json(&req.body) {
                Ok(report) => {
                    let (outcome, command) = server.ingest_with_command(&report, received_at);
                    respond_json(
                        stream,
                        "200 OK",
                        &json!({
                            "outcome": outcome,
                            "command": command,
                        }),
                    );
                }
                Err(e) => respond_json(stream, "400 Bad Request", &json!({"error": e.to_string()})),
            }
        }
        ("POST", "/api/commands") => {
            let Some(node) = req.param("node").and_then(|s| s.parse::<u16>().ok()) else {
                respond_json(
                    stream,
                    "400 Bad Request",
                    &json!({"error": "node parameter required"}),
                );
                return;
            };
            match serde_json::from_slice::<loramon_core::MonitorCommand>(&req.body) {
                Ok(command) => {
                    server.queue_command(NodeId(node), command);
                    respond_json(stream, "200 OK", &json!({"queued": true}));
                }
                Err(e) => respond_json(stream, "400 Bad Request", &json!({"error": e.to_string()})),
            }
        }
        _ => respond_json(stream, "404 Not Found", &json!({"error": "no such route"})),
    }
}

/// The embedded single-file dashboard (fetches the JSON API).
const DASHBOARD_HTML: &str = r##"<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>loramon — LoRa mesh monitor</title>
<style>
 body{font-family:system-ui,sans-serif;margin:2rem;background:#fafafa;color:#222}
 h1{font-size:1.4rem} h2{font-size:1.1rem;margin-top:2rem}
 table{border-collapse:collapse;min-width:40rem}
 th,td{border:1px solid #ccc;padding:.3rem .6rem;font-size:.85rem;text-align:right}
 th{background:#eee} td:first-child,th:first-child{text-align:left}
 #chart{background:#fff;border:1px solid #ccc}
 .alert{color:#b00}
</style></head><body>
<h1>loramon — LoRa mesh monitoring dashboard</h1>
<h2>Nodes</h2><table id="nodes"><thead><tr>
<th>node</th><th>reports</th><th>missing</th><th>restarts</th><th>records</th><th>battery %</th>
<th>queue</th><th>duty %</th><th>reachable</th></tr></thead><tbody></tbody></table>
<h2>Packets over time (all nodes, 60&nbsp;s buckets)</h2>
<svg id="chart" width="900" height="180"></svg>
<h2>Links</h2><table id="links"><thead><tr>
<th>link</th><th>packets</th><th>mean RSSI</th><th>mean SNR</th></tr></thead><tbody></tbody></table>
<h2>Health</h2><ul id="health"></ul>
<h2>Alerts</h2><ul id="alerts"></ul>
<script>
async function j(u){const r=await fetch(u);return r.json()}
function fmtNode(n){return (n&65535).toString(16).toUpperCase().padStart(4,'0')}
async function refresh(){
 const nodes=await j('/api/nodes');
 document.querySelector('#nodes tbody').innerHTML=nodes.map(n=>
  `<tr><td>${fmtNode(n.node)}</td><td>${n.reports}</td><td>${n.missing_reports}</td>
   <td>${n.restarts}</td>
   <td>${n.records}</td><td>${n.battery_percent??'–'}</td><td>${n.queue_len??'–'}</td>
   <td>${n.duty_cycle_utilization!=null?(100*n.duty_cycle_utilization).toFixed(1):'–'}</td>
   <td>${n.reachable??'–'}</td></tr>`).join('');
 const series=await j('/api/series?bucket_s=60');
 const svg=document.getElementById('chart');
 if(series.length){
  const w=900,h=180,max=Math.max(...series.map(p=>p.count),1);
  const bw=Math.max(1,Math.floor(w/series.length)-1);
  svg.innerHTML=series.map((p,i)=>
   `<rect x="${i*(bw+1)}" y="${h-p.count/max*(h-10)}" width="${bw}"
     height="${p.count/max*(h-10)}" fill="#369"/>`).join('');
 }
 const links=await j('/api/links');
 document.querySelector('#links tbody').innerHTML=links.map(l=>
  `<tr><td>${fmtNode(l.from)} → ${fmtNode(l.to)}</td><td>${l.packets}</td>
   <td>${l.mean_rssi_dbm.toFixed(1)} dBm</td><td>${l.mean_snr_db.toFixed(1)} dB</td></tr>`).join('');
 const health=await j('/api/health_levels');
 document.getElementById('health').innerHTML=health.map(h=>
  `<li>${fmtNode(h.node)}: <b>${h.level}</b> ${h.reasons.join('; ')}</li>`).join('')||'<li>none</li>';
 const alerts=await j('/api/alerts');
 document.getElementById('alerts').innerHTML=alerts.map(a=>
  `<li class="alert">[${a.kind}] ${a.message}</li>`).join('')||'<li>none</li>';
}
refresh();setInterval(refresh,5000);
</script></body></html>
"##;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use loramon_core::{PacketRecord, Report};
    use loramon_mesh::PacketType;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        let (head, body) = out.split_once("\r\n\r\n").unwrap();
        (head.to_owned(), body.to_owned())
    }

    fn post(addr: SocketAddr, path: &str, body: &[u8]) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .unwrap();
        stream.write_all(body).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        let (head, b) = out.split_once("\r\n\r\n").unwrap();
        (head.to_owned(), b.to_owned())
    }

    fn sample_report() -> Report {
        Report {
            node: NodeId(1),
            report_seq: 0,
            generated_at_ms: 60_000,
            dropped_records: 0,
            status: None,
            records: vec![PacketRecord {
                seq: 0,
                timestamp_ms: 59_000,
                direction: Direction::In,
                node: NodeId(1),
                counterpart: NodeId(2),
                ptype: PacketType::Data,
                origin: NodeId(2),
                final_dst: NodeId(1),
                packet_id: 1,
                ttl: 5,
                size_bytes: 30,
                rssi_dbm: Some(-91.0),
                snr_db: Some(4.0),
            }],
        }
    }

    fn start() -> (HttpServer, MonitorServer) {
        let server = MonitorServer::new(ServerConfig::default());
        let http = HttpServer::bind(server.clone(), "127.0.0.1:0").unwrap();
        (http, server)
    }

    #[test]
    fn health_endpoint() {
        let (http, _server) = start();
        let (head, body) = get(http.addr(), "/api/health");
        assert!(head.contains("200 OK"));
        assert_eq!(body.trim(), r#"{"ok":true}"#);
        http.shutdown();
    }

    #[test]
    fn dashboard_page_served() {
        let (http, _server) = start();
        let (head, body) = get(http.addr(), "/");
        assert!(head.contains("200 OK"));
        assert!(head.contains("text/html"));
        assert!(body.contains("loramon"));
        http.shutdown();
    }

    #[test]
    fn post_report_then_query_nodes() {
        let (http, server) = start();
        let body = sample_report().encode_json();
        let (head, resp) = post(http.addr(), "/api/reports?at_ms=61000", &body);
        assert!(head.contains("200 OK"), "{head}\n{resp}");
        assert!(resp.contains("Accepted"), "{resp}");
        assert_eq!(server.total_records(), 1);

        let (_, nodes) = get(http.addr(), "/api/nodes");
        let v: serde_json::Value = serde_json::from_str(&nodes).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 1);

        let (_, series) = get(http.addr(), "/api/series?bucket_s=60&direction=in");
        let v: serde_json::Value = serde_json::from_str(&series).unwrap();
        assert_eq!(v[0]["count"], 1);

        let (_, links) = get(http.addr(), "/api/links");
        let v: serde_json::Value = serde_json::from_str(&links).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 1);
        http.shutdown();
    }

    #[test]
    fn bad_report_is_400() {
        let (http, _server) = start();
        let (head, body) = post(http.addr(), "/api/reports", b"{broken");
        assert!(head.contains("400"), "{head}");
        assert!(body.contains("error"));
        http.shutdown();
    }

    #[test]
    fn malformed_content_length_is_400_and_nothing_ingested() {
        let (http, server) = start();
        let body = sample_report().encode_json();
        let mut stream = TcpStream::connect(http.addr()).unwrap();
        write!(
            stream,
            "POST /api/reports HTTP/1.1\r\nHost: x\r\nContent-Length: banana\r\n\r\n"
        )
        .unwrap();
        stream.write_all(&body).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        let (head, resp) = out.split_once("\r\n\r\n").unwrap();
        assert!(head.contains("400 Bad Request"), "{head}");
        assert!(resp.contains("Content-Length"), "{resp}");
        assert_eq!(server.total_records(), 0, "body must not be ingested");
        http.shutdown();
    }

    #[test]
    fn window_param_filters_read_endpoints() {
        let (http, server) = start();
        // One record at t = 59 s (capture time), clock advanced to 1000 s.
        server.ingest(&sample_report(), SimTime::from_secs(61));
        server.ingest(
            &Report {
                report_seq: 1,
                generated_at_ms: 1_000_000,
                records: vec![],
                ..sample_report()
            },
            SimTime::from_secs(1_000),
        );

        // All-time sees the link; a trailing 10 s window does not.
        let (_, all) = get(http.addr(), "/api/links");
        let v: serde_json::Value = serde_json::from_str(&all).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 1);
        let (_, recent) = get(http.addr(), "/api/links?window_s=10");
        let v: serde_json::Value = serde_json::from_str(&recent).unwrap();
        assert!(v.as_array().unwrap().is_empty(), "{recent}");

        // Same for the series and size histogram.
        let (_, series) = get(http.addr(), "/api/series?bucket_s=60&window_s=10");
        let v: serde_json::Value = serde_json::from_str(&series).unwrap();
        assert!(v.as_array().unwrap().is_empty(), "{series}");
        let (_, sizes) = get(http.addr(), "/api/sizes?window_s=10");
        let v: serde_json::Value = serde_json::from_str(&sizes).unwrap();
        assert!(v.as_array().unwrap().is_empty(), "{sizes}");
        http.shutdown();
    }

    #[test]
    fn unknown_route_is_404() {
        let (http, _server) = start();
        let (head, _) = get(http.addr(), "/api/nothing");
        assert!(head.contains("404"));
        http.shutdown();
    }

    #[test]
    fn stats_and_alerts_endpoints() {
        let (http, server) = start();
        server.ingest(&sample_report(), SimTime::from_secs(61));
        server.evaluate_alerts(SimTime::from_secs(500));
        let (_, stats) = get(http.addr(), "/api/stats");
        let v: serde_json::Value = serde_json::from_str(&stats).unwrap();
        assert_eq!(v["ingest"]["accepted"], 1);
        let (_, alerts) = get(http.addr(), "/api/alerts");
        let v: serde_json::Value = serde_json::from_str(&alerts).unwrap();
        assert!(!v.as_array().unwrap().is_empty());
        http.shutdown();
    }

    #[test]
    fn topology_endpoint() {
        let (http, server) = start();
        server.ingest(&sample_report(), SimTime::from_secs(61));
        let (_, topo) = get(http.addr(), "/api/topology");
        let v: serde_json::Value = serde_json::from_str(&topo).unwrap();
        assert_eq!(v["heard_edges"].as_array().unwrap().len(), 1);
        http.shutdown();
    }

    #[test]
    fn new_endpoints_respond() {
        let (http, server) = start();
        // A report with a status so status_series has data.
        let mut rep = sample_report();
        rep.status = Some(loramon_core::NodeStatus {
            node: NodeId(1),
            uptime_ms: 60_000,
            battery_percent: 93,
            queue_len: 1,
            duty_cycle_utilization: 0.2,
            mesh: Default::default(),
            routes: vec![],
        });
        // Give it an Out record so occupancy is non-empty.
        rep.records.push(PacketRecord {
            seq: 1,
            timestamp_ms: 58_000,
            direction: Direction::Out,
            node: NodeId(1),
            counterpart: NodeId(2),
            ptype: PacketType::Data,
            origin: NodeId(1),
            final_dst: NodeId(2),
            packet_id: 2,
            ttl: 10,
            size_bytes: 40,
            rssi_dbm: None,
            snr_db: None,
        });
        server.ingest(&rep, SimTime::from_secs(61));

        let (_, body) = get(http.addr(), "/api/status_series?node=1");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v[0]["battery_percent"], 93);

        let (head, _) = get(http.addr(), "/api/status_series");
        assert!(head.contains("400"), "missing node param not rejected");

        let (_, body) = get(http.addr(), "/api/occupancy?bucket_s=60");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert!(v[0]["fraction"].as_f64().unwrap() > 0.0);

        let (_, body) = get(http.addr(), "/api/sizes?bin=16");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert!(!v.as_array().unwrap().is_empty());
        http.shutdown();
    }

    #[test]
    fn command_flow_over_http() {
        let (http, _server) = start();
        // Queue a command for node 1.
        let (head, body) = post(
            http.addr(),
            "/api/commands?node=1",
            br#"{"report_period_s":15}"#,
        );
        assert!(head.contains("200 OK"), "{head} {body}");
        // Missing node param is rejected.
        let (head, _) = post(http.addr(), "/api/commands", b"{}");
        assert!(head.contains("400"));
        // Bad body is rejected.
        let (head, _) = post(http.addr(), "/api/commands?node=1", b"{nope");
        assert!(head.contains("400"));
        // The node's next report exchange carries the command back.
        let report_body = sample_report().encode_json();
        let (_, resp) = post(http.addr(), "/api/reports?at_ms=61000", &report_body);
        let v: serde_json::Value = serde_json::from_str(&resp).unwrap();
        assert_eq!(v["command"]["report_period_s"], 15);
        assert!(v["outcome"].to_string().contains("Accepted"), "{v}");
        // Second exchange: no command left.
        let mut rep = sample_report();
        rep.report_seq = 1;
        let (_, resp) = post(http.addr(), "/api/reports?at_ms=91000", &rep.encode_json());
        let v: serde_json::Value = serde_json::from_str(&resp).unwrap();
        assert!(v["command"].is_null());
        http.shutdown();
    }

    #[test]
    fn shutdown_stops_accepting() {
        let (http, _server) = start();
        let addr = http.addr();
        http.shutdown();
        // Connection may be accepted by the OS backlog, but a fresh
        // request should eventually fail or be closed without response.
        let result = TcpStream::connect(addr);
        if let Ok(mut s) = result {
            let _ = write!(s, "GET /api/health HTTP/1.1\r\n\r\n");
            let mut buf = String::new();
            let _ = s.read_to_string(&mut buf);
            assert!(buf.is_empty(), "server answered after shutdown: {buf}");
        }
    }
}
