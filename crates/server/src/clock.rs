//! Server time sources.
//!
//! The server's notion of "now" is abstracted behind [`Clock`] so the
//! exact same ingestion/alerting/query code runs under the simulator
//! and as a real service. The default [`IngestClock`] is event-driven:
//! time is the latest receive timestamp observed, which keeps every
//! sim-driven run on [`SimTime`] and fully deterministic. A deployed
//! binary opts into [`WallClock`], the only place in the monitoring
//! crates where reading the OS clock is permitted (and the reason the
//! `wall-clock` lint rule needs a reasoned `lint:allow` escape here).

use loramon_sim::SimTime;
use std::sync::atomic::{AtomicU64, Ordering};

/// A source of server time.
///
/// Implementations must be monotone: `now` never moves backwards, and
/// `observe` only ever advances the clock.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// The current server time.
    fn now(&self) -> SimTime;

    /// Feed an observed receive timestamp into the clock. Event-driven
    /// clocks advance on this; free-running clocks use it as a floor.
    fn observe(&self, _received_at: SimTime) {}
}

/// The default, deterministic clock: server time is the latest receive
/// timestamp observed via [`Clock::observe`].
///
/// Under simulation every timestamp derives from [`SimTime`], so two
/// runs from one seed see identical clocks — the property checked by
/// `cargo xtask determinism`. Replaying an archive restores the clock
/// to the archive's final receive time for free.
#[derive(Debug, Default)]
pub struct IngestClock {
    latest_us: AtomicU64,
}

impl IngestClock {
    /// A clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        IngestClock::default()
    }

    /// A clock pre-advanced to `start`.
    pub fn starting_at(start: SimTime) -> Self {
        let clock = IngestClock::new();
        clock.observe(start);
        clock
    }
}

impl Clock for IngestClock {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.latest_us.load(Ordering::Acquire))
    }

    fn observe(&self, received_at: SimTime) {
        self.latest_us
            .fetch_max(received_at.as_micros(), Ordering::AcqRel);
    }
}

/// Wall-clock time for a deployed server: elapsed time since
/// construction, floored by the latest observed receive timestamp.
///
/// The floor makes an archive hand its timeline over seamlessly —
/// after replay, "now" starts at the archive's final receive time and
/// advances in real time from there, so age-based alerts don't see
/// every replayed node as silent for hours.
#[derive(Debug)]
pub struct WallClock {
    anchor: std::time::Instant, // lint:allow(wall-clock, reason = "this is the one sanctioned wall-time source; everything else runs on SimTime")
    floor_us: AtomicU64,
}

impl WallClock {
    /// A wall clock anchored at the current instant.
    pub fn new() -> Self {
        WallClock {
            anchor: std::time::Instant::now(), // lint:allow(wall-clock, reason = "this is the one sanctioned wall-time source; everything else runs on SimTime")
            floor_us: AtomicU64::new(0),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        let elapsed_us = u64::try_from(self.anchor.elapsed().as_micros()).unwrap_or(u64::MAX);
        let floor = self.floor_us.load(Ordering::Acquire);
        SimTime::from_micros(elapsed_us.max(floor))
    }

    fn observe(&self, received_at: SimTime) {
        self.floor_us
            .fetch_max(received_at.as_micros(), Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_clock_tracks_latest_observation() {
        let clock = IngestClock::new();
        assert_eq!(clock.now(), SimTime::ZERO);
        clock.observe(SimTime::from_secs(30));
        clock.observe(SimTime::from_secs(10)); // stale, ignored
        assert_eq!(clock.now(), SimTime::from_secs(30));
    }

    #[test]
    fn ingest_clock_can_start_ahead() {
        let clock = IngestClock::starting_at(SimTime::from_secs(5));
        assert_eq!(clock.now(), SimTime::from_secs(5));
    }

    #[test]
    fn wall_clock_advances_and_respects_floor() {
        let clock = WallClock::new();
        let first = clock.now();
        clock.observe(SimTime::from_secs(1_000));
        // The floor dominates freshly-elapsed wall time…
        assert_eq!(clock.now(), SimTime::from_secs(1_000));
        // …and the clock never runs backwards.
        assert!(clock.now() >= first);
    }

    #[test]
    fn clocks_are_object_safe() {
        let clocks: Vec<Box<dyn Clock>> =
            vec![Box::new(IngestClock::new()), Box::new(WallClock::new())];
        for clock in &clocks {
            clock.observe(SimTime::from_secs(1));
            assert!(clock.now() >= SimTime::from_secs(1));
        }
    }
}
