//! The monitoring server facade.
//!
//! [`MonitorServer`] bundles ingestion, storage, queries, topology
//! inference and alerting behind one cheaply clonable, thread-safe
//! handle — the object the HTTP API (and every harness) talks to.

use crate::alert::{Alert, AlertEngine, AlertKind, AlertRules};
use crate::clock::{Clock, IngestClock};
use crate::ingest::{IngestOutcome, IngestStats, Ingestor};
use crate::matcher::{self, EndToEnd, LinkDelivery};
use crate::query::{self, LinkStats, NodeSummary, SeriesPoint, StatusPoint, Window};
use crate::store::{Retention, Store};
use crate::topology::{self, Topology};
use loramon_core::{MonitorCommand, Report, WireError};
use loramon_mesh::{Direction, PacketType};
use loramon_sim::{NodeId, SimTime};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Store retention policy.
    pub retention: Retention,
    /// Alerting thresholds.
    pub alert_rules: AlertRules,
    /// Keep accepted reports in an in-memory archive for later export
    /// via [`MonitorServer::archive_entries`] (default off).
    pub archive: bool,
    /// Rollup bucket length; `None` disables rollups (the default).
    pub rollup_bucket: Option<Duration>,
}

struct State {
    ingestor: Ingestor,
    store: Store,
    alerts: AlertEngine,
    archive: Option<Vec<crate::archive::ArchiveEntry>>,
    rollups: Option<crate::rollup::Rollups>,
    /// Pending configuration commands, one merged command per node,
    /// picked up with the node's next report.
    pending_commands: BTreeMap<NodeId, MonitorCommand>,
}

/// Thread-safe monitoring server handle.
#[derive(Clone)]
pub struct MonitorServer {
    inner: Arc<RwLock<State>>,
    clock: Arc<dyn Clock>,
}

impl MonitorServer {
    /// A server with the given configuration and the default
    /// deterministic [`IngestClock`].
    pub fn new(config: ServerConfig) -> Self {
        MonitorServer::with_clock(config, Arc::new(IngestClock::new()))
    }

    /// A server with an explicit time source — [`crate::clock::WallClock`]
    /// for a deployed binary, a test clock for unit tests.
    pub fn with_clock(config: ServerConfig, clock: Arc<dyn Clock>) -> Self {
        MonitorServer {
            inner: Arc::new(RwLock::new(State {
                ingestor: Ingestor::new(),
                store: Store::new(config.retention),
                alerts: AlertEngine::new(config.alert_rules),
                archive: config.archive.then(Vec::new),
                rollups: config.rollup_bucket.map(crate::rollup::Rollups::new),
                pending_commands: BTreeMap::new(),
            })),
            clock,
        }
    }

    /// Ingest one report received at server time `received_at`.
    pub fn ingest(&self, report: &Report, received_at: SimTime) -> IngestOutcome {
        self.clock.observe(received_at);
        let mut state = self.inner.write();
        let outcome = state.ingestor.offer(report);
        if matches!(outcome, IngestOutcome::Accepted { .. }) {
            state.store.insert(report, received_at);
            if let Some(archive) = &mut state.archive {
                archive.push(crate::archive::ArchiveEntry::new(
                    received_at,
                    report.clone(),
                ));
            }
            if let Some(rollups) = &mut state.rollups {
                rollups.absorb(report);
            }
        }
        outcome
    }

    /// The rolled-up series for a node (or all merged); empty unless
    /// [`ServerConfig::rollup_bucket`] was set.
    pub fn rollup_series(&self, node: Option<NodeId>) -> Vec<crate::rollup::RollupPoint> {
        self.inner
            .read()
            .rollups
            .as_ref()
            .map(|r| r.series(node))
            .unwrap_or_default()
    }

    /// A copy of the archived accepted reports (empty unless
    /// [`ServerConfig::archive`] was set).
    pub fn archive_entries(&self) -> Vec<crate::archive::ArchiveEntry> {
        self.inner.read().archive.clone().unwrap_or_default()
    }

    /// Queue a configuration command for a node. Commands merge (later
    /// fields win) and are delivered with the node's next report
    /// exchange via [`take_command`](MonitorServer::take_command).
    pub fn queue_command(&self, node: NodeId, command: MonitorCommand) {
        if command.is_empty() {
            return;
        }
        let mut state = self.inner.write();
        let entry = state.pending_commands.entry(node).or_default();
        *entry = entry.merged_with(command);
    }

    /// Take (and clear) the pending command for a node — called when the
    /// node checks in with a report.
    pub fn take_command(&self, node: NodeId) -> Option<MonitorCommand> {
        self.inner.write().pending_commands.remove(&node)
    }

    /// Peek at the pending command for a node without clearing it.
    pub fn pending_command(&self, node: NodeId) -> Option<MonitorCommand> {
        self.inner.read().pending_commands.get(&node).copied()
    }

    /// Ingest a report and hand back any pending command for the
    /// reporting node — the full uplink exchange.
    pub fn ingest_with_command(
        &self,
        report: &Report,
        received_at: SimTime,
    ) -> (IngestOutcome, Option<MonitorCommand>) {
        let outcome = self.ingest(report, received_at);
        let command = self.take_command(report.node);
        (outcome, command)
    }

    /// Ingest a JSON-encoded report (the HTTP path).
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] when the body is not a valid report.
    pub fn ingest_json(
        &self,
        body: &[u8],
        received_at: SimTime,
    ) -> Result<IngestOutcome, WireError> {
        let report = Report::decode_json(body)?;
        Ok(self.ingest(&report, received_at))
    }

    /// Ingestion counters.
    pub fn ingest_stats(&self) -> IngestStats {
        self.inner.read().ingestor.stats()
    }

    /// The server's notion of "now", as defined by its [`Clock`] —
    /// the latest receive time seen under the default [`IngestClock`].
    pub fn clock(&self) -> SimTime {
        self.clock.now()
    }

    /// All reporting nodes.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.inner.read().store.node_ids()
    }

    /// Per-node dashboard summaries.
    pub fn node_summaries(&self) -> Vec<NodeSummary> {
        query::node_summaries(&self.inner.read().store)
    }

    /// Records currently retained across all nodes.
    pub fn total_records(&self) -> usize {
        self.inner.read().store.total_records()
    }

    /// Packets-over-time series (R-Fig-2).
    pub fn series(
        &self,
        node: Option<NodeId>,
        direction: Option<Direction>,
        window: Window,
        bucket: Duration,
    ) -> Vec<SeriesPoint> {
        query::packets_over_time(&self.inner.read().store, node, direction, window, bucket)
    }

    /// Per-link reception statistics (R-Fig-3).
    pub fn link_stats(&self, window: Window) -> Vec<LinkStats> {
        query::link_stats(&self.inner.read().store, window)
    }

    /// RSSI histogram.
    pub fn rssi_histogram(
        &self,
        node: Option<NodeId>,
        window: Window,
        bin_db: f64,
    ) -> Vec<(f64, u64)> {
        query::rssi_histogram(&self.inner.read().store, node, window, bin_db)
    }

    /// Packet-type breakdown.
    pub fn type_breakdown(
        &self,
        node: Option<NodeId>,
        window: Window,
    ) -> BTreeMap<PacketType, u64> {
        query::type_breakdown(&self.inner.read().store, node, window)
    }

    /// Per-link delivery ratios from Out/In matching.
    pub fn link_deliveries(&self, window: Window) -> Vec<LinkDelivery> {
        matcher::link_deliveries(&self.inner.read().store, window)
    }

    /// A node's self-reported status history.
    pub fn status_series(&self, node: NodeId) -> Vec<StatusPoint> {
        query::status_series(&self.inner.read().store, node)
    }

    /// Estimated channel occupancy per bucket, reconstructed from
    /// outgoing records and the airtime formula for `radio`.
    pub fn channel_occupancy(
        &self,
        window: Window,
        radio: &loramon_phy::RadioConfig,
        bucket: Duration,
    ) -> Vec<(SimTime, f64)> {
        query::channel_occupancy(&self.inner.read().store, window, radio, bucket)
    }

    /// Packet-size histogram.
    pub fn size_histogram(
        &self,
        node: Option<NodeId>,
        window: Window,
        bin_bytes: u32,
    ) -> Vec<(u32, u64)> {
        query::size_histogram(&self.inner.read().store, node, window, bin_bytes)
    }

    /// End-to-end message delivery and latency.
    pub fn end_to_end(&self, window: Window) -> Vec<EndToEnd> {
        matcher::end_to_end(&self.inner.read().store, window)
    }

    /// Telemetry completeness against a ground-truth transmission count.
    pub fn completeness(&self, ground_truth_transmissions: u64) -> f64 {
        matcher::completeness(&self.inner.read().store, ground_truth_transmissions)
    }

    /// Inferred topology (R-Fig-4).
    pub fn topology(&self, window: Window) -> Topology {
        topology::infer(&self.inner.read().store, window)
    }

    /// Topology over the trailing `horizon`, anchored at the server
    /// clock — the live dashboard view.
    pub fn recent_topology(&self, horizon: Duration) -> Topology {
        topology::infer_recent(&self.inner.read().store, self.clock.now(), horizon)
    }

    /// The latest report receive time across all nodes, if any report
    /// has arrived. Equals [`clock`](MonitorServer::clock) under the
    /// default [`IngestClock`]; lags it under a wall clock.
    pub fn latest_receive_time(&self) -> Option<SimTime> {
        self.inner.read().store.latest_receive_time()
    }

    /// Evaluate alert rules at server time `now`; returns newly fired
    /// alerts.
    pub fn evaluate_alerts(&self, now: SimTime) -> Vec<Alert> {
        self.clock.observe(now);
        let mut state = self.inner.write();
        // Split borrows: evaluate takes &Store and &mut AlertEngine.
        let State { store, alerts, .. } = &mut *state;
        alerts.evaluate(store, now)
    }

    /// Every alert ever fired.
    pub fn alert_history(&self) -> Vec<Alert> {
        self.inner.read().alerts.history().to_vec()
    }

    /// Currently active alert conditions.
    pub fn active_alerts(&self) -> Vec<(NodeId, AlertKind)> {
        self.inner.read().alerts.active()
    }

    /// Run a closure over the live store under the read lock.
    ///
    /// This is the hook equivalence tests and benchmarks use to run
    /// the [`query::naive`] oracle against the same store the indexed
    /// facade queries read — not a general data-access API.
    pub fn with_store<R>(&self, f: impl FnOnce(&Store) -> R) -> R {
        f(&self.inner.read().store)
    }

    /// Composite per-node health at server time `now`.
    pub fn health(
        &self,
        rules: &crate::health::HealthRules,
        now: SimTime,
    ) -> Vec<crate::health::NodeHealth> {
        crate::health::assess(&self.inner.read().store, rules, now)
    }
}

impl std::fmt::Debug for MonitorServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.inner.read();
        f.debug_struct("MonitorServer")
            .field("nodes", &state.store.len())
            .field("records", &state.store.total_records())
            .field("clock", &self.clock.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loramon_core::PacketRecord;

    fn report(node: u16, seq: u32) -> Report {
        Report {
            node: NodeId(node),
            report_seq: seq,
            generated_at_ms: 30_000 * u64::from(seq + 1),
            dropped_records: 0,
            status: None,
            records: vec![PacketRecord {
                seq: u64::from(seq),
                timestamp_ms: 30_000 * u64::from(seq + 1) - 1000,
                direction: Direction::In,
                node: NodeId(node),
                counterpart: NodeId(2),
                ptype: PacketType::Routing,
                origin: NodeId(2),
                final_dst: NodeId::BROADCAST,
                packet_id: seq as u16,
                ttl: 1,
                size_bytes: 20,
                rssi_dbm: Some(-90.0),
                snr_db: Some(5.0),
            }],
        }
    }

    #[test]
    fn ingest_and_query_roundtrip() {
        let server = MonitorServer::new(ServerConfig::default());
        let out = server.ingest(&report(1, 0), SimTime::from_secs(31));
        assert!(matches!(out, IngestOutcome::Accepted { records: 1 }));
        assert_eq!(server.node_ids(), vec![NodeId(1)]);
        assert_eq!(server.total_records(), 1);
        assert_eq!(server.clock(), SimTime::from_secs(31));
        let series = server.series(None, None, Window::all(), Duration::from_secs(60));
        assert_eq!(series.iter().map(|p| p.count).sum::<u64>(), 1);
    }

    #[test]
    fn json_ingest_path() {
        let server = MonitorServer::new(ServerConfig::default());
        let body = report(1, 0).encode_json();
        let out = server.ingest_json(&body, SimTime::from_secs(31)).unwrap();
        assert!(matches!(out, IngestOutcome::Accepted { .. }));
        assert!(server.ingest_json(b"junk", SimTime::from_secs(32)).is_err());
    }

    #[test]
    fn duplicates_not_stored_twice() {
        let server = MonitorServer::new(ServerConfig::default());
        server.ingest(&report(1, 0), SimTime::from_secs(31));
        let out = server.ingest(&report(1, 0), SimTime::from_secs(32));
        assert_eq!(out, IngestOutcome::Duplicate);
        assert_eq!(server.total_records(), 1);
        assert_eq!(server.ingest_stats().duplicates, 1);
    }

    #[test]
    fn alert_flow_through_facade() {
        let server = MonitorServer::new(ServerConfig::default());
        server.ingest(&report(1, 0), SimTime::from_secs(31));
        let fired = server.evaluate_alerts(SimTime::from_secs(500));
        assert!(fired.iter().any(|a| a.kind == AlertKind::NodeSilent));
        assert_eq!(server.alert_history().len(), fired.len());
        assert!(!server.active_alerts().is_empty());
    }

    #[test]
    fn rollups_survive_retention_trimming() {
        use crate::store::Retention;
        let config = ServerConfig {
            retention: Retention {
                max_records_per_node: 3,
                ..Retention::default()
            },
            rollup_bucket: Some(Duration::from_secs(60)),
            ..ServerConfig::default()
        };
        let server = MonitorServer::new(config);
        for seq in 0..10u32 {
            server.ingest(&report(1, seq), SimTime::from_secs(30 * u64::from(seq + 1)));
        }
        // Raw store trimmed to the cap…
        assert_eq!(server.total_records(), 3);
        // …but rollups cover all 10 records.
        let total: u64 = server
            .rollup_series(Some(NodeId(1)))
            .iter()
            .map(|p| p.in_count + p.out_count)
            .sum();
        assert_eq!(total, 10);
        // Disabled by default.
        let plain = MonitorServer::new(ServerConfig::default());
        plain.ingest(&report(1, 0), SimTime::from_secs(30));
        assert!(plain.rollup_series(None).is_empty());
    }

    #[test]
    fn commands_merge_and_deliver_once() {
        let server = MonitorServer::new(ServerConfig::default());
        server.queue_command(
            NodeId(1),
            MonitorCommand::set_report_period(Duration::from_secs(10)),
        );
        server.queue_command(
            NodeId(1),
            MonitorCommand {
                include_status: Some(false),
                ..MonitorCommand::default()
            },
        );
        // Merged view visible before delivery.
        let pending = server.pending_command(NodeId(1)).unwrap();
        assert_eq!(pending.report_period_s, Some(10));
        assert_eq!(pending.include_status, Some(false));
        // Delivered with the next report, exactly once.
        let (outcome, cmd) = server.ingest_with_command(&report(1, 0), SimTime::from_secs(31));
        assert!(matches!(outcome, IngestOutcome::Accepted { .. }));
        assert_eq!(cmd, Some(pending));
        let (_, cmd2) = server.ingest_with_command(&report(1, 1), SimTime::from_secs(61));
        assert_eq!(cmd2, None);
        // Other nodes unaffected.
        assert_eq!(server.pending_command(NodeId(2)), None);
    }

    #[test]
    fn empty_commands_are_not_queued() {
        let server = MonitorServer::new(ServerConfig::default());
        server.queue_command(NodeId(1), MonitorCommand::default());
        assert_eq!(server.pending_command(NodeId(1)), None);
    }

    #[test]
    fn handle_is_cloneable_and_shared() {
        let server = MonitorServer::new(ServerConfig::default());
        let clone = server.clone();
        server.ingest(&report(1, 0), SimTime::from_secs(31));
        assert_eq!(clone.total_records(), 1);
    }

    #[test]
    fn debug_shows_counts() {
        let server = MonitorServer::new(ServerConfig::default());
        server.ingest(&report(1, 0), SimTime::from_secs(31));
        let s = format!("{server:?}");
        assert!(s.contains("nodes: 1"));
    }
}
