//! The query engine: everything the dashboard plots is computed here.
//!
//! All functions are pure reads over a [`Store`], so they are trivially
//! testable and can be benchmarked in isolation (R-Tab-3 companion).
//!
//! Queries are *indexed*: window filters binary-search the per-node
//! sorted record vectors ([`crate::store::NodeData::records_in`]), and
//! whole-window aggregates read the incremental per-bucket index
//! maintained at ingest instead of re-scanning records. The pre-index
//! scan implementations live on in [`naive`] as an equivalence oracle.

use crate::store::{BucketAgg, LinkAcc, Store};
use loramon_mesh::{Direction, MeshStats, PacketType};
use loramon_phy::RadioConfig;
use loramon_sim::{NodeId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// A half-open time window `[from, to)` over record capture time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Window {
    /// Inclusive start.
    pub from: SimTime,
    /// Exclusive end.
    pub to: SimTime,
}

impl Window {
    /// A window covering everything.
    pub fn all() -> Self {
        Window {
            from: SimTime::ZERO,
            to: SimTime::from_micros(u64::MAX),
        }
    }

    /// The window `[to - len, to)`.
    pub fn last(len: Duration, to: SimTime) -> Self {
        let from = SimTime::from_micros(to.as_micros().saturating_sub(len.as_micros() as u64));
        Window { from, to }
    }

    /// Whether `t` falls inside.
    pub fn contains(&self, t: SimTime) -> bool {
        self.from <= t && t < self.to
    }
}

/// One point of a bucketed time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Bucket start time.
    pub bucket: SimTime,
    /// Count within the bucket.
    pub count: u64,
}

/// How a query window decomposes against the index bucket grid: the
/// half-open range of fully-covered bucket starts (read from the
/// index), plus up to two partial edge windows that must be read
/// record-by-record.
struct WindowParts {
    /// `[lo, hi)` bucket-start range fully inside the window, if any.
    full: Option<(u64, u64)>,
    /// Partial head/tail windows not covered by whole buckets.
    edges: [Option<Window>; 2],
}

/// Split `window` into whole index buckets plus partial edges.
fn split_window(window: Window, bucket_us: u64) -> WindowParts {
    let f = window.from.as_micros();
    let t = window.to.as_micros();
    if f >= t {
        return WindowParts {
            full: None,
            edges: [None, None],
        };
    }
    let lo = f.div_ceil(bucket_us).saturating_mul(bucket_us);
    let hi = t / bucket_us * bucket_us;
    if lo >= hi {
        // The window fits inside one bucket (or between two starts):
        // no whole bucket is covered, scan the window directly.
        return WindowParts {
            full: None,
            edges: [Some(window), None],
        };
    }
    let head = (f < lo).then_some(Window {
        from: window.from,
        to: SimTime::from_micros(lo),
    });
    let tail = (hi < t).then_some(Window {
        from: SimTime::from_micros(hi),
        to: window.to,
    });
    WindowParts {
        full: Some((lo, hi)),
        edges: [head, tail],
    }
}

/// Packets per time bucket — the dashboard's headline chart (R-Fig-2).
///
/// Filters: a specific node (or all), a direction (or both). Buckets are
/// aligned to multiples of `bucket` from time zero; empty buckets within
/// the observed span are included so plots show gaps honestly.
///
/// # Panics
///
/// Panics if `bucket` is zero.
pub fn packets_over_time(
    store: &Store,
    node: Option<NodeId>,
    direction: Option<Direction>,
    window: Window,
    bucket: Duration,
) -> Vec<SeriesPoint> {
    assert!(!bucket.is_zero(), "bucket must be non-zero");
    let bucket_us = bucket.as_micros() as u64;
    let index_us = store.index_bucket_us();
    // Index buckets roll up exactly into series buckets only when the
    // series grid is a multiple of the index grid (both align to zero).
    let indexed = bucket_us >= index_us && bucket_us.is_multiple_of(index_us);
    let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
    for (id, data) in store.iter() {
        if node.is_some_and(|n| n != id) {
            continue;
        }
        if indexed {
            let parts = split_window(window, index_us);
            if let Some((lo, hi)) = parts.full {
                for (&b, agg) in data.index().buckets().range(lo..hi) {
                    let n = directed_count(agg, direction);
                    if n > 0 {
                        *counts.entry(b / bucket_us * bucket_us).or_insert(0) += n;
                    }
                }
            }
            for edge in parts.edges.into_iter().flatten() {
                count_series_records(&mut counts, data.records_in(edge), direction, bucket_us);
            }
        } else {
            count_series_records(&mut counts, data.records_in(window), direction, bucket_us);
        }
    }
    let (&first, &last) = match (counts.keys().next(), counts.keys().next_back()) {
        (Some(f), Some(l)) => (f, l),
        _ => return Vec::new(),
    };
    (first..=last)
        .step_by(bucket_us as usize)
        .map(|b| SeriesPoint {
            bucket: SimTime::from_micros(b),
            count: counts.get(&b).copied().unwrap_or(0),
        })
        .collect()
}

/// The records an index bucket contributes to a direction filter.
fn directed_count(agg: &BucketAgg, direction: Option<Direction>) -> u64 {
    match direction {
        None => agg.in_count + agg.out_count,
        Some(Direction::In) => agg.in_count,
        Some(Direction::Out) => agg.out_count,
    }
}

/// Tally already-windowed records into series buckets.
fn count_series_records(
    counts: &mut BTreeMap<u64, u64>,
    records: &[loramon_core::PacketRecord],
    direction: Option<Direction>,
    bucket_us: u64,
) {
    for r in records {
        if direction.is_some_and(|d| d != r.direction) {
            continue;
        }
        let b = r.captured_at().as_micros() / bucket_us * bucket_us;
        *counts.entry(b).or_insert(0) += 1;
    }
}

/// Aggregate link quality on a directed radio link (R-Fig-3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving (reporting) node.
    pub to: NodeId,
    /// Received packets observed on the link.
    pub packets: u64,
    /// Mean RSSI in dBm.
    pub mean_rssi_dbm: f64,
    /// Minimum RSSI.
    pub min_rssi_dbm: f64,
    /// Maximum RSSI.
    pub max_rssi_dbm: f64,
    /// Mean SNR in dB.
    pub mean_snr_db: f64,
}

/// Per-link reception statistics, computed from incoming records
/// (link = record counterpart → reporting node).
///
/// Whole index buckets inside the window contribute their pre-summed
/// [`LinkAcc`]s; only the partial edge buckets touch records.
pub fn link_stats(store: &Store, window: Window) -> Vec<LinkStats> {
    let parts = split_window(window, store.index_bucket_us());
    let mut acc: BTreeMap<(NodeId, NodeId), LinkAcc> = BTreeMap::new();
    for (id, data) in store.iter() {
        if let Some((lo, hi)) = parts.full {
            for (_, bucket) in data.index().buckets().range(lo..hi) {
                for (&from, l) in &bucket.links {
                    merge_link(acc.entry((from, id)).or_default(), l);
                }
            }
        }
        for edge in parts.edges.iter().copied().flatten() {
            for r in data.records_in(edge) {
                if r.direction != Direction::In {
                    continue;
                }
                let (Some(rssi), Some(snr)) = (r.rssi_dbm, r.snr_db) else {
                    continue;
                };
                let a = acc.entry((r.counterpart, id)).or_default();
                a.n += 1;
                a.rssi_sum += rssi;
                a.rssi_min = a.rssi_min.min(rssi);
                a.rssi_max = a.rssi_max.max(rssi);
                a.snr_sum += snr;
            }
        }
    }
    acc.into_iter()
        .filter(|(_, a)| a.n > 0)
        .map(|((from, to), a)| LinkStats {
            from,
            to,
            packets: a.n,
            mean_rssi_dbm: a.rssi_sum / a.n as f64,
            min_rssi_dbm: a.rssi_min,
            max_rssi_dbm: a.rssi_max,
            mean_snr_db: a.snr_sum / a.n as f64,
        })
        .collect()
}

/// Fold one bucket's link accumulator into a running total.
fn merge_link(into: &mut LinkAcc, l: &LinkAcc) {
    into.n += l.n;
    into.rssi_sum += l.rssi_sum;
    into.rssi_min = into.rssi_min.min(l.rssi_min);
    into.rssi_max = into.rssi_max.max(l.rssi_max);
    into.snr_sum += l.snr_sum;
}

/// RSSI histogram over incoming records.
///
/// Returns `(bin_start_dbm, count)` pairs for non-empty bins, ascending.
///
/// # Panics
///
/// Panics if `bin_db` is not positive.
pub fn rssi_histogram(
    store: &Store,
    node: Option<NodeId>,
    window: Window,
    bin_db: f64,
) -> Vec<(f64, u64)> {
    assert!(bin_db > 0.0, "bin width must be positive");
    let mut bins: BTreeMap<i64, u64> = BTreeMap::new();
    for (id, data) in store.iter() {
        if node.is_some_and(|n| n != id) {
            continue;
        }
        for r in data.records_in(window) {
            let Some(rssi) = r.rssi_dbm else { continue };
            let bin = (rssi / bin_db).floor() as i64;
            *bins.entry(bin).or_insert(0) += 1;
        }
    }
    bins.into_iter()
        .map(|(bin, count)| (bin as f64 * bin_db, count))
        .collect()
}

/// Packet counts by mesh packet type.
///
/// Whole index buckets inside the window contribute their pre-summed
/// per-type counts; only the partial edge buckets touch records.
pub fn type_breakdown(
    store: &Store,
    node: Option<NodeId>,
    window: Window,
) -> BTreeMap<PacketType, u64> {
    let parts = split_window(window, store.index_bucket_us());
    let mut out = BTreeMap::new();
    for (id, data) in store.iter() {
        if node.is_some_and(|n| n != id) {
            continue;
        }
        if let Some((lo, hi)) = parts.full {
            for (_, bucket) in data.index().buckets().range(lo..hi) {
                for (&ptype, &n) in &bucket.types {
                    *out.entry(ptype).or_insert(0) += n;
                }
            }
        }
        for edge in parts.edges.iter().copied().flatten() {
            for r in data.records_in(edge) {
                *out.entry(r.ptype).or_insert(0) += 1;
            }
        }
    }
    out
}

/// A node's headline row in the dashboard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSummary {
    /// The node.
    pub node: NodeId,
    /// Server time its last report arrived.
    pub last_report_at: Option<SimTime>,
    /// Reports accepted.
    pub reports: u64,
    /// Reports currently missing (unhealed sequence gaps).
    pub missing_reports: u64,
    /// Node restarts detected from sequence resets.
    pub restarts: u64,
    /// Records ever accepted.
    pub records: u64,
    /// Client-side buffer drops reported.
    pub client_dropped: u64,
    /// Latest battery percentage, if a status was received.
    pub battery_percent: Option<u8>,
    /// Latest uptime, if known.
    pub uptime_ms: Option<u64>,
    /// Latest outbound queue depth, if known.
    pub queue_len: Option<u32>,
    /// Latest duty-cycle utilization, if known.
    pub duty_cycle_utilization: Option<f64>,
    /// Destinations reachable per the latest routing table.
    pub reachable: Option<usize>,
    /// Latest mesh counters, if known.
    pub mesh: Option<MeshStats>,
}

/// One point of a node's self-reported status history.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatusPoint {
    /// Server receive time of the snapshot.
    pub at: SimTime,
    /// Battery percentage.
    pub battery_percent: u8,
    /// Outbound queue depth.
    pub queue_len: u32,
    /// Duty-cycle utilization.
    pub duty_cycle_utilization: f64,
    /// Destinations reachable.
    pub reachable: u32,
}

/// A node's status history (battery/queue/duty/reachability over time) —
/// the per-node health charts of the dashboard.
pub fn status_series(store: &Store, node: NodeId) -> Vec<StatusPoint> {
    store
        .node(node)
        .map(|data| {
            data.statuses()
                .iter()
                .map(|(at, s)| StatusPoint {
                    at: *at,
                    battery_percent: s.battery_percent,
                    queue_len: s.queue_len,
                    duty_cycle_utilization: s.duty_cycle_utilization,
                    reachable: u32::try_from(s.routes.len()).unwrap_or(u32::MAX),
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Estimated channel occupancy per time bucket: the fraction of each
/// bucket spent on the air, reconstructed from *outgoing* records'
/// sizes via the airtime formula for `radio`.
///
/// A frame's time-on-air is split proportionally across every bucket
/// its transmission overlaps, so a frame straddling a boundary no
/// longer over-reports one bucket and under-reports the next (which
/// could push a bucket's fraction above physical limits).
///
/// This is the server-side estimate of what the regulator enforces
/// locally — a disagreement flags a misconfigured node.
///
/// # Panics
///
/// Panics if `bucket` is zero.
pub fn channel_occupancy(
    store: &Store,
    window: Window,
    radio: &RadioConfig,
    bucket: Duration,
) -> Vec<(SimTime, f64)> {
    assert!(!bucket.is_zero(), "bucket must be non-zero");
    let bucket_us = bucket.as_micros() as u64;
    let mut airtime_us: BTreeMap<u64, u64> = BTreeMap::new();
    for (_, data) in store.iter() {
        for r in data.records_in(window) {
            if r.direction != Direction::Out {
                continue;
            }
            // The record's size covers the whole frame; subtract nothing.
            let toa = loramon_phy::airtime::time_on_air_us(radio, r.size_bytes as usize);
            add_airtime(&mut airtime_us, r.captured_at().as_micros(), toa, bucket_us);
        }
    }
    airtime_us
        .into_iter()
        .map(|(b, us)| (SimTime::from_micros(b), us as f64 / bucket_us as f64))
        .collect()
}

/// Credit `toa_us` of airtime starting at `start_us` to every bucket
/// the transmission overlaps, each receiving only the overlapping
/// microseconds.
fn add_airtime(airtime_us: &mut BTreeMap<u64, u64>, start_us: u64, toa_us: u64, bucket_us: u64) {
    let end = start_us.saturating_add(toa_us);
    let mut b = start_us / bucket_us * bucket_us;
    while b < end {
        let seg_end = end.min(b.saturating_add(bucket_us));
        let seg_start = b.max(start_us);
        *airtime_us.entry(b).or_insert(0) += seg_end - seg_start;
        let Some(next) = b.checked_add(bucket_us) else {
            break;
        };
        b = next;
    }
}

/// Packet-size histogram over all records (both directions), as
/// `(bin_start_bytes, count)` for non-empty bins.
///
/// # Panics
///
/// Panics if `bin_bytes` is zero.
pub fn size_histogram(
    store: &Store,
    node: Option<NodeId>,
    window: Window,
    bin_bytes: u32,
) -> Vec<(u32, u64)> {
    assert!(bin_bytes > 0, "bin width must be positive");
    let mut bins: BTreeMap<u32, u64> = BTreeMap::new();
    for (id, data) in store.iter() {
        if node.is_some_and(|n| n != id) {
            continue;
        }
        for r in data.records_in(window) {
            *bins
                .entry(r.size_bytes / bin_bytes * bin_bytes)
                .or_insert(0) += 1;
        }
    }
    bins.into_iter().collect()
}

/// One summary row per reporting node, in address order.
pub fn node_summaries(store: &Store) -> Vec<NodeSummary> {
    store
        .iter()
        .map(|(node, data)| {
            let latest = data.latest_status();
            NodeSummary {
                node,
                last_report_at: data.last_report_at(),
                reports: data.reports_received(),
                missing_reports: data.missing_reports(),
                restarts: data.restarts(),
                records: data.records_total(),
                client_dropped: data.client_dropped(),
                battery_percent: latest.map(|s| s.battery_percent),
                uptime_ms: latest.map(|s| s.uptime_ms),
                queue_len: latest.map(|s| s.queue_len),
                duty_cycle_utilization: latest.map(|s| s.duty_cycle_utilization),
                reachable: latest.map(|s| s.routes.len()),
                mesh: latest.map(|s| s.mesh),
            }
        })
        .collect()
}

/// Reference implementations that scan every retained record.
///
/// These are the pre-index query semantics, kept alive as an
/// equivalence oracle: randomized tests and the `query_hotpath`
/// benchmark run both engines over the same store and require
/// identical answers. They are not part of the dashboard API — callers
/// should use the indexed functions in the parent module.
pub mod naive {
    use super::*;

    /// Full-scan [`super::packets_over_time`].
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn packets_over_time(
        store: &Store,
        node: Option<NodeId>,
        direction: Option<Direction>,
        window: Window,
        bucket: Duration,
    ) -> Vec<SeriesPoint> {
        assert!(!bucket.is_zero(), "bucket must be non-zero");
        let bucket_us = bucket.as_micros() as u64;
        let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
        for (id, data) in store.iter() {
            if node.is_some_and(|n| n != id) {
                continue;
            }
            for r in data.records() {
                if direction.is_some_and(|d| d != r.direction) {
                    continue;
                }
                let at = r.captured_at();
                if !window.contains(at) {
                    continue;
                }
                let b = at.as_micros() / bucket_us * bucket_us;
                *counts.entry(b).or_insert(0) += 1;
            }
        }
        let (&first, &last) = match (counts.keys().next(), counts.keys().next_back()) {
            (Some(f), Some(l)) => (f, l),
            _ => return Vec::new(),
        };
        (first..=last)
            .step_by(bucket_us as usize)
            .map(|b| SeriesPoint {
                bucket: SimTime::from_micros(b),
                count: counts.get(&b).copied().unwrap_or(0),
            })
            .collect()
    }

    /// Full-scan [`super::link_stats`].
    pub fn link_stats(store: &Store, window: Window) -> Vec<LinkStats> {
        let mut acc: BTreeMap<(NodeId, NodeId), LinkAcc> = BTreeMap::new();
        for (id, data) in store.iter() {
            for r in data.records() {
                if r.direction != Direction::In || !window.contains(r.captured_at()) {
                    continue;
                }
                let (Some(rssi), Some(snr)) = (r.rssi_dbm, r.snr_db) else {
                    continue;
                };
                let a = acc.entry((r.counterpart, id)).or_default();
                a.n += 1;
                a.rssi_sum += rssi;
                a.rssi_min = a.rssi_min.min(rssi);
                a.rssi_max = a.rssi_max.max(rssi);
                a.snr_sum += snr;
            }
        }
        acc.into_iter()
            .map(|((from, to), a)| LinkStats {
                from,
                to,
                packets: a.n,
                mean_rssi_dbm: a.rssi_sum / a.n as f64,
                min_rssi_dbm: a.rssi_min,
                max_rssi_dbm: a.rssi_max,
                mean_snr_db: a.snr_sum / a.n as f64,
            })
            .collect()
    }

    /// Full-scan [`super::rssi_histogram`].
    ///
    /// # Panics
    ///
    /// Panics if `bin_db` is not positive.
    pub fn rssi_histogram(
        store: &Store,
        node: Option<NodeId>,
        window: Window,
        bin_db: f64,
    ) -> Vec<(f64, u64)> {
        assert!(bin_db > 0.0, "bin width must be positive");
        let mut bins: BTreeMap<i64, u64> = BTreeMap::new();
        for (id, data) in store.iter() {
            if node.is_some_and(|n| n != id) {
                continue;
            }
            for r in data.records() {
                let Some(rssi) = r.rssi_dbm else { continue };
                if !window.contains(r.captured_at()) {
                    continue;
                }
                let bin = (rssi / bin_db).floor() as i64;
                *bins.entry(bin).or_insert(0) += 1;
            }
        }
        bins.into_iter()
            .map(|(bin, count)| (bin as f64 * bin_db, count))
            .collect()
    }

    /// Full-scan [`super::type_breakdown`].
    pub fn type_breakdown(
        store: &Store,
        node: Option<NodeId>,
        window: Window,
    ) -> BTreeMap<PacketType, u64> {
        let mut out = BTreeMap::new();
        for (id, data) in store.iter() {
            if node.is_some_and(|n| n != id) {
                continue;
            }
            for r in data.records() {
                if window.contains(r.captured_at()) {
                    *out.entry(r.ptype).or_insert(0) += 1;
                }
            }
        }
        out
    }

    /// Full-scan [`super::channel_occupancy`], with the same
    /// proportional bucket-edge split.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn channel_occupancy(
        store: &Store,
        window: Window,
        radio: &RadioConfig,
        bucket: Duration,
    ) -> Vec<(SimTime, f64)> {
        assert!(!bucket.is_zero(), "bucket must be non-zero");
        let bucket_us = bucket.as_micros() as u64;
        let mut airtime_us: BTreeMap<u64, u64> = BTreeMap::new();
        for (_, data) in store.iter() {
            for r in data.records() {
                if r.direction != Direction::Out || !window.contains(r.captured_at()) {
                    continue;
                }
                let toa = loramon_phy::airtime::time_on_air_us(radio, r.size_bytes as usize);
                add_airtime(&mut airtime_us, r.captured_at().as_micros(), toa, bucket_us);
            }
        }
        airtime_us
            .into_iter()
            .map(|(b, us)| (SimTime::from_micros(b), us as f64 / bucket_us as f64))
            .collect()
    }

    /// Full-scan [`super::size_histogram`].
    ///
    /// # Panics
    ///
    /// Panics if `bin_bytes` is zero.
    pub fn size_histogram(
        store: &Store,
        node: Option<NodeId>,
        window: Window,
        bin_bytes: u32,
    ) -> Vec<(u32, u64)> {
        assert!(bin_bytes > 0, "bin width must be positive");
        let mut bins: BTreeMap<u32, u64> = BTreeMap::new();
        for (id, data) in store.iter() {
            if node.is_some_and(|n| n != id) {
                continue;
            }
            for r in data.records() {
                if window.contains(r.captured_at()) {
                    *bins
                        .entry(r.size_bytes / bin_bytes * bin_bytes)
                        .or_insert(0) += 1;
                }
            }
        }
        bins.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Retention;
    use loramon_core::{PacketRecord, Report};

    fn record(node: u16, ts_ms: u64, dir: Direction, from: u16, rssi: f64) -> PacketRecord {
        PacketRecord {
            seq: ts_ms,
            timestamp_ms: ts_ms,
            direction: dir,
            node: NodeId(node),
            counterpart: NodeId(from),
            ptype: if ts_ms.is_multiple_of(2) {
                PacketType::Data
            } else {
                PacketType::Routing
            },
            origin: NodeId(from),
            final_dst: NodeId(node),
            packet_id: 1,
            ttl: 5,
            size_bytes: 30,
            rssi_dbm: (dir == Direction::In).then_some(rssi),
            snr_db: (dir == Direction::In).then_some(5.0),
        }
    }

    fn seed_store() -> Store {
        let mut store = Store::new(Retention::default());
        // Node 1 receives from node 2 at t = 1 s, 2 s, 61 s.
        let report1 = Report {
            node: NodeId(1),
            report_seq: 0,
            generated_at_ms: 100_000,
            dropped_records: 0,
            status: None,
            records: vec![
                record(1, 1_000, Direction::In, 2, -90.0),
                record(1, 2_000, Direction::In, 2, -100.0),
                record(1, 61_000, Direction::In, 2, -95.0),
                record(1, 1_500, Direction::Out, 2, 0.0),
            ],
        };
        // Node 2 receives one packet from node 1.
        let report2 = Report {
            node: NodeId(2),
            report_seq: 0,
            generated_at_ms: 100_000,
            dropped_records: 0,
            status: None,
            records: vec![record(2, 1_600, Direction::In, 1, -91.0)],
        };
        store.insert(&report1, SimTime::from_secs(101));
        store.insert(&report2, SimTime::from_secs(101));
        store
    }

    #[test]
    fn series_buckets_and_gaps() {
        let store = seed_store();
        let series = packets_over_time(
            &store,
            Some(NodeId(1)),
            Some(Direction::In),
            Window::all(),
            Duration::from_secs(60),
        );
        // Buckets 0 s and 60 s, with the empty middle impossible here
        // (adjacent); counts: 2 then 1.
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].count, 2);
        assert_eq!(series[1].count, 1);
        assert_eq!(series[1].bucket, SimTime::from_secs(60));
    }

    #[test]
    fn series_includes_empty_middle_buckets() {
        let store = seed_store();
        let series = packets_over_time(
            &store,
            Some(NodeId(1)),
            Some(Direction::In),
            Window::all(),
            Duration::from_secs(10),
        );
        // 0 s bucket .. 60 s bucket → 7 buckets, middles empty.
        assert_eq!(series.len(), 7);
        assert!(series[1..6].iter().all(|p| p.count == 0));
    }

    #[test]
    fn series_direction_and_node_filters() {
        let store = seed_store();
        let all_dirs = packets_over_time(
            &store,
            Some(NodeId(1)),
            None,
            Window::all(),
            Duration::from_secs(3600),
        );
        assert_eq!(all_dirs[0].count, 4);
        let both_nodes =
            packets_over_time(&store, None, None, Window::all(), Duration::from_secs(3600));
        assert_eq!(both_nodes[0].count, 5);
    }

    #[test]
    fn empty_store_yields_empty_series() {
        let store = Store::new(Retention::default());
        assert!(
            packets_over_time(&store, None, None, Window::all(), Duration::from_secs(60))
                .is_empty()
        );
    }

    #[test]
    fn link_stats_aggregate_per_directed_link() {
        let store = seed_store();
        let links = link_stats(&store, Window::all());
        assert_eq!(links.len(), 2);
        let l21 = links
            .iter()
            .find(|l| l.from == NodeId(2) && l.to == NodeId(1))
            .unwrap();
        assert_eq!(l21.packets, 3);
        assert!((l21.mean_rssi_dbm - (-95.0)).abs() < 1e-9);
        assert_eq!(l21.min_rssi_dbm, -100.0);
        assert_eq!(l21.max_rssi_dbm, -90.0);
        let l12 = links
            .iter()
            .find(|l| l.from == NodeId(1) && l.to == NodeId(2))
            .unwrap();
        assert_eq!(l12.packets, 1);
    }

    #[test]
    fn histogram_bins() {
        let store = seed_store();
        let hist = rssi_histogram(&store, Some(NodeId(1)), Window::all(), 5.0);
        // -90 → bin -90, -100 → bin -100, -95 → bin -95.
        let bins: Vec<f64> = hist.iter().map(|(b, _)| *b).collect();
        assert_eq!(bins, vec![-100.0, -95.0, -90.0]);
        assert!(hist.iter().all(|&(_, c)| c == 1));
    }

    #[test]
    fn breakdown_counts_types() {
        let store = seed_store();
        let breakdown = type_breakdown(&store, None, Window::all());
        let total: u64 = breakdown.values().sum();
        assert_eq!(total, 5);
        assert!(breakdown.contains_key(&PacketType::Data));
    }

    #[test]
    fn window_filtering() {
        let store = seed_store();
        let w = Window {
            from: SimTime::from_secs(60),
            to: SimTime::from_secs(120),
        };
        let links = link_stats(&store, w);
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].packets, 1);
    }

    #[test]
    fn window_last_helper() {
        let w = Window::last(Duration::from_secs(60), SimTime::from_secs(100));
        assert!(w.contains(SimTime::from_secs(40)));
        assert!(!w.contains(SimTime::from_secs(39)));
        assert!(!w.contains(SimTime::from_secs(100)));
        // Saturates at zero.
        let w0 = Window::last(Duration::from_secs(60), SimTime::from_secs(10));
        assert_eq!(w0.from, SimTime::ZERO);
    }

    #[test]
    fn status_series_tracks_history() {
        use crate::store::Retention;
        use loramon_core::NodeStatus;
        let mut store = Store::new(Retention::default());
        for seq in 0..3u32 {
            store.insert(
                &Report {
                    node: NodeId(1),
                    report_seq: seq,
                    generated_at_ms: 30_000 * u64::from(seq + 1),
                    dropped_records: 0,
                    status: Some(NodeStatus {
                        node: NodeId(1),
                        uptime_ms: 0,
                        battery_percent: 100 - seq as u8 * 10,
                        queue_len: seq,
                        duty_cycle_utilization: 0.1 * f64::from(seq),
                        mesh: Default::default(),
                        routes: vec![],
                    }),
                    records: vec![],
                },
                SimTime::from_secs(30 * u64::from(seq + 1)),
            );
        }
        let series = status_series(&store, NodeId(1));
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].battery_percent, 100);
        assert_eq!(series[2].battery_percent, 80);
        assert!(series.windows(2).all(|w| w[0].at < w[1].at));
        assert!(status_series(&store, NodeId(9)).is_empty());
    }

    #[test]
    fn channel_occupancy_estimates_airtime_fraction() {
        let store = seed_store();
        let radio = RadioConfig::mesher_default();
        // One Out record of 30 bytes at t=1.5 s → ~72 ms airtime in the
        // first 60 s bucket → ~0.12% occupancy.
        let occ = channel_occupancy(&store, Window::all(), &radio, Duration::from_secs(60));
        assert_eq!(occ.len(), 1);
        let (bucket, fraction) = occ[0];
        assert_eq!(bucket, SimTime::ZERO);
        assert!(fraction > 0.0005 && fraction < 0.01, "fraction {fraction}");
    }

    #[test]
    fn size_histogram_bins_by_bytes() {
        let store = seed_store();
        let hist = size_histogram(&store, None, Window::all(), 16);
        // All seeded records are 30 bytes → one bin at 16.
        assert_eq!(hist, vec![(16, 5)]);
        assert!(size_histogram(&store, Some(NodeId(9)), Window::all(), 16).is_empty());
    }

    #[test]
    fn summaries_without_status() {
        let store = seed_store();
        let summaries = node_summaries(&store);
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].node, NodeId(1));
        assert_eq!(summaries[0].records, 4);
        assert_eq!(summaries[0].battery_percent, None);
    }

    #[test]
    fn occupancy_splits_airtime_across_bucket_boundary() {
        // A 30-byte frame captured 10 ms before the 60 s bucket edge
        // stays on the air past it (~72 ms time-on-air): both buckets
        // must be credited, proportionally, with nothing lost.
        let mut store = Store::new(Retention::default());
        let rep = Report {
            node: NodeId(1),
            report_seq: 0,
            generated_at_ms: 100_000,
            dropped_records: 0,
            status: None,
            records: vec![record(1, 59_990, Direction::Out, 2, 0.0)],
        };
        store.insert(&rep, SimTime::from_secs(101));
        let radio = RadioConfig::mesher_default();
        let occ = channel_occupancy(&store, Window::all(), &radio, Duration::from_secs(60));
        assert_eq!(occ.len(), 2, "airtime spans the boundary: {occ:?}");
        let toa = loramon_phy::airtime::time_on_air_us(&radio, 30) as f64;
        let total_us: f64 = occ.iter().map(|(_, f)| f * 60_000_000.0).sum();
        assert!(
            (total_us - toa).abs() < 1e-3,
            "airtime lost: {total_us} vs {toa}"
        );
        let head_us = occ[0].1 * 60_000_000.0;
        assert!(
            (head_us - 10_000.0).abs() < 1e-3,
            "first bucket holds exactly the 10 ms before the edge, got {head_us}"
        );
    }

    /// A deterministic random store: several nodes, shuffled report
    /// arrival (out-of-order retransmit-style), random timestamps,
    /// directions, types, sizes and link metrics, with retention tight
    /// enough that trims exercise the index decrement path.
    fn random_store(seed: u64) -> Store {
        use loramon_sim::Rng;
        let mut rng = Rng::new(seed);
        let retention = Retention {
            max_age: Duration::from_secs(600),
            max_records_per_node: 400,
            index_bucket: Duration::from_secs(10),
            ..Retention::default()
        };
        let mut store = Store::new(retention);
        let mut reports = Vec::new();
        for node in 1..=3u16 {
            for seq in 0..30u32 {
                let n = rng.next_below(9);
                let records = (0..n)
                    .map(|_| {
                        let ts = rng.next_below(900_000);
                        let dir = if rng.chance(0.5) {
                            Direction::In
                        } else {
                            Direction::Out
                        };
                        let from = u16::try_from(1 + rng.next_below(4)).unwrap_or(1);
                        let mut r = record(node, ts, dir, from, rng.range_f64(-120.0, -60.0));
                        r.size_bytes = u32::try_from(10 + rng.next_below(200)).unwrap_or(10);
                        r.ptype = match rng.next_below(3) {
                            0 => PacketType::Routing,
                            1 => PacketType::Data,
                            _ => PacketType::Ack,
                        };
                        // Some receptions arrive without link metrics.
                        if rng.chance(0.2) {
                            r.rssi_dbm = None;
                            r.snr_db = None;
                        }
                        r
                    })
                    .collect();
                reports.push(Report {
                    node: NodeId(node),
                    report_seq: seq,
                    generated_at_ms: 1_000_000 + 1_000 * u64::from(seq),
                    dropped_records: 0,
                    status: None,
                    records,
                });
            }
        }
        // Deterministic shuffle: reports land out of order, like live
        // traffic interleaved with late retransmissions.
        for i in (1..reports.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            reports.swap(i, j);
        }
        for rep in &reports {
            store.insert(rep, SimTime::from_secs(2_000));
        }
        store
    }

    /// Assert every query answers identically through the index and
    /// through the naive full scan. Counts, min/max and bucket keys
    /// must match exactly; float means may differ only by summation
    /// order, bounded at 1e-9.
    fn assert_equiv(store: &Store, window: Window) {
        let radio = RadioConfig::mesher_default();
        for bucket_s in [7u64, 10, 30, 60] {
            let bucket = Duration::from_secs(bucket_s);
            for node in [None, Some(NodeId(1))] {
                for dir in [None, Some(Direction::In), Some(Direction::Out)] {
                    assert_eq!(
                        packets_over_time(store, node, dir, window, bucket),
                        naive::packets_over_time(store, node, dir, window, bucket),
                        "series node={node:?} dir={dir:?} bucket={bucket_s}s window={window:?}"
                    );
                }
            }
            assert_eq!(
                channel_occupancy(store, window, &radio, bucket),
                naive::channel_occupancy(store, window, &radio, bucket),
                "occupancy bucket={bucket_s}s window={window:?}"
            );
        }
        let indexed = link_stats(store, window);
        let scanned = naive::link_stats(store, window);
        assert_eq!(indexed.len(), scanned.len(), "links window={window:?}");
        for (a, b) in indexed.iter().zip(&scanned) {
            assert_eq!((a.from, a.to, a.packets), (b.from, b.to, b.packets));
            assert_eq!(a.min_rssi_dbm, b.min_rssi_dbm, "min {a:?} vs {b:?}");
            assert_eq!(a.max_rssi_dbm, b.max_rssi_dbm, "max {a:?} vs {b:?}");
            assert!(
                (a.mean_rssi_dbm - b.mean_rssi_dbm).abs() < 1e-9,
                "{a:?} vs {b:?}"
            );
            assert!(
                (a.mean_snr_db - b.mean_snr_db).abs() < 1e-9,
                "{a:?} vs {b:?}"
            );
        }
        for node in [None, Some(NodeId(2))] {
            assert_eq!(
                type_breakdown(store, node, window),
                naive::type_breakdown(store, node, window),
                "types node={node:?} window={window:?}"
            );
            assert_eq!(
                rssi_histogram(store, node, window, 5.0),
                naive::rssi_histogram(store, node, window, 5.0),
                "rssi node={node:?} window={window:?}"
            );
            assert_eq!(
                size_histogram(store, node, window, 16),
                naive::size_histogram(store, node, window, 16),
                "sizes node={node:?} window={window:?}"
            );
        }
    }

    #[test]
    fn indexed_queries_match_naive_oracle_on_random_workloads() {
        use loramon_sim::Rng;
        for seed in [1u64, 7, 42, 1337] {
            let store = random_store(seed);
            let fixed = [
                Window::all(),
                // Aligned to the 10 s index grid.
                Window {
                    from: SimTime::from_secs(20),
                    to: SimTime::from_secs(600),
                },
                // Deliberately unaligned edges.
                Window {
                    from: SimTime::from_millis(13_501),
                    to: SimTime::from_millis(487_303),
                },
                // Inside a single index bucket.
                Window {
                    from: SimTime::from_secs(15),
                    to: SimTime::from_secs(18),
                },
                // Empty.
                Window {
                    from: SimTime::from_secs(50),
                    to: SimTime::from_secs(50),
                },
                Window::last(Duration::from_secs(3600), SimTime::from_secs(400)),
            ];
            for w in fixed {
                assert_equiv(&store, w);
            }
            let mut rng = Rng::new(seed ^ 0x00ab_cdef);
            for _ in 0..8 {
                let a = rng.next_below(1_000_000_000);
                let b = rng.next_below(1_000_000_000);
                let w = Window {
                    from: SimTime::from_micros(a.min(b)),
                    to: SimTime::from_micros(a.max(b)),
                };
                assert_equiv(&store, w);
            }
        }
    }
}
