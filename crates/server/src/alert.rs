//! Alerting (R-Fig-7).
//!
//! The server watches the store and raises alerts for conditions a
//! network administrator cares about: a node gone silent, a draining
//! battery, a backed-up queue, a degrading link. Alerts are
//! edge-triggered — one firing per condition episode — and clear when
//! the condition resolves, so a flapping node produces a sequence of
//! distinct episodes rather than a flood.

use crate::query::Window;
use crate::store::Store;
use loramon_mesh::Direction;
use loramon_sim::{NodeId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::time::Duration;

/// The kind of condition an alert describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AlertKind {
    /// No report from the node within the silence threshold.
    NodeSilent,
    /// Battery at or below the configured floor.
    LowBattery,
    /// Outbound queue above the configured depth.
    QueueBacklog,
    /// Mean incoming RSSI dropped sharply between windows.
    RssiDegraded,
    /// Report sequence gaps observed (telemetry loss).
    ReportGap,
}

impl std::fmt::Display for AlertKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlertKind::NodeSilent => write!(f, "node-silent"),
            AlertKind::LowBattery => write!(f, "low-battery"),
            AlertKind::QueueBacklog => write!(f, "queue-backlog"),
            AlertKind::RssiDegraded => write!(f, "rssi-degraded"),
            AlertKind::ReportGap => write!(f, "report-gap"),
        }
    }
}

/// A fired alert.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Condition kind.
    pub kind: AlertKind,
    /// Affected node.
    pub node: NodeId,
    /// Server time of the firing.
    pub at: SimTime,
    /// Human-readable description.
    pub message: String,
}

/// Alerting thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlertRules {
    /// Silence threshold: alert when a node has not reported for this
    /// long (default 3 report periods at the 30 s default = 90 s).
    pub silent_after: Duration,
    /// Battery floor percentage (default 20).
    pub low_battery_percent: u8,
    /// Queue depth threshold in frames (default 16).
    pub queue_backlog: u32,
    /// RSSI drop (dB) between consecutive windows that trips the
    /// degradation alert (default 10 dB).
    pub rssi_drop_db: f64,
    /// Window length for the RSSI comparison (default 5 min).
    pub rssi_window: Duration,
    /// Minimum packets per window for an RSSI verdict (default 5).
    pub rssi_min_packets: u64,
}

impl Default for AlertRules {
    fn default() -> Self {
        AlertRules {
            silent_after: Duration::from_secs(90),
            low_battery_percent: 20,
            queue_backlog: 16,
            rssi_drop_db: 10.0,
            rssi_window: Duration::from_secs(300),
            rssi_min_packets: 5,
        }
    }
}

/// Edge-triggered alert engine.
#[derive(Debug, Default)]
pub struct AlertEngine {
    rules: AlertRules,
    active: BTreeSet<(NodeId, AlertKind)>,
    history: Vec<Alert>,
    /// Last seen missing-report count per node, to fire on increases.
    gap_watermark: std::collections::BTreeMap<NodeId, u64>,
}

impl AlertEngine {
    /// An engine with the given rules.
    pub fn new(rules: AlertRules) -> Self {
        AlertEngine {
            rules,
            ..AlertEngine::default()
        }
    }

    /// The configured rules.
    pub fn rules(&self) -> &AlertRules {
        &self.rules
    }

    /// Every alert ever fired, in firing order.
    pub fn history(&self) -> &[Alert] {
        &self.history
    }

    /// Currently active `(node, kind)` conditions.
    pub fn active(&self) -> Vec<(NodeId, AlertKind)> {
        self.active.iter().copied().collect()
    }

    /// Evaluate all rules at server time `now`. Returns newly fired
    /// alerts (conditions that were not already active).
    pub fn evaluate(&mut self, store: &Store, now: SimTime) -> Vec<Alert> {
        let rules = self.rules;
        let mut fired = Vec::new();
        for (node, data) in store.iter() {
            // Node silent.
            let silent = data
                .last_report_at()
                .is_some_and(|at| now.saturating_since(at) > rules.silent_after);
            self.transition(
                node,
                AlertKind::NodeSilent,
                silent,
                now,
                || {
                    format!(
                        "node {node} has not reported for more than {:?}",
                        rules.silent_after
                    )
                },
                &mut fired,
            );

            // Status-based conditions.
            let status = data.latest_status();
            let low_battery =
                status.is_some_and(|s| s.battery_percent <= rules.low_battery_percent);
            self.transition(
                node,
                AlertKind::LowBattery,
                low_battery,
                now,
                || {
                    format!(
                        "node {node} battery at {}%",
                        status.map(|s| s.battery_percent).unwrap_or(0)
                    )
                },
                &mut fired,
            );

            let backlog = status.is_some_and(|s| s.queue_len > rules.queue_backlog);
            self.transition(
                node,
                AlertKind::QueueBacklog,
                backlog,
                now,
                || {
                    format!(
                        "node {node} queue depth {}",
                        status.map(|s| s.queue_len).unwrap_or(0)
                    )
                },
                &mut fired,
            );

            // RSSI degradation: mean of the last window vs the one before.
            let w_now = Window::last(rules.rssi_window, now);
            let w_prev = Window::last(self.rules.rssi_window, w_now.from);
            let mean_in = |w: Window| -> Option<(f64, u64)> {
                let rssis: Vec<f64> = data
                    .records_in(w)
                    .iter()
                    .filter(|r| r.direction == Direction::In)
                    .filter_map(|r| r.rssi_dbm)
                    .collect();
                if rssis.is_empty() {
                    None
                } else {
                    Some((
                        rssis.iter().sum::<f64>() / rssis.len() as f64,
                        rssis.len() as u64,
                    ))
                }
            };
            let degraded = match (mean_in(w_prev), mean_in(w_now)) {
                (Some((prev, n_prev)), Some((cur, n_cur)))
                    if n_prev >= rules.rssi_min_packets && n_cur >= rules.rssi_min_packets =>
                {
                    prev - cur >= rules.rssi_drop_db
                }
                _ => false,
            };
            self.transition(
                node,
                AlertKind::RssiDegraded,
                degraded,
                now,
                || format!("node {node} mean RSSI dropped sharply"),
                &mut fired,
            );

            // Report gaps: fire whenever the missing count grows. The
            // count *heals* as late retransmissions fill holes; the
            // watermark follows it down so a later loss re-fires, and
            // the condition clears once nothing is missing.
            let missing = data.missing_reports();
            let watermark = self.gap_watermark.entry(node).or_insert(0);
            if missing > *watermark {
                let alert = Alert {
                    kind: AlertKind::ReportGap,
                    node,
                    at: now,
                    message: format!(
                        "node {node} telemetry gap: {} report(s) missing",
                        missing - *watermark
                    ),
                };
                *watermark = missing;
                self.active.insert((node, AlertKind::ReportGap));
                self.history.push(alert.clone());
                fired.push(alert);
            } else {
                *watermark = missing;
                if missing == 0 {
                    self.active.remove(&(node, AlertKind::ReportGap));
                }
            }
        }
        fired
    }

    fn transition(
        &mut self,
        node: NodeId,
        kind: AlertKind,
        condition: bool,
        now: SimTime,
        message: impl FnOnce() -> String,
        fired: &mut Vec<Alert>,
    ) {
        let key = (node, kind);
        if condition {
            if self.active.insert(key) {
                let alert = Alert {
                    kind,
                    node,
                    at: now,
                    message: message(),
                };
                self.history.push(alert.clone());
                fired.push(alert);
            }
        } else {
            self.active.remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Retention, Store};
    use loramon_core::{NodeStatus, PacketRecord, Report};
    use loramon_mesh::PacketType;

    fn report(node: u16, seq: u32, battery: u8, queue: u32) -> Report {
        Report {
            node: NodeId(node),
            report_seq: seq,
            generated_at_ms: 1000 * u64::from(seq + 1),
            dropped_records: 0,
            status: Some(NodeStatus {
                node: NodeId(node),
                uptime_ms: 0,
                battery_percent: battery,
                queue_len: queue,
                duty_cycle_utilization: 0.0,
                mesh: Default::default(),
                routes: vec![],
            }),
            records: vec![],
        }
    }

    #[test]
    fn silent_node_fires_once_and_clears() {
        let mut store = Store::new(Retention::default());
        store.insert(&report(1, 0, 100, 0), SimTime::from_secs(10));
        let mut engine = AlertEngine::new(AlertRules::default());

        assert!(engine.evaluate(&store, SimTime::from_secs(20)).is_empty());
        let fired = engine.evaluate(&store, SimTime::from_secs(200));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AlertKind::NodeSilent);
        // Still silent: no re-fire.
        assert!(engine.evaluate(&store, SimTime::from_secs(300)).is_empty());
        // The node reports again: condition clears...
        store.insert(&report(1, 1, 100, 0), SimTime::from_secs(310));
        assert!(engine.evaluate(&store, SimTime::from_secs(311)).is_empty());
        assert!(engine.active().is_empty());
        // ...and a second silence is a new episode.
        let fired = engine.evaluate(&store, SimTime::from_secs(600));
        assert_eq!(fired.len(), 1);
        assert_eq!(engine.history().len(), 2);
    }

    #[test]
    fn low_battery_threshold() {
        let mut store = Store::new(Retention::default());
        store.insert(&report(1, 0, 19, 0), SimTime::from_secs(10));
        let mut engine = AlertEngine::new(AlertRules::default());
        let fired = engine.evaluate(&store, SimTime::from_secs(11));
        assert!(fired.iter().any(|a| a.kind == AlertKind::LowBattery));
        assert!(fired[0].message.contains("19%") || fired.iter().any(|a| a.message.contains("19")));
    }

    #[test]
    fn healthy_battery_no_alert() {
        let mut store = Store::new(Retention::default());
        store.insert(&report(1, 0, 21, 0), SimTime::from_secs(10));
        let mut engine = AlertEngine::new(AlertRules::default());
        let fired = engine.evaluate(&store, SimTime::from_secs(11));
        assert!(!fired.iter().any(|a| a.kind == AlertKind::LowBattery));
    }

    #[test]
    fn queue_backlog_detection() {
        let mut store = Store::new(Retention::default());
        store.insert(&report(1, 0, 100, 17), SimTime::from_secs(10));
        let mut engine = AlertEngine::new(AlertRules::default());
        let fired = engine.evaluate(&store, SimTime::from_secs(11));
        assert!(fired.iter().any(|a| a.kind == AlertKind::QueueBacklog));
    }

    #[test]
    fn report_gap_fires_on_each_increase() {
        let mut store = Store::new(Retention::default());
        store.insert(&report(1, 0, 100, 0), SimTime::from_secs(10));
        let mut engine = AlertEngine::new(AlertRules::default());
        engine.evaluate(&store, SimTime::from_secs(11));
        // Seq jumps 0 → 3: 2 missing.
        store.insert(&report(1, 3, 100, 0), SimTime::from_secs(40));
        let fired = engine.evaluate(&store, SimTime::from_secs(41));
        let gap: Vec<&Alert> = fired
            .iter()
            .filter(|a| a.kind == AlertKind::ReportGap)
            .collect();
        assert_eq!(gap.len(), 1);
        assert!(gap[0].message.contains('2'));
        // No further gap → no more firings.
        store.insert(&report(1, 4, 100, 0), SimTime::from_secs(70));
        let fired = engine.evaluate(&store, SimTime::from_secs(71));
        assert!(!fired.iter().any(|a| a.kind == AlertKind::ReportGap));
    }

    #[test]
    fn report_gap_clears_when_retries_heal_it() {
        let mut store = Store::new(Retention::default());
        store.insert(&report(1, 0, 100, 0), SimTime::from_secs(10));
        let mut engine = AlertEngine::new(AlertRules::default());
        engine.evaluate(&store, SimTime::from_secs(11));
        // Seq jumps 0 → 3: the gap fires and stays active.
        store.insert(&report(1, 3, 100, 0), SimTime::from_secs(40));
        let fired = engine.evaluate(&store, SimTime::from_secs(41));
        assert!(fired.iter().any(|a| a.kind == AlertKind::ReportGap));
        assert!(engine.active().contains(&(NodeId(1), AlertKind::ReportGap)));
        // The lost reports arrive late via retransmission: partially
        // healed but still gapped → stays active, no re-fire.
        store.insert(&report(1, 1, 100, 0), SimTime::from_secs(50));
        let fired = engine.evaluate(&store, SimTime::from_secs(51));
        assert!(fired.is_empty());
        assert!(engine.active().contains(&(NodeId(1), AlertKind::ReportGap)));
        // Fully healed → the condition clears.
        store.insert(&report(1, 2, 100, 0), SimTime::from_secs(60));
        engine.evaluate(&store, SimTime::from_secs(61));
        assert!(!engine.active().contains(&(NodeId(1), AlertKind::ReportGap)));
        // A fresh loss after healing is a new episode and re-fires.
        store.insert(&report(1, 6, 100, 0), SimTime::from_secs(100));
        let fired = engine.evaluate(&store, SimTime::from_secs(101));
        let gap: Vec<&Alert> = fired
            .iter()
            .filter(|a| a.kind == AlertKind::ReportGap)
            .collect();
        assert_eq!(gap.len(), 1);
        assert!(gap[0].message.contains('2'), "{:?}", gap[0].message);
    }

    #[test]
    fn rssi_degradation_needs_enough_packets() {
        fn in_rec(node: u16, ts_ms: u64, rssi: f64) -> PacketRecord {
            PacketRecord {
                seq: ts_ms,
                timestamp_ms: ts_ms,
                direction: Direction::In,
                node: NodeId(node),
                counterpart: NodeId(2),
                ptype: PacketType::Routing,
                origin: NodeId(2),
                final_dst: NodeId::BROADCAST,
                packet_id: 1,
                ttl: 1,
                size_bytes: 20,
                rssi_dbm: Some(rssi),
                snr_db: Some(5.0),
            }
        }
        let mut store = Store::new(Retention::default());
        // Previous window (300–600 s): strong signal; current (600–900 s):
        // 15 dB weaker. 6 packets in each window.
        let mut records = Vec::new();
        for i in 0..6u64 {
            records.push(in_rec(1, 310_000 + i * 40_000, -80.0));
            records.push(in_rec(1, 610_000 + i * 40_000, -95.0));
        }
        store.insert(
            &Report {
                node: NodeId(1),
                report_seq: 0,
                generated_at_ms: 900_000,
                dropped_records: 0,
                status: None,
                records,
            },
            SimTime::from_secs(900),
        );
        let mut engine = AlertEngine::new(AlertRules::default());
        let fired = engine.evaluate(&store, SimTime::from_secs(900));
        assert!(
            fired.iter().any(|a| a.kind == AlertKind::RssiDegraded),
            "no degradation alert in {fired:?}"
        );
    }

    #[test]
    fn kind_display() {
        assert_eq!(AlertKind::NodeSilent.to_string(), "node-silent");
        assert_eq!(AlertKind::ReportGap.to_string(), "report-gap");
    }
}
