//! Report archiving and replay.
//!
//! The paper's server persists telemetry in a database; here the durable
//! form is a JSON-lines archive — one `{received_at_ms, report}` entry
//! per line — which can be written to any `io::Write`, read back, and
//! replayed into a fresh [`MonitorServer`] to reconstruct its state
//! (dashboards included) offline.

use crate::ingest::IngestOutcome;
use crate::server::MonitorServer;
use loramon_core::Report;
use loramon_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// One archived line: a report plus the server time it arrived.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchiveEntry {
    /// Server receive time in milliseconds.
    pub received_at_ms: u64,
    /// The report.
    pub report: Report,
}

impl ArchiveEntry {
    /// Construct from a receive time and report.
    pub fn new(received_at: SimTime, report: Report) -> Self {
        ArchiveEntry {
            received_at_ms: received_at.as_millis(),
            report,
        }
    }

    /// The receive time as [`SimTime`].
    pub fn received_at(&self) -> SimTime {
        SimTime::from_millis(self.received_at_ms)
    }
}

/// Error reading an archive.
#[derive(Debug)]
pub enum ArchiveError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line was not a valid entry (carries the 1-based line number).
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
}

impl std::fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveError::Io(e) => write!(f, "archive i/o error: {e}"),
            ArchiveError::Malformed { line, message } => {
                write!(f, "archive line {line} malformed: {message}")
            }
        }
    }
}

impl std::error::Error for ArchiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArchiveError::Io(e) => Some(e),
            ArchiveError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for ArchiveError {
    fn from(e: std::io::Error) -> Self {
        ArchiveError::Io(e)
    }
}

/// Write entries as JSON lines.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_jsonl<W: Write>(
    entries: impl IntoIterator<Item = ArchiveEntry>,
    mut writer: W,
) -> std::io::Result<usize> {
    let mut n = 0;
    for entry in entries {
        serde_json::to_writer(&mut writer, &entry)?;
        writer.write_all(b"\n")?;
        n += 1;
    }
    writer.flush()?;
    Ok(n)
}

/// Read entries from a JSON-lines stream. Blank lines are skipped.
///
/// # Errors
///
/// Returns [`ArchiveError::Malformed`] with the offending line number on
/// parse failure, or [`ArchiveError::Io`] on read failure.
pub fn read_jsonl<R: BufRead>(reader: R) -> Result<Vec<ArchiveEntry>, ArchiveError> {
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let entry: ArchiveEntry =
            serde_json::from_str(&line).map_err(|e| ArchiveError::Malformed {
                line: i + 1,
                message: e.to_string(),
            })?;
        out.push(entry);
    }
    Ok(out)
}

/// Replay archived entries into a server, in receive-time order.
///
/// Each ingest feeds its receive time to the server's
/// [`Clock`](crate::clock::Clock), so a default ([`crate::clock::IngestClock`])
/// server ends up with its clock at the archive's final receive time,
/// and a [`crate::clock::WallClock`] server inherits that time as its
/// floor before live reports take over.
///
/// Returns `(accepted, duplicates, invalid)` counts.
pub fn replay(server: &MonitorServer, mut entries: Vec<ArchiveEntry>) -> (u64, u64, u64) {
    entries.sort_by_key(|e| (e.received_at_ms, e.report.node, e.report.report_seq));
    let (mut accepted, mut duplicates, mut invalid) = (0, 0, 0);
    for entry in entries {
        match server.ingest(&entry.report, entry.received_at()) {
            IngestOutcome::Accepted { .. } => accepted += 1,
            IngestOutcome::Duplicate => duplicates += 1,
            IngestOutcome::Invalid(_) => invalid += 1,
        }
    }
    (accepted, duplicates, invalid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use loramon_sim::NodeId;

    fn report(node: u16, seq: u32) -> Report {
        Report {
            node: NodeId(node),
            report_seq: seq,
            generated_at_ms: 30_000 * u64::from(seq + 1),
            dropped_records: 0,
            status: None,
            records: vec![],
        }
    }

    fn entries() -> Vec<ArchiveEntry> {
        vec![
            ArchiveEntry::new(SimTime::from_secs(31), report(1, 0)),
            ArchiveEntry::new(SimTime::from_secs(61), report(1, 1)),
            ArchiveEntry::new(SimTime::from_secs(31), report(2, 0)),
        ]
    }

    #[test]
    fn write_read_roundtrip() {
        let mut buf = Vec::new();
        let n = write_jsonl(entries(), &mut buf).unwrap();
        assert_eq!(n, 3);
        assert_eq!(buf.iter().filter(|&&b| b == b'\n').count(), 3);
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back, entries());
    }

    #[test]
    fn blank_lines_skipped() {
        let mut buf = Vec::new();
        write_jsonl(entries(), &mut buf).unwrap();
        let with_blanks = format!("\n{}\n\n", String::from_utf8(buf).unwrap().trim_end());
        let back = read_jsonl(with_blanks.as_bytes()).unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn malformed_line_reports_position() {
        let data = b"{\"received_at_ms\":1,\"report\":{bad}\n";
        let err = read_jsonl(&data[..]).unwrap_err();
        match err {
            ArchiveError::Malformed { line, .. } => assert_eq!(line, 1),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn replay_reconstructs_server_state() {
        let server = MonitorServer::new(ServerConfig::default());
        let (accepted, duplicates, invalid) = replay(&server, entries());
        assert_eq!((accepted, duplicates, invalid), (3, 0, 0));
        assert_eq!(server.node_ids(), vec![NodeId(1), NodeId(2)]);
        assert_eq!(server.clock(), SimTime::from_secs(61));
        // Replaying again is fully deduplicated.
        let (a2, d2, _) = replay(&server, entries());
        assert_eq!((a2, d2), (0, 3));
    }

    #[test]
    fn replay_sorts_out_of_order_entries() {
        let server = MonitorServer::new(ServerConfig::default());
        let mut es = entries();
        es.reverse();
        replay(&server, es);
        // Sequence gap accounting stays clean because replay re-sorted.
        let summary = server
            .node_summaries()
            .into_iter()
            .find(|s| s.node == NodeId(1))
            .unwrap();
        assert_eq!(summary.missing_reports, 0);
    }
}
