//! Restart-aware report sequence accounting.
//!
//! A monitoring client numbers its reports with a `report_seq` that
//! starts at 0 and resets to 0 when the node power-cycles (volatile
//! counters are gone after a crash). The server therefore cannot treat
//! `(node, report_seq)` as globally unique: seq 0 arriving twice may be
//! a retransmission duplicate — or a legitimate report from a rebooted
//! node. The [`EpochTracker`] disambiguates the two using the report's
//! `generated_at_ms` timestamp, which survives retransmission unchanged
//! and is monotone in `report_seq` within one incarnation of the node.
//!
//! Each incarnation is an *epoch*. A report opens a new epoch when its
//! generation time is newer than everything seen so far while its
//! sequence number regressed — a node moving forward in time cannot
//! reuse an old sequence number unless its counter was reset. Late
//! retransmissions from an earlier incarnation keep their old
//! generation time and are filed back into the epoch whose time range
//! they fall in, which lets sequence gaps *heal* when a lost-then-
//! retried report finally arrives.

use std::collections::BTreeMap;

/// One incarnation of a reporting node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Epoch {
    /// Generation time of the earliest report observed for this epoch.
    /// Lowered retroactively when an earlier report of the same epoch
    /// arrives late (out of order).
    start_gen_ms: u64,
    /// Sequence numbers observed, each with its generation time.
    seen: BTreeMap<u32, u64>,
    /// Highest sequence observed in this epoch.
    max_seq: u32,
}

impl Epoch {
    fn first(seq: u32, gen_ms: u64) -> Self {
        let mut seen = BTreeMap::new();
        seen.insert(seq, gen_ms);
        Epoch {
            start_gen_ms: gen_ms,
            seen,
            max_seq: seq,
        }
    }

    /// Reports this epoch is still missing: holes below `max_seq`.
    fn missing(&self) -> u64 {
        u64::from(self.max_seq) + 1 - self.seen.len() as u64
    }
}

/// What [`EpochTracker::observe`] concluded about one report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// First time this `(epoch, seq)` was seen — the report is new data.
    pub fresh: bool,
    /// The report opened a new epoch: the node restarted.
    pub restart: bool,
    /// The report is fresh but arrived behind newer data — a
    /// lost-then-retried report finally landing (gap healing), or a
    /// retransmission from an earlier incarnation.
    pub late: bool,
}

/// Per-node epoch bookkeeping. See the module docs for the model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochTracker {
    epochs: Vec<Epoch>,
    /// Newest generation time observed across all epochs.
    max_gen_ms: u64,
}

impl EpochTracker {
    /// A tracker that has seen nothing.
    pub fn new() -> Self {
        EpochTracker::default()
    }

    /// Account for one report and classify it.
    pub fn observe(&mut self, seq: u32, gen_ms: u64) -> Observation {
        let Some(last) = self.epochs.last() else {
            self.epochs.push(Epoch::first(seq, gen_ms));
            self.max_gen_ms = gen_ms;
            return Observation {
                fresh: true,
                restart: false,
                late: false,
            };
        };

        // Restart rule: strictly newer generation time with a sequence
        // number at or below what the current incarnation already
        // reached means the counter was reset.
        if gen_ms > self.max_gen_ms && seq <= last.max_seq {
            self.epochs.push(Epoch::first(seq, gen_ms));
            self.max_gen_ms = gen_ms;
            return Observation {
                fresh: true,
                restart: true,
                late: false,
            };
        }

        // File the report into the epoch whose time range covers it:
        // the last epoch that started at or before its generation time.
        let mut idx = match self.epochs.iter().rposition(|e| e.start_gen_ms <= gen_ms) {
            Some(i) => i,
            None => {
                // Earlier than the first epoch's first-observed report:
                // same epoch, observed out of order. Widen it.
                // lint:allow(slice-index, reason = "`last` above proves the tracker holds at least one epoch")
                self.epochs[0].start_gen_ms = gen_ms;
                0
            }
        };

        // If the candidate epoch already holds this seq with a
        // *different* generation time, this report is from a later
        // incarnation whose recorded start is too high (its first
        // reports arrived out of order). Shift forward and widen.
        // lint:allow(slice-index, reason = "idx starts at an rposition hit or at 0 of a non-empty vec, and only increments behind the bounds check below")
        while let Some(&g) = self.epochs[idx].seen.get(&seq) {
            if g == gen_ms || idx + 1 >= self.epochs.len() {
                break;
            }
            idx += 1;
            // lint:allow(slice-index, reason = "the break above guarantees idx + 1 < len before the increment")
            let e = &mut self.epochs[idx];
            e.start_gen_ms = e.start_gen_ms.min(gen_ms);
        }

        let into_past_epoch = idx + 1 < self.epochs.len();
        // lint:allow(slice-index, reason = "idx was bounds-checked through every path above")
        let epoch = &mut self.epochs[idx];
        let behind_epoch_head = seq < epoch.max_seq;
        let fresh = if epoch.seen.contains_key(&seq) {
            false
        } else {
            epoch.seen.insert(seq, gen_ms);
            epoch.max_seq = epoch.max_seq.max(seq);
            true
        };
        self.max_gen_ms = self.max_gen_ms.max(gen_ms);
        Observation {
            fresh,
            restart: false,
            late: fresh && (into_past_epoch || behind_epoch_head),
        }
    }

    /// Reports still missing across all epochs — the healable gap
    /// count. Shrinks when a lost-then-retried report arrives late.
    pub fn missing_total(&self) -> u64 {
        self.epochs.iter().map(Epoch::missing).sum()
    }

    /// Restarts detected (epochs beyond the first).
    pub fn restarts(&self) -> u64 {
        self.epochs.len().saturating_sub(1) as u64
    }

    /// Highest sequence observed in the current (latest) epoch.
    pub fn current_max_seq(&self) -> Option<u32> {
        self.epochs.last().map(|e| e.max_seq)
    }

    /// Total distinct reports observed across all epochs.
    pub fn distinct_reports(&self) -> u64 {
        self.epochs.iter().map(|e| e.seen.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream_has_no_gaps() {
        let mut t = EpochTracker::new();
        for seq in 0..10 {
            let o = t.observe(seq, 1000 * u64::from(seq));
            assert!(o.fresh && !o.restart);
        }
        assert_eq!(t.missing_total(), 0);
        assert_eq!(t.restarts(), 0);
        assert_eq!(t.current_max_seq(), Some(9));
    }

    #[test]
    fn gap_opens_then_heals_on_late_arrival() {
        let mut t = EpochTracker::new();
        assert!(!t.observe(0, 0).late);
        assert!(!t.observe(3, 3000).late);
        assert_eq!(t.missing_total(), 2);
        // The lost reports are retried and finally land.
        let o = t.observe(1, 1000);
        assert!(o.fresh && o.late, "gap-healing arrival is late: {o:?}");
        assert_eq!(t.missing_total(), 1);
        let o = t.observe(2, 2000);
        assert!(o.fresh && o.late);
        assert_eq!(t.missing_total(), 0);
    }

    #[test]
    fn retransmit_into_an_old_epoch_is_late() {
        let mut t = EpochTracker::new();
        t.observe(0, 1000);
        t.observe(1, 31_000);
        t.observe(3, 91_000); // seq 2 lost pre-crash
        assert!(!t.observe(0, 200_000).late, "a restart is not late data");
        let o = t.observe(2, 61_000);
        assert!(o.fresh && o.late, "old-epoch retransmit is late: {o:?}");
        // Replaying it again is a duplicate, not late new data.
        let o = t.observe(2, 61_000);
        assert!(!o.fresh && !o.late);
    }

    #[test]
    fn duplicate_is_not_fresh() {
        let mut t = EpochTracker::new();
        assert!(t.observe(0, 500).fresh);
        let o = t.observe(0, 500);
        assert!(!o.fresh && !o.restart);
        assert_eq!(t.distinct_reports(), 1);
    }

    #[test]
    fn seq_reset_with_newer_time_is_a_restart() {
        let mut t = EpochTracker::new();
        t.observe(0, 1000);
        t.observe(1, 31_000);
        let o = t.observe(0, 61_000);
        assert!(o.fresh && o.restart);
        assert_eq!(t.restarts(), 1);
        assert_eq!(t.current_max_seq(), Some(0));
        // Both epochs are complete: nothing missing.
        assert_eq!(t.missing_total(), 0);
    }

    #[test]
    fn old_epoch_retransmit_after_restart_heals_old_gap() {
        let mut t = EpochTracker::new();
        t.observe(0, 1000);
        t.observe(1, 31_000);
        t.observe(3, 91_000); // seq 2 lost pre-crash
        assert_eq!(t.missing_total(), 1);
        t.observe(0, 200_000); // reboot
        assert_eq!(t.restarts(), 1);
        // The pre-crash report finally arrives, keeping its old
        // generation time: it must heal the *old* epoch, not collide
        // with the new one.
        let o = t.observe(2, 61_000);
        assert!(o.fresh && !o.restart);
        assert_eq!(t.missing_total(), 0);
    }

    #[test]
    fn out_of_order_first_reports_of_a_new_epoch() {
        let mut t = EpochTracker::new();
        t.observe(0, 1000);
        t.observe(1, 31_000);
        // Post-reboot seq 1 overtakes post-reboot seq 0 in flight.
        let o = t.observe(1, 230_000);
        assert!(o.fresh && o.restart);
        // Seq 0 of the same new epoch arrives late with an earlier
        // generation time; it collides with the old epoch's seq 0 at a
        // different time, so it must shift into the new epoch.
        let o = t.observe(0, 200_000);
        assert!(o.fresh && !o.restart, "late epoch-opener misfiled: {o:?}");
        assert_eq!(t.missing_total(), 0);
        assert_eq!(t.restarts(), 1);
    }

    #[test]
    fn starting_at_nonzero_seq_counts_the_prefix_missing() {
        let mut t = EpochTracker::new();
        t.observe(5, 5000);
        assert_eq!(t.missing_total(), 5);
    }

    #[test]
    fn earlier_than_first_observation_widens_first_epoch() {
        let mut t = EpochTracker::new();
        t.observe(1, 31_000);
        assert_eq!(t.missing_total(), 1);
        let o = t.observe(0, 1000);
        assert!(o.fresh && !o.restart);
        assert_eq!(t.missing_total(), 0);
    }

    #[test]
    fn double_restart() {
        let mut t = EpochTracker::new();
        t.observe(0, 1000);
        t.observe(1, 31_000);
        t.observe(0, 100_000);
        t.observe(1, 131_000);
        t.observe(0, 200_000);
        assert_eq!(t.restarts(), 2);
        assert_eq!(t.missing_total(), 0);
        assert_eq!(t.distinct_reports(), 5);
    }
}
