//! Cross-node packet matching.
//!
//! By correlating one node's *outgoing* records with its peers'
//! *incoming* records, the server derives network-level truths no single
//! node can see: per-link packet delivery ratio, end-to-end message
//! delivery, and multi-hop latency. This is what makes the monitoring
//! system an analysis tool rather than a log viewer (R-Fig-5's
//! ground-truth companion).

use crate::query::Window;
use crate::store::Store;
use loramon_mesh::{Direction, PacketType};
use loramon_sim::{NodeId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// Delivery ratio on a directed radio link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkDelivery {
    /// Transmitting node.
    pub from: NodeId,
    /// Link destination.
    pub to: NodeId,
    /// Unicast frames the sender reported transmitting to `to`.
    pub sent: u64,
    /// Frames `to` reported receiving from `from`.
    pub received: u64,
}

impl LinkDelivery {
    /// Packet delivery ratio (1.0 when nothing was sent).
    pub fn pdr(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            // Duplicates/overcounts can push received past sent; clamp.
            (self.received as f64 / self.sent as f64).min(1.0)
        }
    }
}

/// Per-link PDR from matched Out/In record counts (unicast only —
/// broadcast frames have no single intended receiver).
pub fn link_deliveries(store: &Store, window: Window) -> Vec<LinkDelivery> {
    let mut sent: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
    let mut received: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
    for (id, data) in store.iter() {
        for r in data.records_in(window) {
            if r.counterpart.is_broadcast() {
                continue;
            }
            match r.direction {
                Direction::Out => *sent.entry((id, r.counterpart)).or_insert(0) += 1,
                Direction::In => *received.entry((r.counterpart, id)).or_insert(0) += 1,
            }
        }
    }
    let links: BTreeSet<(NodeId, NodeId)> = sent.keys().copied().collect();
    links
        .into_iter()
        .map(|link| LinkDelivery {
            from: link.0,
            to: link.1,
            sent: sent.get(&link).copied().unwrap_or(0),
            received: received.get(&link).copied().unwrap_or(0),
        })
        .collect()
}

/// End-to-end delivery between an origin and a final destination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndToEnd {
    /// Message origin.
    pub origin: NodeId,
    /// Final destination.
    pub final_dst: NodeId,
    /// Distinct data messages the origin transmitted.
    pub sent: u64,
    /// Of those, how many the destination received.
    pub delivered: u64,
    /// First-transmission → first-reception latencies of delivered
    /// messages, in capture-clock terms.
    pub latencies: Vec<Duration>,
}

impl EndToEnd {
    /// Delivery ratio (1.0 when nothing was sent).
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }

    /// Mean latency of delivered messages.
    pub fn mean_latency(&self) -> Option<Duration> {
        if self.latencies.is_empty() {
            return None;
        }
        let total: Duration = self.latencies.iter().sum();
        let n = u32::try_from(self.latencies.len()).unwrap_or(u32::MAX);
        Some(total / n)
    }
}

/// Match originated data messages against destination receptions.
///
/// A message is identified by `(origin, packet_id)`; retransmitted or
/// multi-segment messages count once. Only pairs where the origin
/// reported at least one transmission appear.
pub fn end_to_end(store: &Store, window: Window) -> Vec<EndToEnd> {
    // (origin, final_dst, packet_id) → first tx time at the origin.
    let mut first_tx: BTreeMap<(NodeId, NodeId, u16), SimTime> = BTreeMap::new();
    for (id, data) in store.iter() {
        for r in data.records_in(window) {
            if r.direction == Direction::Out
                && r.ptype == PacketType::Data
                && r.origin == id
                && !r.final_dst.is_broadcast()
            {
                let key = (r.origin, r.final_dst, r.packet_id);
                let at = r.captured_at();
                first_tx
                    .entry(key)
                    .and_modify(|t| *t = (*t).min(at))
                    .or_insert(at);
            }
        }
    }
    // (origin, final_dst, packet_id) → first rx time at the destination.
    let mut first_rx: BTreeMap<(NodeId, NodeId, u16), SimTime> = BTreeMap::new();
    for (id, data) in store.iter() {
        for r in data.records_in(window) {
            if r.direction == Direction::In && r.ptype == PacketType::Data && r.final_dst == id {
                let key = (r.origin, r.final_dst, r.packet_id);
                let at = r.captured_at();
                first_rx
                    .entry(key)
                    .and_modify(|t| *t = (*t).min(at))
                    .or_insert(at);
            }
        }
    }

    let mut pairs: BTreeMap<(NodeId, NodeId), EndToEnd> = BTreeMap::new();
    for (&(origin, dst, _id), &tx_at) in &first_tx {
        let e = pairs.entry((origin, dst)).or_insert(EndToEnd {
            origin,
            final_dst: dst,
            sent: 0,
            delivered: 0,
            latencies: Vec::new(),
        });
        e.sent += 1;
        if let Some(&rx_at) = first_rx.get(&(origin, dst, _id)) {
            e.delivered += 1;
            if rx_at >= tx_at {
                e.latencies.push(rx_at - tx_at);
            }
        }
    }
    pairs.into_values().collect()
}

/// Telemetry completeness: how much of what the network transmitted did
/// the monitoring system actually learn about?
///
/// Compares the number of Out records stored against an externally known
/// ground-truth transmission count (from the simulator's trace).
pub fn completeness(store: &Store, ground_truth_transmissions: u64) -> f64 {
    if ground_truth_transmissions == 0 {
        return 1.0;
    }
    let observed: u64 = store
        .iter()
        .flat_map(|(_, d)| d.records())
        .filter(|r| r.direction == Direction::Out)
        .count() as u64;
    (observed as f64 / ground_truth_transmissions as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Retention;
    use loramon_core::{PacketRecord, Report};

    fn rec(
        node: u16,
        ts: u64,
        dir: Direction,
        counterpart: u16,
        origin: u16,
        final_dst: u16,
        packet_id: u16,
    ) -> PacketRecord {
        PacketRecord {
            seq: ts,
            timestamp_ms: ts,
            direction: dir,
            node: NodeId(node),
            counterpart: NodeId(counterpart),
            ptype: PacketType::Data,
            origin: NodeId(origin),
            final_dst: NodeId(final_dst),
            packet_id,
            ttl: 5,
            size_bytes: 30,
            rssi_dbm: (dir == Direction::In).then_some(-90.0),
            snr_db: (dir == Direction::In).then_some(5.0),
        }
    }

    fn store_from(records_by_node: Vec<(u16, Vec<PacketRecord>)>) -> Store {
        let mut store = Store::new(Retention::default());
        for (node, records) in records_by_node {
            store.insert(
                &Report {
                    node: NodeId(node),
                    report_seq: 0,
                    generated_at_ms: 1_000_000,
                    dropped_records: 0,
                    status: None,
                    records,
                },
                SimTime::from_secs(1000),
            );
        }
        store
    }

    #[test]
    fn link_pdr_counts_sent_vs_received() {
        // Node 1 sends 4 frames to node 2; node 2 hears 3 of them.
        let store = store_from(vec![
            (
                1,
                (0..4)
                    .map(|i| rec(1, 1000 + i, Direction::Out, 2, 1, 2, i as u16))
                    .collect(),
            ),
            (
                2,
                (0..3)
                    .map(|i| rec(2, 1100 + i, Direction::In, 1, 1, 2, i as u16))
                    .collect(),
            ),
        ]);
        let links = link_deliveries(&store, Window::all());
        assert_eq!(links.len(), 1);
        let l = &links[0];
        assert_eq!(
            (l.from, l.to, l.sent, l.received),
            (NodeId(1), NodeId(2), 4, 3)
        );
        assert!((l.pdr() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn pdr_clamps_at_one() {
        let l = LinkDelivery {
            from: NodeId(1),
            to: NodeId(2),
            sent: 2,
            received: 3,
        };
        assert_eq!(l.pdr(), 1.0);
        let empty = LinkDelivery {
            from: NodeId(1),
            to: NodeId(2),
            sent: 0,
            received: 0,
        };
        assert_eq!(empty.pdr(), 1.0);
    }

    #[test]
    fn broadcast_frames_excluded_from_links() {
        let store = store_from(vec![(
            1,
            vec![rec(1, 1000, Direction::Out, 0xFFFF, 1, 0xFFFF, 1)],
        )]);
        assert!(link_deliveries(&store, Window::all()).is_empty());
    }

    #[test]
    fn end_to_end_matches_and_measures_latency() {
        // Origin 1 sends messages 1 and 2 toward node 3 (via 2);
        // message 1 arrives 400 ms later, message 2 is lost.
        let store = store_from(vec![
            (
                1,
                vec![
                    rec(1, 1_000, Direction::Out, 2, 1, 3, 1),
                    rec(1, 5_000, Direction::Out, 2, 1, 3, 2),
                ],
            ),
            (3, vec![rec(3, 1_400, Direction::In, 2, 1, 3, 1)]),
        ]);
        let e2e = end_to_end(&store, Window::all());
        assert_eq!(e2e.len(), 1);
        let e = &e2e[0];
        assert_eq!((e.sent, e.delivered), (2, 1));
        assert!((e.delivery_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(e.mean_latency(), Some(Duration::from_millis(400)));
    }

    #[test]
    fn retransmissions_count_one_message() {
        // Same packet_id transmitted twice (a retry) → sent = 1.
        let store = store_from(vec![
            (
                1,
                vec![
                    rec(1, 1_000, Direction::Out, 2, 1, 3, 7),
                    rec(1, 9_000, Direction::Out, 2, 1, 3, 7),
                ],
            ),
            (
                3,
                vec![
                    rec(3, 9_500, Direction::In, 2, 1, 3, 7),
                    rec(3, 9_900, Direction::In, 2, 1, 3, 7),
                ],
            ),
        ]);
        let e2e = end_to_end(&store, Window::all());
        assert_eq!(e2e[0].sent, 1);
        assert_eq!(e2e[0].delivered, 1);
        // Latency is first-tx → first-rx.
        assert_eq!(e2e[0].latencies, vec![Duration::from_millis(8_500)]);
    }

    #[test]
    fn forwarder_transmissions_not_counted_as_origination() {
        // Node 2 forwards node 1's message: its Out record has origin 1,
        // so it must not create a (2 → 3) end-to-end pair.
        let store = store_from(vec![
            (1, vec![rec(1, 1_000, Direction::Out, 2, 1, 3, 1)]),
            (2, vec![rec(2, 1_200, Direction::Out, 3, 1, 3, 1)]),
            (3, vec![rec(3, 1_400, Direction::In, 2, 1, 3, 1)]),
        ]);
        let e2e = end_to_end(&store, Window::all());
        assert_eq!(e2e.len(), 1);
        assert_eq!(e2e[0].origin, NodeId(1));
    }

    #[test]
    fn empty_pairs_absent() {
        let store = store_from(vec![(3, vec![rec(3, 1_400, Direction::In, 2, 1, 3, 1)])]);
        // Destination heard something but the origin never reported: no
        // pair (we cannot know `sent`).
        assert!(end_to_end(&store, Window::all()).is_empty());
    }

    #[test]
    fn completeness_fraction() {
        let store = store_from(vec![(
            1,
            (0..8)
                .map(|i| rec(1, 1000 + i, Direction::Out, 2, 1, 2, i as u16))
                .collect(),
        )]);
        assert!((completeness(&store, 10) - 0.8).abs() < 1e-12);
        assert_eq!(completeness(&store, 0), 1.0);
        assert_eq!(completeness(&store, 4), 1.0, "clamped");
    }
}
