//! # loramon-server
//!
//! The server side of the LoRa mesh monitoring system: report ingestion,
//! a time-series store, the query engine behind every dashboard chart,
//! cross-node packet matching (link PDR, end-to-end delivery/latency),
//! topology inference, alerting, and a small HTTP API serving both JSON
//! and the live dashboard page.
//!
//! ## Example
//!
//! ```
//! use loramon_server::{MonitorServer, ServerConfig, Window};
//! use loramon_core::Report;
//! use loramon_sim::{NodeId, SimTime};
//! use std::time::Duration;
//!
//! let server = MonitorServer::new(ServerConfig::default());
//! let report = Report {
//!     node: NodeId(1),
//!     report_seq: 0,
//!     generated_at_ms: 30_000,
//!     dropped_records: 0,
//!     status: None,
//!     records: vec![],
//! };
//! server.ingest(&report, SimTime::from_secs(31));
//! assert_eq!(server.node_ids(), vec![NodeId(1)]);
//! let series = server.series(None, None, Window::all(), Duration::from_secs(60));
//! assert!(series.is_empty()); // no packet records yet
//! ```

pub mod alert;
pub mod archive;
pub mod clock;
pub mod epoch;
pub mod health;
pub mod http;
pub mod ingest;
pub mod matcher;
pub mod query;
pub mod rollup;
pub mod server;
pub mod store;
pub mod topology;

pub use alert::{Alert, AlertEngine, AlertKind, AlertRules};
pub use archive::{ArchiveEntry, ArchiveError};
pub use clock::{Clock, IngestClock, WallClock};
pub use epoch::{EpochTracker, Observation};
pub use health::{HealthLevel, HealthRules, NodeHealth};
pub use http::HttpServer;
pub use ingest::{IngestOutcome, IngestStats, Ingestor, InvalidReason};
pub use matcher::{EndToEnd, LinkDelivery};
pub use query::{LinkStats, NodeSummary, SeriesPoint, StatusPoint, Window};
pub use rollup::{RollupPoint, Rollups};
pub use server::{MonitorServer, ServerConfig};
pub use store::{NodeData, Retention, Store};
pub use topology::{Topology, TopologyEdge};
