//! Composite node health — the administrator's traffic light.
//!
//! Each node gets a green/yellow/red verdict derived from what the store
//! already knows: report recency, telemetry loss, battery, queue depth,
//! duty-cycle pressure and link quality. Unlike [`alert`](crate::alert)
//! (edge-triggered events), health is a *level* recomputed on demand —
//! the summary color next to each node on the dashboard.

use crate::query::Window;
use crate::store::Store;
use loramon_mesh::Direction;
use loramon_sim::{NodeId, SimTime};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Health verdict levels, ordered from best to worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HealthLevel {
    /// Operating normally.
    Green,
    /// Degraded but functioning.
    Yellow,
    /// Needs attention now.
    Red,
}

impl std::fmt::Display for HealthLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthLevel::Green => write!(f, "green"),
            HealthLevel::Yellow => write!(f, "yellow"),
            HealthLevel::Red => write!(f, "red"),
        }
    }
}

/// One node's health verdict with its reasons.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeHealth {
    /// The node.
    pub node: NodeId,
    /// The verdict.
    pub level: HealthLevel,
    /// Human-readable reasons for every non-green contribution,
    /// worst first.
    pub reasons: Vec<String>,
}

/// Health thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthRules {
    /// Yellow when the last report is older than this; red at 3×.
    pub stale_after: Duration,
    /// Yellow at or below this battery percentage; red at half of it.
    pub battery_yellow: u8,
    /// Yellow when the queue exceeds this depth; red at 4×.
    pub queue_yellow: u32,
    /// Yellow when duty-cycle utilization exceeds this fraction.
    pub duty_yellow: f64,
    /// Yellow when the node's best incoming link is weaker than this
    /// margin above SF7/125 kHz sensitivity, in dB.
    pub link_margin_yellow_db: f64,
    /// Window for the link-quality check.
    pub link_window: Duration,
}

impl Default for HealthRules {
    fn default() -> Self {
        HealthRules {
            stale_after: Duration::from_secs(90),
            battery_yellow: 30,
            queue_yellow: 8,
            duty_yellow: 0.8,
            link_margin_yellow_db: 6.0,
            link_window: Duration::from_secs(600),
        }
    }
}

/// Compute every node's health at server time `now`.
pub fn assess(store: &Store, rules: &HealthRules, now: SimTime) -> Vec<NodeHealth> {
    store
        .iter()
        .map(|(node, data)| {
            let mut level = HealthLevel::Green;
            let mut reasons: Vec<(HealthLevel, String)> = Vec::new();
            let mut raise = |l: HealthLevel, reason: String, level: &mut HealthLevel| {
                if l > *level {
                    *level = l;
                }
                reasons.push((l, reason));
            };

            // Recency.
            match data.last_report_at() {
                Some(at) => {
                    let age = now.saturating_since(at);
                    if age > 3 * rules.stale_after {
                        raise(
                            HealthLevel::Red,
                            format!("no report for {age:?}"),
                            &mut level,
                        );
                    } else if age > rules.stale_after {
                        raise(
                            HealthLevel::Yellow,
                            format!("last report {age:?} ago"),
                            &mut level,
                        );
                    }
                }
                None => raise(HealthLevel::Red, "never reported".into(), &mut level),
            }

            // Telemetry loss.
            if data.missing_reports() > 0 {
                raise(
                    HealthLevel::Yellow,
                    format!("{} report(s) missing", data.missing_reports()),
                    &mut level,
                );
            }

            // Status-derived signals.
            if let Some(status) = data.latest_status() {
                if status.battery_percent <= rules.battery_yellow / 2 {
                    raise(
                        HealthLevel::Red,
                        format!("battery {}%", status.battery_percent),
                        &mut level,
                    );
                } else if status.battery_percent <= rules.battery_yellow {
                    raise(
                        HealthLevel::Yellow,
                        format!("battery {}%", status.battery_percent),
                        &mut level,
                    );
                }
                if status.queue_len > 4 * rules.queue_yellow {
                    raise(
                        HealthLevel::Red,
                        format!("queue {}", status.queue_len),
                        &mut level,
                    );
                } else if status.queue_len > rules.queue_yellow {
                    raise(
                        HealthLevel::Yellow,
                        format!("queue {}", status.queue_len),
                        &mut level,
                    );
                }
                if status.duty_cycle_utilization > rules.duty_yellow {
                    raise(
                        HealthLevel::Yellow,
                        format!(
                            "duty cycle at {:.0}% of cap",
                            status.duty_cycle_utilization * 100.0
                        ),
                        &mut level,
                    );
                }
                if status.routes.is_empty() {
                    raise(
                        HealthLevel::Yellow,
                        "no routes (isolated)".into(),
                        &mut level,
                    );
                }
            }

            // Link quality: strongest recent incoming link.
            let window = Window::last(rules.link_window, now);
            let best_rssi = data
                .records_in(window)
                .iter()
                .filter(|r| r.direction == Direction::In)
                .filter_map(|r| r.rssi_dbm)
                .fold(f64::NEG_INFINITY, f64::max);
            if best_rssi.is_finite() {
                let sensitivity = loramon_phy::sensitivity_dbm(
                    loramon_phy::SpreadingFactor::Sf7,
                    loramon_phy::Bandwidth::Khz125,
                );
                let margin = best_rssi - sensitivity;
                if margin < rules.link_margin_yellow_db {
                    raise(
                        HealthLevel::Yellow,
                        format!("best link only {margin:.1} dB above sensitivity"),
                        &mut level,
                    );
                }
            }

            reasons.sort_by_key(|(level, _)| std::cmp::Reverse(*level));
            NodeHealth {
                node,
                level,
                reasons: reasons.into_iter().map(|(_, r)| r).collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Retention, Store};
    use loramon_core::{NodeStatus, PacketRecord, Report};
    use loramon_mesh::PacketType;

    fn status(battery: u8, queue: u32, duty: f64, routes: usize) -> NodeStatus {
        NodeStatus {
            node: NodeId(1),
            uptime_ms: 0,
            battery_percent: battery,
            queue_len: queue,
            duty_cycle_utilization: duty,
            mesh: Default::default(),
            routes: (0..routes)
                .map(|i| loramon_core::ReportedRoute {
                    address: NodeId(i as u16 + 2),
                    next_hop: NodeId(i as u16 + 2),
                    metric: 1,
                    rssi_dbm: -90.0,
                    snr_db: 5.0,
                })
                .collect(),
        }
    }

    fn in_record(ts_ms: u64, rssi: f64) -> PacketRecord {
        PacketRecord {
            seq: ts_ms,
            timestamp_ms: ts_ms,
            direction: Direction::In,
            node: NodeId(1),
            counterpart: NodeId(2),
            ptype: PacketType::Routing,
            origin: NodeId(2),
            final_dst: NodeId::BROADCAST,
            packet_id: 1,
            ttl: 1,
            size_bytes: 20,
            rssi_dbm: Some(rssi),
            snr_db: Some(5.0),
        }
    }

    fn store_with(status_val: NodeStatus, records: Vec<PacketRecord>, at_s: u64) -> Store {
        let mut store = Store::new(Retention::default());
        store.insert(
            &Report {
                node: NodeId(1),
                report_seq: 0,
                generated_at_ms: at_s * 1000,
                dropped_records: 0,
                status: Some(status_val),
                records,
            },
            SimTime::from_secs(at_s),
        );
        store
    }

    #[test]
    fn healthy_node_is_green() {
        let store = store_with(status(100, 0, 0.1, 2), vec![in_record(55_000, -80.0)], 60);
        let health = assess(&store, &HealthRules::default(), SimTime::from_secs(90));
        assert_eq!(health.len(), 1);
        assert_eq!(health[0].level, HealthLevel::Green);
        assert!(health[0].reasons.is_empty());
    }

    #[test]
    fn staleness_escalates_yellow_then_red() {
        let store = store_with(status(100, 0, 0.1, 2), vec![in_record(55_000, -80.0)], 60);
        let rules = HealthRules::default();
        let yellow = assess(&store, &rules, SimTime::from_secs(60 + 120));
        assert_eq!(yellow[0].level, HealthLevel::Yellow);
        let red = assess(&store, &rules, SimTime::from_secs(60 + 300));
        assert_eq!(red[0].level, HealthLevel::Red);
        assert!(red[0].reasons[0].contains("no report"));
    }

    #[test]
    fn battery_thresholds() {
        let rules = HealthRules::default();
        let yellow = store_with(status(25, 0, 0.1, 2), vec![in_record(55_000, -80.0)], 60);
        assert_eq!(
            assess(&yellow, &rules, SimTime::from_secs(90))[0].level,
            HealthLevel::Yellow
        );
        let red = store_with(status(10, 0, 0.1, 2), vec![in_record(55_000, -80.0)], 60);
        assert_eq!(
            assess(&red, &rules, SimTime::from_secs(90))[0].level,
            HealthLevel::Red
        );
    }

    #[test]
    fn weak_link_and_isolation_are_yellow() {
        let rules = HealthRules::default();
        // Weak best link (-122 dBm: ~2.5 dB margin).
        let weak = store_with(status(100, 0, 0.1, 2), vec![in_record(55_000, -122.0)], 60);
        let h = assess(&weak, &rules, SimTime::from_secs(90));
        assert_eq!(h[0].level, HealthLevel::Yellow);
        assert!(h[0].reasons.iter().any(|r| r.contains("sensitivity")));
        // Isolated node (empty routing table).
        let isolated = store_with(status(100, 0, 0.1, 0), vec![in_record(55_000, -80.0)], 60);
        let h = assess(&isolated, &rules, SimTime::from_secs(90));
        assert!(h[0].reasons.iter().any(|r| r.contains("isolated")));
    }

    #[test]
    fn reasons_sorted_worst_first() {
        // Red battery + yellow queue.
        let store = store_with(status(5, 10, 0.1, 2), vec![in_record(55_000, -80.0)], 60);
        let h = assess(&store, &HealthRules::default(), SimTime::from_secs(90));
        assert_eq!(h[0].level, HealthLevel::Red);
        assert!(h[0].reasons[0].contains("battery"));
        assert!(h[0].reasons.len() >= 2);
    }

    #[test]
    fn level_ordering_and_display() {
        assert!(HealthLevel::Green < HealthLevel::Yellow);
        assert!(HealthLevel::Yellow < HealthLevel::Red);
        assert_eq!(HealthLevel::Red.to_string(), "red");
    }
}
