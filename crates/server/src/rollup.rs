//! Long-horizon rollups.
//!
//! Raw packet records are trimmed by retention; an operator still wants
//! month-scale charts. Rollups absorb every accepted report into fixed
//! time buckets of per-node aggregates (packet counts by direction,
//! RSSI statistics, byte volume) that are tiny and never trimmed —
//! the classic raw/downsampled split of a time-series database.

use loramon_core::Report;
use loramon_mesh::Direction;
use loramon_sim::{NodeId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// One rollup bucket for one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RollupPoint {
    /// Bucket start (capture-time domain).
    pub bucket: SimTime,
    /// The node.
    pub node: NodeId,
    /// Packets received in the bucket.
    pub in_count: u64,
    /// Packets transmitted in the bucket.
    pub out_count: u64,
    /// Bytes across both directions.
    pub bytes: u64,
    /// Mean RSSI of receptions, or `None` (serialized as `null`) when
    /// the bucket has no RSSI samples — 0 dBm is a plausible
    /// strong-signal reading, so it cannot double as a sentinel.
    pub mean_rssi_dbm: Option<f64>,
    /// Receptions contributing to the RSSI mean.
    pub rssi_samples: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Acc {
    in_count: u64,
    out_count: u64,
    bytes: u64,
    rssi_sum: f64,
    rssi_samples: u64,
}

/// The rollup accumulator.
#[derive(Debug)]
pub struct Rollups {
    bucket_us: u64,
    cells: BTreeMap<(NodeId, u64), Acc>,
}

impl Rollups {
    /// Rollups with the given bucket length.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn new(bucket: Duration) -> Self {
        assert!(!bucket.is_zero(), "bucket must be non-zero");
        Rollups {
            bucket_us: bucket.as_micros() as u64,
            cells: BTreeMap::new(),
        }
    }

    /// The configured bucket length.
    pub fn bucket(&self) -> Duration {
        Duration::from_micros(self.bucket_us)
    }

    /// Absorb one accepted report. Duplicate reports must be filtered
    /// *before* this (the ingester already does).
    pub fn absorb(&mut self, report: &Report) {
        for r in &report.records {
            let bucket = r.captured_at().as_micros() / self.bucket_us * self.bucket_us;
            let acc = self.cells.entry((report.node, bucket)).or_default();
            match r.direction {
                Direction::In => {
                    acc.in_count += 1;
                    if let Some(rssi) = r.rssi_dbm {
                        acc.rssi_sum += rssi;
                        acc.rssi_samples += 1;
                    }
                }
                Direction::Out => acc.out_count += 1,
            }
            acc.bytes += u64::from(r.size_bytes);
        }
    }

    /// The rolled-up series for one node, or all nodes merged when
    /// `node` is `None` (merged points carry node `0000`).
    /// Bucket-ascending.
    pub fn series(&self, node: Option<NodeId>) -> Vec<RollupPoint> {
        let mut merged: BTreeMap<u64, Acc> = BTreeMap::new();
        for (&(n, bucket), acc) in &self.cells {
            if node.is_some_and(|q| q != n) {
                continue;
            }
            let entry = merged.entry(bucket).or_default();
            entry.in_count += acc.in_count;
            entry.out_count += acc.out_count;
            entry.bytes += acc.bytes;
            entry.rssi_sum += acc.rssi_sum;
            entry.rssi_samples += acc.rssi_samples;
        }
        merged
            .into_iter()
            .map(|(bucket, acc)| RollupPoint {
                bucket: SimTime::from_micros(bucket),
                node: node.unwrap_or(NodeId(0)),
                in_count: acc.in_count,
                out_count: acc.out_count,
                bytes: acc.bytes,
                mean_rssi_dbm: (acc.rssi_samples > 0)
                    .then(|| acc.rssi_sum / acc.rssi_samples as f64),
                rssi_samples: acc.rssi_samples,
            })
            .collect()
    }

    /// Number of stored cells (node × bucket pairs).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether nothing has been absorbed.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loramon_core::PacketRecord;
    use loramon_mesh::PacketType;

    fn record(ts_ms: u64, dir: Direction, rssi: Option<f64>) -> PacketRecord {
        PacketRecord {
            seq: ts_ms,
            timestamp_ms: ts_ms,
            direction: dir,
            node: NodeId(1),
            counterpart: NodeId(2),
            ptype: PacketType::Data,
            origin: NodeId(2),
            final_dst: NodeId(1),
            packet_id: 1,
            ttl: 5,
            size_bytes: 25,
            rssi_dbm: rssi,
            snr_db: rssi.map(|_| 5.0),
        }
    }

    fn report(records: Vec<PacketRecord>) -> Report {
        Report {
            node: NodeId(1),
            report_seq: 0,
            generated_at_ms: 1_000_000,
            dropped_records: 0,
            status: None,
            records,
        }
    }

    #[test]
    fn absorb_buckets_by_capture_time() {
        let mut r = Rollups::new(Duration::from_secs(60));
        r.absorb(&report(vec![
            record(10_000, Direction::In, Some(-90.0)),
            record(20_000, Direction::In, Some(-100.0)),
            record(30_000, Direction::Out, None),
            record(70_000, Direction::In, Some(-95.0)),
        ]));
        let series = r.series(Some(NodeId(1)));
        assert_eq!(series.len(), 2);
        let first = &series[0];
        assert_eq!(first.bucket, SimTime::ZERO);
        assert_eq!((first.in_count, first.out_count), (2, 1));
        assert_eq!(first.bytes, 75);
        let mean = first.mean_rssi_dbm.expect("bucket has RSSI samples");
        assert!((mean - (-95.0)).abs() < 1e-9);
        let second = &series[1];
        assert_eq!(second.bucket, SimTime::from_secs(60));
        assert_eq!(second.in_count, 1);
    }

    #[test]
    fn series_merges_all_nodes_when_unfiltered() {
        let mut r = Rollups::new(Duration::from_secs(60));
        r.absorb(&report(vec![record(10_000, Direction::In, Some(-90.0))]));
        let mut rep2 = report(vec![]);
        rep2.node = NodeId(2);
        rep2.records = vec![{
            let mut rec = record(20_000, Direction::In, Some(-80.0));
            rec.node = NodeId(2);
            rec
        }];
        r.absorb(&rep2);
        let merged = r.series(None);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].in_count, 2);
        let mean = merged[0].mean_rssi_dbm.expect("bucket has RSSI samples");
        assert!((mean - (-85.0)).abs() < 1e-9);
        // Filtered views stay separate.
        assert_eq!(r.series(Some(NodeId(1)))[0].in_count, 1);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn bucket_without_rssi_samples_reads_none_and_serializes_null() {
        let mut r = Rollups::new(Duration::from_secs(60));
        // Only transmissions: no RSSI samples in the bucket.
        r.absorb(&report(vec![record(10_000, Direction::Out, None)]));
        let series = r.series(Some(NodeId(1)));
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].mean_rssi_dbm, None);
        assert_eq!(series[0].rssi_samples, 0);
        let json = serde_json::to_string(&series[0]).expect("serializes");
        assert!(
            json.contains("\"mean_rssi_dbm\":null"),
            "empty bucket must be null, not a fake 0 dBm: {json}"
        );
    }

    #[test]
    fn empty_rollups() {
        let r = Rollups::new(Duration::from_secs(60));
        assert!(r.is_empty());
        assert!(r.series(None).is_empty());
    }

    #[test]
    #[should_panic(expected = "bucket")]
    fn zero_bucket_panics() {
        let _ = Rollups::new(Duration::ZERO);
    }
}
