//! The server-side monitoring store.
//!
//! Holds, per reporting node, the packet records and status snapshots
//! received so far, with time-based and count-based retention. This is
//! the substrate every query, topology inference and alert rule reads.

use crate::epoch::EpochTracker;
use crate::query::Window;
use loramon_core::{NodeStatus, PacketRecord, Report};
use loramon_mesh::{Direction, PacketType};
use loramon_sim::{NodeId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// Retention policy for stored data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Retention {
    /// Drop records older than this (by capture time) relative to the
    /// newest data. Default 24 h.
    pub max_age: Duration,
    /// Hard cap on records kept per node. Default 100 000.
    pub max_records_per_node: usize,
    /// Hard cap on status snapshots kept per node. Default 10 000.
    pub max_statuses_per_node: usize,
    /// Bucket length of the incremental query index maintained at
    /// ingest: whole-window aggregates (`link_stats`,
    /// `type_breakdown`, `packets_over_time`) read one pre-summed cell
    /// per bucket instead of one record at a time. Default 60 s.
    pub index_bucket: Duration,
}

fn default_index_bucket() -> Duration {
    Duration::from_secs(60)
}

impl Default for Retention {
    fn default() -> Self {
        Retention {
            max_age: Duration::from_secs(24 * 3600),
            max_records_per_node: 100_000,
            max_statuses_per_node: 10_000,
            index_bucket: default_index_bucket(),
        }
    }
}

/// Per-link reception accumulator inside one index bucket: everything
/// `link_stats` needs, pre-summed at ingest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct LinkAcc {
    /// Received packets with both RSSI and SNR present.
    pub(crate) n: u64,
    /// Sum of RSSI samples (dBm).
    pub(crate) rssi_sum: f64,
    /// Minimum RSSI sample (dBm).
    pub(crate) rssi_min: f64,
    /// Maximum RSSI sample (dBm).
    pub(crate) rssi_max: f64,
    /// Sum of SNR samples (dB).
    pub(crate) snr_sum: f64,
}

impl Default for LinkAcc {
    fn default() -> Self {
        LinkAcc {
            n: 0,
            rssi_sum: 0.0,
            rssi_min: f64::INFINITY,
            rssi_max: f64::NEG_INFINITY,
            snr_sum: 0.0,
        }
    }
}

/// Incremental aggregates for one index bucket of one node's records.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct BucketAgg {
    /// Incoming records in the bucket.
    pub(crate) in_count: u64,
    /// Outgoing records in the bucket.
    pub(crate) out_count: u64,
    /// Record counts by mesh packet type (both directions).
    pub(crate) types: BTreeMap<PacketType, u64>,
    /// Link accumulators keyed by transmitting counterpart, fed by
    /// incoming records that carry both RSSI and SNR — the same
    /// predicate `link_stats` applies to raw records.
    pub(crate) links: BTreeMap<NodeId, LinkAcc>,
}

impl BucketAgg {
    fn add(&mut self, r: &PacketRecord) {
        match r.direction {
            Direction::In => self.in_count += 1,
            Direction::Out => self.out_count += 1,
        }
        *self.types.entry(r.ptype).or_insert(0) += 1;
        if r.direction == Direction::In {
            if let (Some(rssi), Some(snr)) = (r.rssi_dbm, r.snr_db) {
                let acc = self.links.entry(r.counterpart).or_default();
                acc.n += 1;
                acc.rssi_sum += rssi;
                acc.rssi_min = acc.rssi_min.min(rssi);
                acc.rssi_max = acc.rssi_max.max(rssi);
                acc.snr_sum += snr;
            }
        }
    }
}

/// The per-node incremental query index: one [`BucketAgg`] per
/// `Retention::index_bucket`-aligned time bucket that currently holds
/// at least one retained record. Maintained additively at insert;
/// retention trims repair it via [`NodeData::trim_front`].
#[derive(Debug, Clone, Default)]
pub(crate) struct NodeIndex {
    buckets: BTreeMap<u64, BucketAgg>,
}

impl NodeIndex {
    /// Aggregates keyed by bucket start (microseconds).
    pub(crate) fn buckets(&self) -> &BTreeMap<u64, BucketAgg> {
        &self.buckets
    }

    fn add(&mut self, r: &PacketRecord, bucket_us: u64) {
        let b = r.captured_at().as_micros() / bucket_us * bucket_us;
        self.buckets.entry(b).or_default().add(r);
    }
}

/// Per-node stored data.
#[derive(Debug, Clone, Default)]
pub struct NodeData {
    /// Packet records, sorted by capture time.
    records: Vec<PacketRecord>,
    /// Status snapshots with server receive time, in receive order.
    statuses: Vec<(SimTime, NodeStatus)>,
    /// Server time the last report arrived.
    last_report_at: Option<SimTime>,
    /// Highest report sequence seen (across all epochs).
    last_report_seq: Option<u32>,
    /// Reports accepted from this node.
    reports_received: u64,
    /// Total records ever accepted (pre-retention).
    records_total: u64,
    /// Sum of client-reported buffer drops.
    client_dropped: u64,
    /// Restart-aware sequence accounting: missing-report gaps that heal
    /// when late retransmissions arrive, and restart detection.
    epochs: EpochTracker,
    /// Incremental per-bucket aggregates over `records`.
    index: NodeIndex,
}

impl NodeData {
    /// Records currently retained, sorted by capture time.
    pub fn records(&self) -> &[PacketRecord] {
        &self.records
    }

    /// The retained records whose capture time falls in `window`.
    ///
    /// `records` is sorted by capture time, so the window's bounds are
    /// located with two binary searches: O(log n) to find the slice,
    /// then the caller touches only in-window records.
    pub fn records_in(&self, window: Window) -> &[PacketRecord] {
        let start = self
            .records
            .partition_point(|r| r.captured_at() < window.from);
        let end = self
            .records
            .partition_point(|r| r.captured_at() < window.to);
        self.records.get(start..end).unwrap_or(&[])
    }

    /// The incremental query index over the retained records.
    pub(crate) fn index(&self) -> &NodeIndex {
        &self.index
    }

    /// Status snapshots currently retained (receive time, status).
    pub fn statuses(&self) -> &[(SimTime, NodeStatus)] {
        &self.statuses
    }

    /// The most recent status snapshot.
    pub fn latest_status(&self) -> Option<&NodeStatus> {
        self.statuses.last().map(|(_, s)| s)
    }

    /// Server time the last report arrived.
    pub fn last_report_at(&self) -> Option<SimTime> {
        self.last_report_at
    }

    /// Highest report sequence seen.
    pub fn last_report_seq(&self) -> Option<u32> {
        self.last_report_seq
    }

    /// Reports accepted.
    pub fn reports_received(&self) -> u64 {
        self.reports_received
    }

    /// Records ever accepted (before retention trimming).
    pub fn records_total(&self) -> u64 {
        self.records_total
    }

    /// Client-side buffer drops reported.
    pub fn client_dropped(&self) -> u64 {
        self.client_dropped
    }

    /// Reports currently missing, inferred from sequence gaps. Unlike a
    /// monotone counter this *heals*: a lost-then-retried report that
    /// finally arrives closes its gap.
    pub fn missing_reports(&self) -> u64 {
        self.epochs.missing_total()
    }

    /// Node restarts detected from sequence resets.
    pub fn restarts(&self) -> u64 {
        self.epochs.restarts()
    }

    fn insert_report(&mut self, report: &Report, received_at: SimTime, bucket_us: u64) {
        self.epochs
            .observe(report.report_seq, report.generated_at_ms);
        self.last_report_seq = Some(
            self.last_report_seq
                .map_or(report.report_seq, |p| p.max(report.report_seq)),
        );
        self.last_report_at = Some(
            self.last_report_at
                .map_or(received_at, |p| p.max(received_at)),
        );
        self.reports_received += 1;
        self.client_dropped += report.dropped_records;
        self.records_total += report.records.len() as u64;

        for r in &report.records {
            // Records usually arrive in order; `partition_point` finds
            // the insert-after-equals position in O(log n) even for
            // late retransmit bursts landing in the middle.
            let pos = self
                .records
                .partition_point(|x| x.timestamp_ms <= r.timestamp_ms);
            self.records.insert(pos, r.clone());
            self.index.add(r, bucket_us);
        }
        if let Some(status) = &report.status {
            self.statuses.push((received_at, status.clone()));
        }
    }

    fn enforce_retention(&mut self, retention: &Retention, bucket_us: u64) {
        let mut cut = 0;
        if let Some(newest) = self.records.last().map(|r| r.timestamp_ms) {
            let horizon = newest.saturating_sub(retention.max_age.as_millis() as u64);
            cut = self.records.partition_point(|r| r.timestamp_ms < horizon);
        }
        if self.records.len() - cut > retention.max_records_per_node {
            cut = self.records.len() - retention.max_records_per_node;
        }
        self.trim_front(cut, bucket_us);
        if self.statuses.len() > retention.max_statuses_per_node {
            let excess = self.statuses.len() - retention.max_statuses_per_node;
            self.statuses.drain(..excess);
        }
    }

    /// Drop the oldest `cut` records and repair the index.
    ///
    /// Retention only ever removes a *prefix* of the sorted record
    /// vector, which makes the decrement exact even for non-invertible
    /// aggregates (min/max RSSI): buckets wholly inside the dropped
    /// prefix are discarded, and the single bucket straddling the cut
    /// is rebuilt from its surviving records.
    fn trim_front(&mut self, cut: usize, bucket_us: u64) {
        if cut == 0 {
            return;
        }
        self.records.drain(..cut);
        let Some(first) = self.records.first() else {
            self.index.buckets.clear();
            return;
        };
        let boundary = first.captured_at().as_micros() / bucket_us * bucket_us;
        self.index.buckets = self.index.buckets.split_off(&boundary);
        let end = boundary.saturating_add(bucket_us);
        let upto = self
            .records
            .partition_point(|r| r.captured_at().as_micros() < end);
        let mut rebuilt = BucketAgg::default();
        for r in self.records.iter().take(upto) {
            rebuilt.add(r);
        }
        self.index.buckets.insert(boundary, rebuilt);
    }
}

/// The whole store: one [`NodeData`] per reporting node.
#[derive(Debug, Default)]
pub struct Store {
    nodes: BTreeMap<NodeId, NodeData>,
    retention: Retention,
}

impl Store {
    /// An empty store with the given retention.
    pub fn new(retention: Retention) -> Self {
        Store {
            nodes: BTreeMap::new(),
            retention,
        }
    }

    /// Insert an accepted report.
    pub fn insert(&mut self, report: &Report, received_at: SimTime) {
        let bucket_us = self.index_bucket_us();
        let data = self.nodes.entry(report.node).or_default();
        data.insert_report(report, received_at, bucket_us);
        data.enforce_retention(&self.retention, bucket_us);
    }

    /// The index bucket length in microseconds (never zero).
    pub fn index_bucket_us(&self) -> u64 {
        (self.retention.index_bucket.as_micros() as u64).max(1)
    }

    /// All known node ids.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }

    /// Data for one node.
    pub fn node(&self, id: NodeId) -> Option<&NodeData> {
        self.nodes.get(&id)
    }

    /// Iterate all `(node, data)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NodeData)> {
        self.nodes.iter().map(|(&id, d)| (id, d))
    }

    /// Number of reporting nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the store has seen no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total records currently retained across nodes.
    pub fn total_records(&self) -> usize {
        self.nodes.values().map(|d| d.records.len()).sum()
    }

    /// The latest report receive time across all nodes — the data-driven
    /// notion of "now" that [`crate::clock::IngestClock`] tracks. Under a
    /// wall clock the two diverge, which is itself a liveness signal.
    pub fn latest_receive_time(&self) -> Option<SimTime> {
        self.nodes
            .values()
            .filter_map(NodeData::last_report_at)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loramon_mesh::{Direction, PacketType};

    fn record(ts_ms: u64, node: u16) -> PacketRecord {
        PacketRecord {
            seq: ts_ms,
            timestamp_ms: ts_ms,
            direction: Direction::In,
            node: NodeId(node),
            counterpart: NodeId(99),
            ptype: PacketType::Data,
            origin: NodeId(99),
            final_dst: NodeId(node),
            packet_id: 1,
            ttl: 5,
            size_bytes: 30,
            rssi_dbm: Some(-90.0),
            snr_db: Some(5.0),
        }
    }

    fn report(node: u16, seq: u32, records: Vec<PacketRecord>) -> Report {
        Report {
            node: NodeId(node),
            report_seq: seq,
            generated_at_ms: 1000 * u64::from(seq),
            dropped_records: 0,
            status: None,
            records,
        }
    }

    #[test]
    fn insert_and_query_basics() {
        let mut store = Store::new(Retention::default());
        store.insert(
            &report(1, 0, vec![record(10, 1), record(20, 1)]),
            SimTime::from_secs(1),
        );
        assert_eq!(store.len(), 1);
        assert_eq!(store.total_records(), 2);
        let d = store.node(NodeId(1)).unwrap();
        assert_eq!(d.reports_received(), 1);
        assert_eq!(d.records_total(), 2);
        assert_eq!(d.last_report_seq(), Some(0));
        assert!(store.node(NodeId(2)).is_none());
    }

    #[test]
    fn records_stay_sorted_even_out_of_order() {
        let mut store = Store::new(Retention::default());
        store.insert(&report(1, 1, vec![record(50, 1)]), SimTime::from_secs(1));
        store.insert(
            &report(1, 0, vec![record(10, 1), record(30, 1)]),
            SimTime::from_secs(2),
        );
        let d = store.node(NodeId(1)).unwrap();
        let ts: Vec<u64> = d.records().iter().map(|r| r.timestamp_ms).collect();
        assert_eq!(ts, vec![10, 30, 50]);
    }

    #[test]
    fn sequence_gaps_are_counted() {
        let mut store = Store::new(Retention::default());
        store.insert(&report(1, 0, vec![]), SimTime::from_secs(1));
        store.insert(&report(1, 3, vec![]), SimTime::from_secs(2));
        let d = store.node(NodeId(1)).unwrap();
        assert_eq!(d.missing_reports(), 2);
        // Starting at a nonzero sequence implies missed reports too.
        let mut store2 = Store::new(Retention::default());
        store2.insert(&report(2, 5, vec![]), SimTime::from_secs(1));
        assert_eq!(store2.node(NodeId(2)).unwrap().missing_reports(), 5);
    }

    #[test]
    fn missing_reports_heal_when_late_reports_arrive() {
        let mut store = Store::new(Retention::default());
        store.insert(&report(1, 0, vec![]), SimTime::from_secs(1));
        store.insert(&report(1, 3, vec![]), SimTime::from_secs(2));
        assert_eq!(store.node(NodeId(1)).unwrap().missing_reports(), 2);
        // The lost reports are retried and finally land: gaps close.
        store.insert(&report(1, 2, vec![]), SimTime::from_secs(3));
        assert_eq!(store.node(NodeId(1)).unwrap().missing_reports(), 1);
        store.insert(&report(1, 1, vec![]), SimTime::from_secs(4));
        assert_eq!(store.node(NodeId(1)).unwrap().missing_reports(), 0);
    }

    #[test]
    fn seq_reset_after_reboot_is_a_restart_not_a_gap() {
        let mut store = Store::new(Retention::default());
        store.insert(&report(1, 0, vec![]), SimTime::from_secs(1));
        store.insert(&report(1, 1, vec![]), SimTime::from_secs(31));
        // Node power-cycles; its counter restarts at 0 with a newer
        // generation time.
        let mut rebooted = report(1, 0, vec![]);
        rebooted.generated_at_ms = 100_000;
        store.insert(&rebooted, SimTime::from_secs(101));
        let d = store.node(NodeId(1)).unwrap();
        assert_eq!(d.restarts(), 1);
        assert_eq!(d.missing_reports(), 0, "a reboot is not telemetry loss");
        assert_eq!(d.reports_received(), 3);
    }

    #[test]
    fn age_retention_trims_old_records() {
        let retention = Retention {
            max_age: Duration::from_secs(10),
            ..Retention::default()
        };
        let mut store = Store::new(retention);
        store.insert(
            &report(
                1,
                0,
                vec![record(1_000, 1), record(5_000, 1), record(20_000, 1)],
            ),
            SimTime::from_secs(21),
        );
        let d = store.node(NodeId(1)).unwrap();
        // horizon = 20000 - 10000 = 10000 → only the 20 s record stays.
        assert_eq!(d.records().len(), 1);
        assert_eq!(d.records_total(), 3, "totals unaffected by retention");
    }

    #[test]
    fn count_retention_caps_records() {
        let retention = Retention {
            max_records_per_node: 5,
            ..Retention::default()
        };
        let mut store = Store::new(retention);
        let records: Vec<PacketRecord> = (0..12).map(|i| record(i * 100, 1)).collect();
        store.insert(&report(1, 0, records), SimTime::from_secs(1));
        let d = store.node(NodeId(1)).unwrap();
        assert_eq!(d.records().len(), 5);
        // The newest survive.
        assert_eq!(d.records()[0].timestamp_ms, 700);
    }

    #[test]
    fn statuses_tracked_and_capped() {
        let retention = Retention {
            max_statuses_per_node: 2,
            ..Retention::default()
        };
        let mut store = Store::new(retention);
        for seq in 0..4u32 {
            let mut rep = report(1, seq, vec![]);
            rep.status = Some(NodeStatus {
                node: NodeId(1),
                uptime_ms: 1000 * u64::from(seq),
                battery_percent: 100 - seq as u8,
                queue_len: 0,
                duty_cycle_utilization: 0.0,
                mesh: Default::default(),
                routes: vec![],
            });
            store.insert(&rep, SimTime::from_secs(u64::from(seq)));
        }
        let d = store.node(NodeId(1)).unwrap();
        assert_eq!(d.statuses().len(), 2);
        assert_eq!(d.latest_status().unwrap().battery_percent, 97);
    }

    #[test]
    fn client_drops_accumulate() {
        let mut store = Store::new(Retention::default());
        let mut rep = report(1, 0, vec![]);
        rep.dropped_records = 7;
        store.insert(&rep, SimTime::from_secs(1));
        let mut rep2 = report(1, 1, vec![]);
        rep2.dropped_records = 3;
        store.insert(&rep2, SimTime::from_secs(2));
        assert_eq!(store.node(NodeId(1)).unwrap().client_dropped(), 10);
    }

    #[test]
    fn latest_receive_time_is_max_across_nodes() {
        let mut store = Store::new(Retention::default());
        assert_eq!(store.latest_receive_time(), None);
        store.insert(&report(1, 0, vec![]), SimTime::from_secs(10));
        store.insert(&report(2, 0, vec![]), SimTime::from_secs(7));
        assert_eq!(store.latest_receive_time(), Some(SimTime::from_secs(10)));
    }

    /// Recompute a node's index from its retained records — the ground
    /// truth the incremental index must always equal.
    fn recomputed_index(data: &NodeData, bucket_us: u64) -> BTreeMap<u64, BucketAgg> {
        let mut fresh = NodeIndex::default();
        for r in data.records() {
            fresh.add(r, bucket_us);
        }
        fresh.buckets
    }

    fn assert_index_consistent(store: &Store) {
        for (id, data) in store.iter() {
            let expect = recomputed_index(data, store.index_bucket_us());
            assert_eq!(
                data.index().buckets(),
                &expect,
                "index drifted from records for node {id:?}"
            );
        }
    }

    #[test]
    fn index_tracks_out_of_order_inserts() {
        let mut store = Store::new(Retention::default());
        store.insert(&report(1, 1, vec![record(50, 1)]), SimTime::from_secs(1));
        store.insert(
            &report(1, 0, vec![record(10, 1), record(30, 1)]),
            SimTime::from_secs(2),
        );
        assert_index_consistent(&store);
        let d = store.node(NodeId(1)).unwrap();
        assert_eq!(d.index().buckets().len(), 1, "all three land in bucket 0");
        let agg = d.index().buckets().get(&0).unwrap();
        assert_eq!(agg.in_count, 3);
        assert_eq!(agg.links.get(&NodeId(99)).unwrap().n, 3);
    }

    #[test]
    fn index_survives_age_trim_with_boundary_rebuild() {
        let retention = Retention {
            max_age: Duration::from_secs(100),
            index_bucket: Duration::from_secs(60),
            ..Retention::default()
        };
        let mut store = Store::new(retention);
        // Records at 10 s .. 250 s; the final insert sets the horizon to
        // 150 s, cutting inside the 120 s bucket.
        let records: Vec<PacketRecord> = (1..=25).map(|i| record(i * 10_000, 1)).collect();
        store.insert(&report(1, 0, records), SimTime::from_secs(300));
        let d = store.node(NodeId(1)).unwrap();
        assert_eq!(d.records().first().unwrap().timestamp_ms, 150_000);
        assert_index_consistent(&store);
        // The straddled 120 s bucket was rebuilt from survivors only.
        let boundary = d.index().buckets().get(&120_000_000).unwrap();
        assert_eq!(boundary.in_count, 3, "150 s, 160 s, 170 s survive");
    }

    #[test]
    fn index_clears_when_all_records_trim() {
        let retention = Retention {
            max_records_per_node: 2,
            ..Retention::default()
        };
        let mut store = Store::new(retention);
        let records: Vec<PacketRecord> = (0..8).map(|i| record(i * 100, 1)).collect();
        store.insert(&report(1, 0, records), SimTime::from_secs(1));
        assert_index_consistent(&store);
        // A much newer burst ages out everything older in one trim.
        let retention = Retention {
            max_age: Duration::from_secs(1),
            ..Retention::default()
        };
        let mut store = Store::new(retention);
        store.insert(&report(1, 0, vec![record(100, 1)]), SimTime::from_secs(1));
        store.insert(
            &report(1, 1, vec![record(10_000_000, 1)]),
            SimTime::from_secs(2),
        );
        assert_index_consistent(&store);
        let d = store.node(NodeId(1)).unwrap();
        assert_eq!(d.records().len(), 1);
        assert_eq!(d.index().buckets().len(), 1);
    }

    #[test]
    fn records_in_windows_by_binary_search() {
        let mut store = Store::new(Retention::default());
        let records: Vec<PacketRecord> = (0..10).map(|i| record(i * 1_000, 1)).collect();
        store.insert(&report(1, 0, records), SimTime::from_secs(1));
        let d = store.node(NodeId(1)).unwrap();
        let w = Window {
            from: SimTime::from_millis(2_000),
            to: SimTime::from_millis(5_000),
        };
        let ts: Vec<u64> = d.records_in(w).iter().map(|r| r.timestamp_ms).collect();
        assert_eq!(ts, vec![2_000, 3_000, 4_000], "half-open [from, to)");
        assert!(d
            .records_in(Window {
                from: w.to,
                to: w.from
            })
            .is_empty());
        assert_eq!(d.records_in(Window::all()).len(), 10);
    }

    #[test]
    fn iter_in_address_order() {
        let mut store = Store::new(Retention::default());
        store.insert(&report(5, 0, vec![]), SimTime::from_secs(1));
        store.insert(&report(2, 0, vec![]), SimTime::from_secs(1));
        let order: Vec<NodeId> = store.iter().map(|(id, _)| id).collect();
        assert_eq!(order, vec![NodeId(2), NodeId(5)]);
        assert!(!store.is_empty());
    }
}
