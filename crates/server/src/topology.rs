//! Topology inference (R-Fig-4).
//!
//! The server reconstructs the mesh graph two independent ways:
//!
//! 1. **from routing tables** — every status snapshot carries the node's
//!    routing table; metric-1 entries are direct neighbors;
//! 2. **from the ether** — every incoming packet record proves the
//!    directed radio link `counterpart → node` worked at least once.
//!
//! Disagreement between the two views is itself a diagnostic (a link that
//! carries packets but no route, or a stale route over a dead link).

use crate::query::Window;
use crate::store::Store;
use loramon_mesh::Direction;
use loramon_sim::{NodeId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::time::Duration;

/// A directed edge of the inferred topology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologyEdge {
    /// Edge tail.
    pub from: NodeId,
    /// Edge head.
    pub to: NodeId,
    /// Mean RSSI observed on the edge, when known.
    pub rssi_dbm: Option<f64>,
    /// Packets observed on the edge (heard-link view) or 0 for
    /// route-only edges.
    pub packets: u64,
}

/// The inferred network topology.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Topology {
    /// All nodes that appear in any view.
    pub nodes: Vec<NodeId>,
    /// Neighbor edges from routing tables (metric-1 entries).
    pub route_edges: Vec<TopologyEdge>,
    /// Edges proven by received packets.
    pub heard_edges: Vec<TopologyEdge>,
}

impl Topology {
    /// Directed edges present in the routing view but never heard —
    /// candidates for stale routes.
    pub fn stale_route_edges(&self) -> Vec<(NodeId, NodeId)> {
        let heard: BTreeSet<(NodeId, NodeId)> =
            self.heard_edges.iter().map(|e| (e.from, e.to)).collect();
        self.route_edges
            .iter()
            .map(|e| (e.from, e.to))
            .filter(|k| !heard.contains(k))
            .collect()
    }

    /// Directed edges heard on the air but absent from routing —
    /// overheard links routing chose not to use.
    pub fn unused_heard_edges(&self) -> Vec<(NodeId, NodeId)> {
        let routed: BTreeSet<(NodeId, NodeId)> =
            self.route_edges.iter().map(|e| (e.from, e.to)).collect();
        self.heard_edges
            .iter()
            .map(|e| (e.from, e.to))
            .filter(|k| !routed.contains(k))
            .collect()
    }

    /// Undirected edge set of the heard view (for graph drawing).
    pub fn undirected_heard(&self) -> Vec<(NodeId, NodeId)> {
        let mut set = BTreeSet::new();
        for e in &self.heard_edges {
            let (a, b) = if e.from <= e.to {
                (e.from, e.to)
            } else {
                (e.to, e.from)
            };
            set.insert((a, b));
        }
        set.into_iter().collect()
    }
}

/// Infer the topology from everything currently stored.
pub fn infer(store: &Store, window: Window) -> Topology {
    let mut nodes: BTreeSet<NodeId> = BTreeSet::new();
    let mut route_edges = Vec::new();
    let mut heard: std::collections::BTreeMap<(NodeId, NodeId), (u64, f64)> =
        std::collections::BTreeMap::new();

    for (id, data) in store.iter() {
        nodes.insert(id);
        // Routing view: latest status, metric-1 entries.
        if let Some(status) = data.latest_status() {
            for route in &status.routes {
                nodes.insert(route.address);
                if route.metric == 1 {
                    route_edges.push(TopologyEdge {
                        // The node reaches `address` directly, i.e. it has
                        // heard `address` → the directed link is
                        // address → node... but semantically the *useful*
                        // edge for routing is node → next_hop. Record the
                        // forwarding direction.
                        from: id,
                        to: route.address,
                        rssi_dbm: Some(route.rssi_dbm),
                        packets: 0,
                    });
                }
            }
        }
        // Heard view: incoming records.
        for r in data.records_in(window) {
            if r.direction != Direction::In {
                continue;
            }
            nodes.insert(r.counterpart);
            let e = heard.entry((r.counterpart, id)).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += r.rssi_dbm.unwrap_or(0.0);
        }
    }

    let heard_edges = heard
        .into_iter()
        .map(|((from, to), (n, rssi_sum))| TopologyEdge {
            from,
            to,
            rssi_dbm: (n > 0).then(|| rssi_sum / n as f64),
            packets: n,
        })
        .collect();

    Topology {
        nodes: nodes.into_iter().collect(),
        route_edges,
        heard_edges,
    }
}

/// The live topology view: infer over the trailing `horizon` anchored
/// at the server clock's `now`, so edges from nodes that went silent
/// age out of the picture instead of lingering forever.
pub fn infer_recent(store: &Store, now: SimTime, horizon: Duration) -> Topology {
    infer(store, Window::last(horizon, now))
}

/// Compare an inferred undirected edge set against ground truth.
///
/// Returns `(true_positives, false_positives, false_negatives)`.
pub fn compare_undirected(
    inferred: &[(NodeId, NodeId)],
    truth: &[(NodeId, NodeId)],
) -> (usize, usize, usize) {
    let norm = |edges: &[(NodeId, NodeId)]| -> BTreeSet<(NodeId, NodeId)> {
        edges
            .iter()
            .map(|&(a, b)| if a <= b { (a, b) } else { (b, a) })
            .collect()
    };
    let inf = norm(inferred);
    let tru = norm(truth);
    let tp = inf.intersection(&tru).count();
    let fp = inf.difference(&tru).count();
    let fn_ = tru.difference(&inf).count();
    (tp, fp, fn_)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Retention, Store};
    use loramon_core::{NodeStatus, PacketRecord, Report, ReportedRoute};
    use loramon_mesh::PacketType;
    use loramon_sim::SimTime;

    fn in_record(node: u16, from: u16, ts: u64, rssi: f64) -> PacketRecord {
        PacketRecord {
            seq: ts,
            timestamp_ms: ts,
            direction: Direction::In,
            node: NodeId(node),
            counterpart: NodeId(from),
            ptype: PacketType::Routing,
            origin: NodeId(from),
            final_dst: NodeId::BROADCAST,
            packet_id: 1,
            ttl: 1,
            size_bytes: 20,
            rssi_dbm: Some(rssi),
            snr_db: Some(5.0),
        }
    }

    fn status(node: u16, neighbors: &[u16]) -> NodeStatus {
        NodeStatus {
            node: NodeId(node),
            uptime_ms: 1000,
            battery_percent: 100,
            queue_len: 0,
            duty_cycle_utilization: 0.0,
            mesh: Default::default(),
            routes: neighbors
                .iter()
                .map(|&n| ReportedRoute {
                    address: NodeId(n),
                    next_hop: NodeId(n),
                    metric: 1,
                    rssi_dbm: -90.0,
                    snr_db: 5.0,
                })
                .collect(),
        }
    }

    fn seed() -> Store {
        let mut store = Store::new(Retention::default());
        store.insert(
            &Report {
                node: NodeId(1),
                report_seq: 0,
                generated_at_ms: 10_000,
                dropped_records: 0,
                status: Some(status(1, &[2])),
                records: vec![in_record(1, 2, 1_000, -92.0), in_record(1, 2, 2_000, -94.0)],
            },
            SimTime::from_secs(11),
        );
        store.insert(
            &Report {
                node: NodeId(2),
                report_seq: 0,
                generated_at_ms: 10_000,
                dropped_records: 0,
                status: Some(status(2, &[1, 3])),
                records: vec![in_record(2, 1, 1_500, -91.0), in_record(2, 3, 1_600, -99.0)],
            },
            SimTime::from_secs(11),
        );
        store
    }

    #[test]
    fn nodes_include_unreporting_peers() {
        let topo = infer(&seed(), Window::all());
        // Node 3 never reported but appears via node 2's table/records.
        assert_eq!(topo.nodes, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn heard_edges_aggregate_packets_and_rssi() {
        let topo = infer(&seed(), Window::all());
        let e = topo
            .heard_edges
            .iter()
            .find(|e| e.from == NodeId(2) && e.to == NodeId(1))
            .unwrap();
        assert_eq!(e.packets, 2);
        assert!((e.rssi_dbm.unwrap() - (-93.0)).abs() < 1e-9);
    }

    #[test]
    fn route_edges_from_metric_one() {
        let topo = infer(&seed(), Window::all());
        assert!(topo
            .route_edges
            .iter()
            .any(|e| e.from == NodeId(2) && e.to == NodeId(3)));
        assert_eq!(topo.route_edges.len(), 3); // 1→2, 2→1, 2→3
    }

    #[test]
    fn stale_and_unused_edge_analysis() {
        let topo = infer(&seed(), Window::all());
        // Every route edge here is also heard (1↔2, 3→2 heard; route 2→3
        // is "stale" in the directed sense because nobody reported
        // hearing node 2 → wait: heard edges are 2→1, 1→2, 3→2. Route
        // edges: 1→2 (heard), 2→1 (heard), 2→3 (not heard as 2→3).
        let stale = topo.stale_route_edges();
        assert_eq!(stale, vec![(NodeId(2), NodeId(3))]);
        let unused = topo.unused_heard_edges();
        assert_eq!(unused, vec![(NodeId(3), NodeId(2))]);
    }

    #[test]
    fn undirected_heard_merges_directions() {
        let topo = infer(&seed(), Window::all());
        let und = topo.undirected_heard();
        assert_eq!(und, vec![(NodeId(1), NodeId(2)), (NodeId(2), NodeId(3))]);
    }

    #[test]
    fn compare_counts_tp_fp_fn() {
        let inferred = vec![(NodeId(1), NodeId(2)), (NodeId(2), NodeId(3))];
        let truth = vec![(NodeId(2), NodeId(1)), (NodeId(3), NodeId(4))];
        let (tp, fp, fn_) = compare_undirected(&inferred, &truth);
        assert_eq!((tp, fp, fn_), (1, 1, 1));
    }

    #[test]
    fn infer_recent_ages_out_old_links() {
        let store = seed();
        // All heard records sit at capture times 1.0–2.0 s; a 1 s window
        // anchored at t = 60 s sees none of them, but routing-table edges
        // (taken from the latest status) remain.
        let topo = infer_recent(&store, SimTime::from_secs(60), Duration::from_secs(1));
        assert!(topo.heard_edges.is_empty());
        assert!(!topo.route_edges.is_empty());
        let fresh = infer_recent(&store, SimTime::from_secs(2), Duration::from_secs(2));
        assert!(!fresh.heard_edges.is_empty());
    }

    #[test]
    fn empty_store_empty_topology() {
        let store = Store::new(Retention::default());
        let topo = infer(&store, Window::all());
        assert!(topo.nodes.is_empty());
        assert!(topo.route_edges.is_empty());
        assert!(topo.heard_edges.is_empty());
    }
}
