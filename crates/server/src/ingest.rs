//! Report ingestion: validation and idempotency.
//!
//! Clients may retransmit reports when their uplink flaps, and in-band
//! reports can be duplicated by mesh retransmissions, so ingestion is
//! idempotent on `(node, report_seq)` *within one incarnation of the
//! node*: a crashed node restarts its sequence counter at 0, and the
//! [`EpochTracker`](crate::epoch::EpochTracker) tells that apart from a
//! retransmission by the report's generation time. Malformed or
//! inconsistent reports are rejected and counted rather than silently
//! stored.

use crate::epoch::EpochTracker;
use loramon_core::Report;
use loramon_sim::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Result of offering one report to the ingester.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IngestOutcome {
    /// Stored; carries the number of packet records accepted.
    Accepted {
        /// Records in the stored report.
        records: usize,
    },
    /// Already seen `(node, report_seq)`; not stored again.
    Duplicate,
    /// Failed validation; not stored.
    Invalid(InvalidReason),
}

/// Why a report failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InvalidReason {
    /// The broadcast address cannot report.
    BadNodeId,
    /// A record's `node` field disagrees with the report's `node`.
    ForeignRecords,
    /// The status snapshot's node disagrees with the report's node.
    ForeignStatus,
    /// Record timestamps exceed the report generation time (clock skew
    /// beyond tolerance).
    TimeTravel,
}

impl std::fmt::Display for InvalidReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvalidReason::BadNodeId => write!(f, "reserved node address"),
            InvalidReason::ForeignRecords => write!(f, "records from a different node"),
            InvalidReason::ForeignStatus => write!(f, "status from a different node"),
            InvalidReason::TimeTravel => write!(f, "records newer than the report"),
        }
    }
}

/// Ingestion counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestStats {
    /// Reports accepted and stored.
    pub accepted: u64,
    /// Duplicate reports suppressed.
    pub duplicates: u64,
    /// Reports rejected by validation.
    pub invalid: u64,
    /// Packet records accepted inside accepted reports.
    pub records: u64,
    /// Node restarts detected from sequence resets.
    pub restarts: u64,
    /// Accepted reports that arrived behind newer data: gap-healing
    /// retries and old-epoch retransmissions. These land out of order
    /// in the store, exercising the mid-vector insert path.
    pub late_reports: u64,
}

/// Validating, deduplicating report gate.
#[derive(Debug, Default)]
pub struct Ingestor {
    seen: BTreeMap<NodeId, EpochTracker>,
    stats: IngestStats,
}

/// Tolerated clock skew between a record timestamp and the report's
/// generation time, in milliseconds.
const SKEW_TOLERANCE_MS: u64 = 5_000;

impl Ingestor {
    /// A fresh ingester.
    pub fn new() -> Self {
        Ingestor::default()
    }

    /// Counters so far.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Validate and deduplicate a report. On `Accepted` the caller must
    /// store it; this method only gates.
    pub fn offer(&mut self, report: &Report) -> IngestOutcome {
        if let Some(reason) = Self::validate(report) {
            self.stats.invalid += 1;
            return IngestOutcome::Invalid(reason);
        }
        let observed = self
            .seen
            .entry(report.node)
            .or_default()
            .observe(report.report_seq, report.generated_at_ms);
        if !observed.fresh {
            self.stats.duplicates += 1;
            return IngestOutcome::Duplicate;
        }
        if observed.restart {
            self.stats.restarts += 1;
        }
        if observed.late {
            self.stats.late_reports += 1;
        }
        self.stats.accepted += 1;
        self.stats.records += report.records.len() as u64;
        IngestOutcome::Accepted {
            records: report.records.len(),
        }
    }

    fn validate(report: &Report) -> Option<InvalidReason> {
        if report.node.is_broadcast() || report.node.raw() == 0 {
            return Some(InvalidReason::BadNodeId);
        }
        if report.records.iter().any(|r| r.node != report.node) {
            return Some(InvalidReason::ForeignRecords);
        }
        if let Some(status) = &report.status {
            if status.node != report.node {
                return Some(InvalidReason::ForeignStatus);
            }
        }
        if report
            .records
            .iter()
            .any(|r| r.timestamp_ms > report.generated_at_ms + SKEW_TOLERANCE_MS)
        {
            return Some(InvalidReason::TimeTravel);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loramon_core::PacketRecord;
    use loramon_mesh::{Direction, PacketType};

    fn record(node: u16, ts: u64) -> PacketRecord {
        PacketRecord {
            seq: 0,
            timestamp_ms: ts,
            direction: Direction::Out,
            node: NodeId(node),
            counterpart: NodeId(2),
            ptype: PacketType::Data,
            origin: NodeId(node),
            final_dst: NodeId(2),
            packet_id: 1,
            ttl: 10,
            size_bytes: 20,
            rssi_dbm: None,
            snr_db: None,
        }
    }

    fn report(node: u16, seq: u32) -> Report {
        Report {
            node: NodeId(node),
            report_seq: seq,
            generated_at_ms: 60_000,
            dropped_records: 0,
            status: None,
            records: vec![record(node, 10_000)],
        }
    }

    #[test]
    fn accept_then_duplicate() {
        let mut ing = Ingestor::new();
        assert_eq!(
            ing.offer(&report(1, 0)),
            IngestOutcome::Accepted { records: 1 }
        );
        assert_eq!(ing.offer(&report(1, 0)), IngestOutcome::Duplicate);
        // Same seq from another node is fine.
        assert!(matches!(
            ing.offer(&report(2, 0)),
            IngestOutcome::Accepted { .. }
        ));
        let s = ing.stats();
        assert_eq!(
            (s.accepted, s.duplicates, s.invalid, s.records),
            (2, 1, 0, 2)
        );
    }

    #[test]
    fn broadcast_and_zero_node_rejected() {
        let mut ing = Ingestor::new();
        assert_eq!(
            ing.offer(&report(0xFFFF, 0)),
            IngestOutcome::Invalid(InvalidReason::BadNodeId)
        );
        assert_eq!(
            ing.offer(&report(0, 0)),
            IngestOutcome::Invalid(InvalidReason::BadNodeId)
        );
    }

    #[test]
    fn foreign_records_rejected() {
        let mut ing = Ingestor::new();
        let mut r = report(1, 0);
        r.records.push(record(2, 10_000));
        assert_eq!(
            ing.offer(&r),
            IngestOutcome::Invalid(InvalidReason::ForeignRecords)
        );
    }

    #[test]
    fn foreign_status_rejected() {
        let mut ing = Ingestor::new();
        let mut r = report(1, 0);
        r.status = Some(loramon_core::NodeStatus {
            node: NodeId(2),
            uptime_ms: 0,
            battery_percent: 100,
            queue_len: 0,
            duty_cycle_utilization: 0.0,
            mesh: Default::default(),
            routes: vec![],
        });
        assert_eq!(
            ing.offer(&r),
            IngestOutcome::Invalid(InvalidReason::ForeignStatus)
        );
    }

    #[test]
    fn future_records_rejected_beyond_tolerance() {
        let mut ing = Ingestor::new();
        let mut r = report(1, 0);
        r.records[0].timestamp_ms = r.generated_at_ms + SKEW_TOLERANCE_MS + 1;
        assert_eq!(
            ing.offer(&r),
            IngestOutcome::Invalid(InvalidReason::TimeTravel)
        );
        // Within tolerance passes.
        let mut ok = report(1, 1);
        ok.records[0].timestamp_ms = ok.generated_at_ms + SKEW_TOLERANCE_MS;
        assert!(matches!(ing.offer(&ok), IngestOutcome::Accepted { .. }));
    }

    #[test]
    fn invalid_reports_do_not_burn_the_seq() {
        let mut ing = Ingestor::new();
        let mut bad = report(1, 0);
        bad.records.push(record(2, 10_000));
        let _ = ing.offer(&bad);
        // A corrected retransmission of the same seq is accepted.
        assert!(matches!(
            ing.offer(&report(1, 0)),
            IngestOutcome::Accepted { .. }
        ));
    }

    #[test]
    fn acked_report_retransmit_is_suppressed() {
        // The ack can be lost even when the report got through; the
        // client then retransmits a report the server already stored.
        let mut ing = Ingestor::new();
        assert!(matches!(
            ing.offer(&report(1, 4)),
            IngestOutcome::Accepted { .. }
        ));
        for _ in 0..3 {
            assert_eq!(ing.offer(&report(1, 4)), IngestOutcome::Duplicate);
        }
        let s = ing.stats();
        assert_eq!((s.accepted, s.duplicates), (1, 3));
    }

    #[test]
    fn same_report_in_band_and_out_of_band_counts_once() {
        // A gateway-relayed (in-band) copy and a WiFi (out-of-band)
        // copy of the same report are byte-identical; the second one to
        // arrive is a duplicate regardless of path.
        let mut ing = Ingestor::new();
        let r = report(7, 0);
        assert!(matches!(ing.offer(&r), IngestOutcome::Accepted { .. }));
        assert_eq!(ing.offer(&r), IngestOutcome::Duplicate);
        assert_eq!(ing.stats().records, 1);
    }

    #[test]
    fn reboot_seq_reset_is_accepted_not_duplicate() {
        let mut ing = Ingestor::new();
        let mut first = report(1, 0);
        first.generated_at_ms = 30_000;
        first.records[0].timestamp_ms = 10_000;
        let mut second = report(1, 1);
        second.generated_at_ms = 60_000;
        second.records[0].timestamp_ms = 40_000;
        assert!(matches!(ing.offer(&first), IngestOutcome::Accepted { .. }));
        assert!(matches!(ing.offer(&second), IngestOutcome::Accepted { .. }));
        // Crash, reboot: the counter restarts at 0 with a newer
        // generation time. Not a duplicate, not time travel.
        let mut rebooted = report(1, 0);
        rebooted.generated_at_ms = 120_000;
        rebooted.records[0].timestamp_ms = 110_000;
        assert!(matches!(
            ing.offer(&rebooted),
            IngestOutcome::Accepted { .. }
        ));
        let s = ing.stats();
        assert_eq!((s.accepted, s.duplicates, s.invalid), (3, 0, 0));
        assert_eq!(s.restarts, 1);
        // And a retransmit of the *rebooted* seq 0 is still a duplicate.
        assert_eq!(ing.offer(&rebooted), IngestOutcome::Duplicate);
    }

    #[test]
    fn late_retries_are_counted() {
        let mut ing = Ingestor::new();
        assert!(matches!(
            ing.offer(&report(1, 0)),
            IngestOutcome::Accepted { .. }
        ));
        let mut ahead = report(1, 3);
        ahead.generated_at_ms = 90_000;
        ahead.records[0].timestamp_ms = 80_000;
        assert!(matches!(ing.offer(&ahead), IngestOutcome::Accepted { .. }));
        // Seqs 1 and 2 were lost and finally land on retry, behind
        // newer data.
        for seq in [1u32, 2] {
            let mut late = report(1, seq);
            late.generated_at_ms = 60_000 + 1_000 * u64::from(seq);
            assert!(matches!(ing.offer(&late), IngestOutcome::Accepted { .. }));
        }
        let s = ing.stats();
        assert_eq!((s.accepted, s.late_reports), (4, 2));
        // Duplicates of the late reports do not recount.
        let mut dup = report(1, 1);
        dup.generated_at_ms = 61_000;
        assert_eq!(ing.offer(&dup), IngestOutcome::Duplicate);
        assert_eq!(ing.stats().late_reports, 2);
    }

    #[test]
    fn reason_messages() {
        assert!(InvalidReason::TimeTravel.to_string().contains("newer"));
        assert!(InvalidReason::BadNodeId.to_string().contains("reserved"));
    }
}
