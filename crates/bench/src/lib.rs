//! # loramon-bench
//!
//! The benchmark harness: one target per reconstructed table/figure of
//! the paper's evaluation (see `EXPERIMENTS.md` at the workspace root),
//! plus micro-benchmarks of the hot paths.
//!
//! | target                | regenerates |
//! |-----------------------|-------------|
//! | `report_overhead`     | R-Tab-2     |
//! | `server_ingest`       | R-Tab-3     |
//! | `pdr_sweep`           | R-Fig-5     |
//! | `monitoring_overhead` | R-Fig-6     |
//! | `scalability`         | R-Fig-8     |
//! | `micro`               | hot paths   |
//!
//! All are run with `cargo bench -p loramon-bench`.
