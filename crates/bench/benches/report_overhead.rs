//! R-Tab-2: monitoring report size and encoding cost vs batch size.
//!
//! Prints the size table the paper's evaluation would show (uplink bytes
//! per report as a function of how many packet records are batched), and
//! measures encode/decode throughput for both wire formats with
//! Criterion.
//!
//! ```sh
//! cargo bench -p loramon-bench --bench report_overhead
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use loramon_core::{PacketRecord, Report};
use loramon_mesh::{Direction, PacketType};
use loramon_sim::NodeId;
use std::hint::black_box;

fn record(i: u64) -> PacketRecord {
    PacketRecord {
        seq: i,
        timestamp_ms: 30_000 + i * 250,
        direction: if i.is_multiple_of(2) {
            Direction::In
        } else {
            Direction::Out
        },
        node: NodeId(1),
        counterpart: NodeId(2),
        ptype: PacketType::Data,
        origin: NodeId(2),
        final_dst: NodeId(1),
        packet_id: i as u16,
        ttl: 7,
        size_bytes: 42,
        rssi_dbm: i.is_multiple_of(2).then_some(-96.5),
        snr_db: i.is_multiple_of(2).then_some(4.25),
    }
}

fn report(records: usize) -> Report {
    Report {
        node: NodeId(1),
        report_seq: 1,
        generated_at_ms: 60_000,
        dropped_records: 0,
        status: None,
        records: (0..records as u64).map(record).collect(),
    }
}

fn print_size_table() {
    println!("\nR-Tab-2: report size vs batch size");
    println!("records | JSON bytes | binary bytes | JSON/binary");
    for n in [0usize, 1, 5, 10, 25, 50, 100] {
        let r = report(n);
        let json = r.encode_json().len();
        let bin = r.encode_binary().len();
        println!(
            "{n:>7} | {json:>10} | {bin:>12} | {:.1}x",
            json as f64 / bin as f64
        );
    }
    println!();
}

fn bench_encoding(c: &mut Criterion) {
    print_size_table();

    let mut group = c.benchmark_group("report_encode");
    for n in [1usize, 10, 50] {
        let r = report(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("json", n), &r, |b, r| {
            b.iter(|| black_box(r.encode_json()));
        });
        group.bench_with_input(BenchmarkId::new("binary", n), &r, |b, r| {
            b.iter(|| black_box(r.encode_binary()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("report_decode");
    for n in [1usize, 10, 50] {
        let r = report(n);
        let json = r.encode_json();
        let bin = r.encode_binary();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("json", n), &json, |b, bytes| {
            b.iter(|| black_box(Report::decode_json(bytes).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("binary", n), &bin, |b, bytes| {
            b.iter(|| black_box(Report::decode_binary(bytes).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encoding);
criterion_main!(benches);
