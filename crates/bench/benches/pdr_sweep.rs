//! R-Fig-5: packet delivery ratio vs distance and spreading factor.
//!
//! The mesh-characterisation figure: for each SF, a transmitter sends a
//! fixed number of frames to a receiver at increasing distance; the
//! delivery ratio traces out the cell edge. Higher SFs extend range at
//! the cost of airtime — the expected family of shifted sigmoid curves.
//!
//! This is a figure-generation harness (prints the series), not a timing
//! benchmark, hence `harness = false` with a plain `main`.
//!
//! ```sh
//! cargo bench -p loramon-bench --bench pdr_sweep
//! ```

use bytes::Bytes;
use loramon_phy::{Bandwidth, CodingRate, Position, RadioConfig, SpreadingFactor};
use loramon_sim::{Application, Context, IdleApp, SimBuilder, TraceLevel};
use std::any::Any;
use std::time::Duration;

/// Sends `count` frames, one per second.
struct Blaster {
    count: u32,
    sent: u32,
}

impl Application for Blaster {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(Duration::from_secs(1), 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _timer: u64) {
        if self.sent < self.count {
            self.sent += 1;
            ctx.transmit(Bytes::from_static(&[0u8; 20]));
            ctx.set_timer(Duration::from_secs(1), 0);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Deliveries / transmissions for one (SF, distance) cell, averaged over
/// `seeds` independent channel realizations.
fn pdr(sf: SpreadingFactor, distance_m: f64, frames: u32, seeds: u64) -> f64 {
    let mut total_tx = 0usize;
    let mut total_rx = 0usize;
    for seed in 0..seeds {
        let mut sim = SimBuilder::new()
            .seed(0xF16_5000 + seed)
            .trace_level(TraceLevel::Normal)
            .duty_cycle(1.0)
            .build();
        let cfg = RadioConfig::new(sf, Bandwidth::Khz125, CodingRate::Cr4_5);
        let tx = sim.add_node(
            Position::new(0.0, 0.0),
            cfg,
            Box::new(Blaster {
                count: frames,
                sent: 0,
            }),
        );
        let rx = sim.add_node(
            Position::new(distance_m, 0.0),
            cfg,
            Box::new(IdleApp::default()),
        );
        sim.run_for(Duration::from_secs(u64::from(frames) + 10));
        total_tx += sim.trace().transmissions(Some(tx));
        total_rx += sim.trace().deliveries(Some(rx));
    }
    total_rx as f64 / total_tx.max(1) as f64
}

fn main() {
    // Criterion-style CLI args (e.g. --bench) are accepted and ignored.
    let frames = 60;
    let seeds = 8;
    let distances: Vec<f64> = (1..=14).map(|i| f64::from(i) * 400.0).collect();
    let sfs = [
        SpreadingFactor::Sf7,
        SpreadingFactor::Sf9,
        SpreadingFactor::Sf12,
    ];

    println!("R-Fig-5: PDR vs distance and spreading factor");
    println!("(suburban log-distance, 14 dBm, {frames} frames x {seeds} channel draws per cell)\n");
    print!("{:>9}", "dist (m)");
    for sf in sfs {
        print!(" {:>7}", sf.to_string());
    }
    println!();
    let mut crossover: Vec<(SpreadingFactor, f64)> = Vec::new();
    for &d in &distances {
        print!("{d:>9.0}");
        for sf in sfs {
            let p = pdr(sf, d, frames, seeds);
            print!(" {:>6.1}%", p * 100.0);
            if p < 0.5 && !crossover.iter().any(|(s, _)| *s == sf) {
                crossover.push((sf, d));
            }
        }
        println!();
    }
    println!("\n50% crossover distances:");
    for (sf, d) in &crossover {
        println!("  {sf}: < {d:.0} m");
    }
    println!(
        "\nExpected shape: each SF holds PDR near 1.0 until its cell edge,\n\
         then falls off; SF12's edge lies well beyond SF7's (~2.5 dB of\n\
         budget per SF step, i.e. ~1.2x range per step at n = 2.9)."
    );
}
