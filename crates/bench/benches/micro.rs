//! Micro-benchmarks of the hot paths: airtime math, packet codec,
//! routing-table updates, collision evaluation, RNG, and raw simulator
//! event throughput.
//!
//! ```sh
//! cargo bench -p loramon-bench --bench micro
//! ```

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use loramon_mesh::{Packet, RouteEntry, RoutingTable};
use loramon_phy::collision::{CollisionModel, Interferer};
use loramon_phy::Position;
use loramon_phy::{airtime, RadioConfig};
use loramon_sim::{IdleApp, NodeId, Rng, SimBuilder, SimTime};
use std::hint::black_box;
use std::time::Duration;

fn bench_airtime(c: &mut Criterion) {
    let cfg = RadioConfig::mesher_default();
    c.bench_function("airtime/time_on_air_20B", |b| {
        b.iter(|| black_box(airtime::time_on_air(black_box(&cfg), black_box(20))));
    });
}

fn bench_packet_codec(c: &mut Criterion) {
    let routing = Packet::routing(
        NodeId(1),
        7,
        (2..30)
            .map(|i| RouteEntry {
                address: NodeId(i),
                metric: (i % 5) as u8 + 1,
                via: NodeId(i % 3 + 2),
            })
            .collect(),
    );
    let data = Packet::data(
        NodeId(2),
        NodeId(1),
        NodeId(1),
        NodeId(9),
        7,
        8,
        0,
        1,
        0,
        Bytes::from_static(&[0u8; 64]),
    );
    let routing_bytes = routing.encode();
    let data_bytes = data.encode();

    c.bench_function("packet/encode_routing_28_entries", |b| {
        b.iter(|| black_box(routing.encode()));
    });
    c.bench_function("packet/decode_routing_28_entries", |b| {
        b.iter(|| black_box(Packet::decode(&routing_bytes).unwrap()));
    });
    c.bench_function("packet/encode_data_64B", |b| {
        b.iter(|| black_box(data.encode()));
    });
    c.bench_function("packet/decode_data_64B", |b| {
        b.iter(|| black_box(Packet::decode(&data_bytes).unwrap()));
    });
}

fn bench_routing_table(c: &mut Criterion) {
    let entries: Vec<RouteEntry> = (3..40)
        .map(|i| RouteEntry {
            address: NodeId(i),
            metric: (i % 6) as u8 + 1,
            via: NodeId(i % 4 + 3),
        })
        .collect();
    c.bench_function("routing/apply_broadcast_37_entries", |b| {
        b.iter_batched(
            RoutingTable::new,
            |mut rt| {
                rt.apply_broadcast(
                    NodeId(1),
                    NodeId(2),
                    &entries,
                    -90.0,
                    5.0,
                    SimTime::from_secs(1),
                );
                black_box(rt.len())
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_collision(c: &mut Criterion) {
    let model = CollisionModel::default();
    let interferers: Vec<Interferer> = (0..8)
        .map(|i| Interferer {
            power_dbm: -95.0 - f64::from(i),
            same_sf: i % 2 == 0,
            overlaps_preamble: i % 3 == 0,
        })
        .collect();
    c.bench_function("collision/evaluate_8_interferers", |b| {
        b.iter(|| black_box(model.evaluate(black_box(-88.0), black_box(&interferers))));
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/gaussian", |b| {
        let mut rng = Rng::new(1);
        b.iter(|| black_box(rng.gaussian()));
    });
    c.bench_function("rng/derive", |b| {
        b.iter(|| black_box(Rng::derive(7, &[1, 2, 3]).next_u64()));
    });
}

fn bench_sim_events(c: &mut Criterion) {
    // Raw simulator throughput: a 10-node idle network timer-stepped for
    // a simulated minute (timers only — measures queue + dispatch cost).
    c.bench_function("sim/10_nodes_60s_idle", |b| {
        b.iter_batched(
            || {
                let mut sim = SimBuilder::new().seed(3).build();
                let cfg = RadioConfig::mesher_default();
                for i in 0..10 {
                    sim.add_node(
                        Position::new(f64::from(i) * 100.0, 0.0),
                        cfg,
                        Box::new(IdleApp::default()),
                    );
                }
                sim
            },
            |mut sim| {
                sim.run_for(Duration::from_secs(60));
                black_box(sim.now())
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_airtime,
    bench_packet_codec,
    bench_routing_table,
    bench_collision,
    bench_rng,
    bench_sim_events
);
criterion_main!(benches);
