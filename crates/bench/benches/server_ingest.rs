//! R-Tab-3: server ingestion and query throughput.
//!
//! How many reports/records per second can one server instance absorb,
//! and how fast are the dashboard queries over a populated store?
//!
//! ```sh
//! cargo bench -p loramon-bench --bench server_ingest
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use loramon_core::{PacketRecord, Report};
use loramon_mesh::{Direction, PacketType};
use loramon_server::{MonitorServer, ServerConfig, Window};
use loramon_sim::{NodeId, SimTime};
use std::hint::black_box;
use std::time::Duration;

fn record(node: u16, i: u64) -> PacketRecord {
    PacketRecord {
        seq: i,
        timestamp_ms: i * 200,
        direction: if i.is_multiple_of(2) {
            Direction::In
        } else {
            Direction::Out
        },
        node: NodeId(node),
        counterpart: NodeId(node % 8 + 1),
        ptype: match i % 3 {
            0 => PacketType::Routing,
            1 => PacketType::Data,
            _ => PacketType::Ack,
        },
        origin: NodeId(node % 8 + 1),
        final_dst: NodeId(node),
        packet_id: i as u16,
        ttl: 5,
        size_bytes: 40,
        rssi_dbm: i.is_multiple_of(2).then_some(-90.0 - (i % 30) as f64),
        snr_db: i.is_multiple_of(2).then_some(5.0),
    }
}

fn report(node: u16, seq: u32, records: usize) -> Report {
    Report {
        node: NodeId(node),
        report_seq: seq,
        generated_at_ms: u64::from(seq + 1) * 30_000,
        dropped_records: 0,
        status: None,
        records: (0..records as u64)
            .map(|i| record(node, u64::from(seq) * records as u64 + i))
            .collect(),
    }
}

/// A server preloaded with `nodes × reports × records_per` records.
fn populated(nodes: u16, reports: u32, records_per: usize) -> MonitorServer {
    let server = MonitorServer::new(ServerConfig::default());
    for node in 1..=nodes {
        for seq in 0..reports {
            server.ingest(
                &report(node, seq, records_per),
                SimTime::from_millis(u64::from(seq + 1) * 30_000 + u64::from(node)),
            );
        }
    }
    server
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest");
    for records_per in [1usize, 10, 50] {
        // 20 reports per iteration.
        group.throughput(Throughput::Elements(20 * records_per as u64));
        group.bench_with_input(
            BenchmarkId::new("records_per_report", records_per),
            &records_per,
            |b, &n| {
                b.iter_batched(
                    || MonitorServer::new(ServerConfig::default()),
                    |server| {
                        for seq in 0..20u32 {
                            server.ingest(
                                &report(1, seq, n),
                                SimTime::from_millis(u64::from(seq) * 30_000),
                            );
                        }
                        black_box(server.total_records())
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    // 8 nodes × 25 reports × 50 records = 10 000 records.
    let server = populated(8, 25, 50);
    println!(
        "\nR-Tab-3 query corpus: {} records across {} nodes\n",
        server.total_records(),
        server.node_ids().len()
    );

    let mut group = c.benchmark_group("query");
    group.bench_function("series_60s_buckets", |b| {
        b.iter(|| black_box(server.series(None, None, Window::all(), Duration::from_secs(60))));
    });
    group.bench_function("link_stats", |b| {
        b.iter(|| black_box(server.link_stats(Window::all())));
    });
    group.bench_function("link_deliveries", |b| {
        b.iter(|| black_box(server.link_deliveries(Window::all())));
    });
    group.bench_function("end_to_end", |b| {
        b.iter(|| black_box(server.end_to_end(Window::all())));
    });
    group.bench_function("topology", |b| {
        b.iter(|| black_box(server.topology(Window::all())));
    });
    group.bench_function("node_summaries", |b| {
        b.iter(|| black_box(server.node_summaries()));
    });
    group.bench_function("rssi_histogram", |b| {
        b.iter(|| black_box(server.rssi_histogram(None, Window::all(), 2.0)));
    });
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_queries);
criterion_main!(benches);
