//! R-Tab-3: server ingestion and query throughput.
//!
//! How many reports/records per second can one server instance absorb,
//! and how fast are the dashboard queries over a populated store?
//!
//! ```sh
//! cargo bench -p loramon-bench --bench server_ingest
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use loramon_core::{PacketRecord, Report};
use loramon_mesh::{Direction, PacketType};
use loramon_server::{MonitorServer, ServerConfig, Window};
use loramon_sim::{NodeId, SimTime};
use std::hint::black_box;
use std::time::Duration;

fn record(node: u16, i: u64) -> PacketRecord {
    PacketRecord {
        seq: i,
        timestamp_ms: i * 200,
        direction: if i.is_multiple_of(2) {
            Direction::In
        } else {
            Direction::Out
        },
        node: NodeId(node),
        counterpart: NodeId(node % 8 + 1),
        ptype: match i % 3 {
            0 => PacketType::Routing,
            1 => PacketType::Data,
            _ => PacketType::Ack,
        },
        origin: NodeId(node % 8 + 1),
        final_dst: NodeId(node),
        packet_id: i as u16,
        ttl: 5,
        size_bytes: 40,
        rssi_dbm: i.is_multiple_of(2).then_some(-90.0 - (i % 30) as f64),
        snr_db: i.is_multiple_of(2).then_some(5.0),
    }
}

fn report(node: u16, seq: u32, records: usize) -> Report {
    Report {
        node: NodeId(node),
        report_seq: seq,
        generated_at_ms: u64::from(seq + 1) * 30_000,
        dropped_records: 0,
        status: None,
        records: (0..records as u64)
            .map(|i| record(node, u64::from(seq) * records as u64 + i))
            .collect(),
    }
}

/// A server preloaded with `nodes × reports × records_per` records.
fn populated(nodes: u16, reports: u32, records_per: usize) -> MonitorServer {
    let server = MonitorServer::new(ServerConfig::default());
    for node in 1..=nodes {
        for seq in 0..reports {
            server.ingest(
                &report(node, seq, records_per),
                SimTime::from_millis(u64::from(seq + 1) * 30_000 + u64::from(node)),
            );
        }
    }
    server
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest");
    for records_per in [1usize, 10, 50] {
        // 20 reports per iteration.
        group.throughput(Throughput::Elements(20 * records_per as u64));
        group.bench_with_input(
            BenchmarkId::new("records_per_report", records_per),
            &records_per,
            |b, &n| {
                b.iter_batched(
                    || MonitorServer::new(ServerConfig::default()),
                    |server| {
                        for seq in 0..20u32 {
                            server.ingest(
                                &report(1, seq, n),
                                SimTime::from_millis(u64::from(seq) * 30_000),
                            );
                        }
                        black_box(server.total_records())
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    // 8 nodes × 25 reports × 50 records = 10 000 records.
    let server = populated(8, 25, 50);
    println!(
        "\nR-Tab-3 query corpus: {} records across {} nodes\n",
        server.total_records(),
        server.node_ids().len()
    );

    let mut group = c.benchmark_group("query");
    group.bench_function("series_60s_buckets", |b| {
        b.iter(|| black_box(server.series(None, None, Window::all(), Duration::from_secs(60))));
    });
    group.bench_function("link_stats", |b| {
        b.iter(|| black_box(server.link_stats(Window::all())));
    });
    group.bench_function("link_deliveries", |b| {
        b.iter(|| black_box(server.link_deliveries(Window::all())));
    });
    group.bench_function("end_to_end", |b| {
        b.iter(|| black_box(server.end_to_end(Window::all())));
    });
    group.bench_function("topology", |b| {
        b.iter(|| black_box(server.topology(Window::all())));
    });
    group.bench_function("node_summaries", |b| {
        b.iter(|| black_box(server.node_summaries()));
    });
    group.bench_function("rssi_histogram", |b| {
        b.iter(|| black_box(server.rssi_histogram(None, Window::all(), 2.0)));
    });
    group.finish();
}

/// A server preloaded for the query hot-path benchmark: `records_per_node`
/// records per node at a 200 ms cadence (a ~5.6 h capture span for the
/// default 100 000), shipped in 500-record reports whose generation time
/// trails the newest record so validation accepts them.
fn query_corpus(nodes: u16, records_per_node: u64) -> MonitorServer {
    const REPORT_LEN: u64 = 500;
    const CADENCE_MS: u64 = 200;
    let server = MonitorServer::new(ServerConfig::default());
    for node in 1..=nodes {
        for seq in 0..records_per_node.div_ceil(REPORT_LEN) {
            let lo = seq * REPORT_LEN;
            let hi = (lo + REPORT_LEN).min(records_per_node);
            let generated_at_ms = hi * CADENCE_MS;
            let report = Report {
                node: NodeId(node),
                report_seq: seq as u32,
                generated_at_ms,
                dropped_records: 0,
                status: None,
                records: (lo..hi).map(|i| record(node, i)).collect(),
            };
            let outcome = server.ingest(
                &report,
                SimTime::from_millis(generated_at_ms + u64::from(node)),
            );
            assert!(
                matches!(outcome, loramon_server::IngestOutcome::Accepted { .. }),
                "corpus report rejected: {outcome:?}"
            );
        }
    }
    server
}

/// Best-of-N wall time of one call, in nanoseconds.
fn best_ns<R>(warmup: u32, iters: u32, mut f: impl FnMut() -> R) -> u64 {
    for _ in 0..warmup {
        black_box(f());
    }
    let mut best = u64::MAX;
    for _ in 0..iters {
        let t = std::time::Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_nanos() as u64);
    }
    best
}

/// R-Tab-5: the indexed query engine vs the `query::naive` full-scan
/// oracle on a 100 000-records-per-node corpus.
///
/// Every measured pair is first checked for equal answers, then timed
/// best-of-N, and the results land in `BENCH_query.json` at the
/// workspace root (machine-readable, one entry per query plus the
/// headline 1 h-window speedup). `LORAMON_QUERY_BENCH=fast` shrinks the
/// node count and iteration count for CI smoke runs without changing
/// the per-node corpus size.
fn bench_query_hotpath(_c: &mut Criterion) {
    use loramon_server::query::{self, naive};

    let fast = std::env::var("LORAMON_QUERY_BENCH").is_ok_and(|v| v == "fast");
    let (nodes, warmup, iters) = if fast { (2u16, 1u32, 3u32) } else { (4, 3, 15) };
    const RECORDS_PER_NODE: u64 = 100_000;

    let server = query_corpus(nodes, RECORDS_PER_NODE);
    let span_end = SimTime::from_millis(RECORDS_PER_NODE * 200);
    let hour = Window::last(Duration::from_secs(3600), span_end);
    let all = Window::all();
    let bucket = Duration::from_secs(60);
    println!(
        "\nR-Tab-5 query corpus: {} records across {} nodes ({})\n",
        server.total_records(),
        server.node_ids().len(),
        if fast { "fast mode" } else { "full mode" },
    );

    // Correctness first: the indexed engine must agree with the oracle
    // on exactly the workloads being timed.
    server.with_store(|store| {
        for &(name, w) in &[("1h", hour), ("all", all)] {
            let idx = query::packets_over_time(store, None, None, w, bucket);
            let naive = naive::packets_over_time(store, None, None, w, bucket);
            assert_eq!(idx, naive, "series({name}) disagrees with oracle");

            let idx = query::type_breakdown(store, None, w);
            let naive = naive::type_breakdown(store, None, w);
            assert_eq!(idx, naive, "type_breakdown({name}) disagrees with oracle");

            let idx = query::link_stats(store, w);
            let naive = naive::link_stats(store, w);
            assert_eq!(idx.len(), naive.len(), "link_stats({name}) cardinality");
            for (a, b) in idx.iter().zip(&naive) {
                assert_eq!((a.from, a.to, a.packets), (b.from, b.to, b.packets));
                assert!((a.mean_rssi_dbm - b.mean_rssi_dbm).abs() < 1e-9);
                assert!((a.mean_snr_db - b.mean_snr_db).abs() < 1e-9);
            }
        }
    });

    // Timing: both engines run under the same `with_store` access path
    // so only the query algorithm differs.
    let mut rows: Vec<serde_json::Value> = Vec::new();
    let mut speedup_1h = f64::INFINITY;
    let mut time_pair = |name: &str, indexed_ns: u64, naive_ns: u64| {
        let speedup = naive_ns as f64 / indexed_ns.max(1) as f64;
        println!(
            "{name:<24} indexed {indexed_ns:>12} ns   naive {naive_ns:>12} ns   speedup {speedup:>8.1}x"
        );
        rows.push(serde_json::json!({
            "query": name,
            "indexed_ns": indexed_ns,
            "naive_ns": naive_ns,
            "speedup": speedup,
        }));
        speedup
    };

    for &(label, w) in &[("1h", hour), ("all", all)] {
        let s = time_pair(
            &format!("series_60s_{label}"),
            best_ns(warmup, iters, || {
                server.with_store(|st| query::packets_over_time(st, None, None, w, bucket))
            }),
            best_ns(warmup, iters, || {
                server.with_store(|st| naive::packets_over_time(st, None, None, w, bucket))
            }),
        );
        let l = time_pair(
            &format!("link_stats_{label}"),
            best_ns(warmup, iters, || {
                server.with_store(|st| query::link_stats(st, w))
            }),
            best_ns(warmup, iters, || {
                server.with_store(|st| naive::link_stats(st, w))
            }),
        );
        let t = time_pair(
            &format!("type_breakdown_{label}"),
            best_ns(warmup, iters, || {
                server.with_store(|st| query::type_breakdown(st, None, w))
            }),
            best_ns(warmup, iters, || {
                server.with_store(|st| naive::type_breakdown(st, None, w))
            }),
        );
        if label == "1h" {
            speedup_1h = s.min(l).min(t);
        }
    }

    let out = serde_json::json!({
        "bench": "query_hotpath",
        "records_per_node": RECORDS_PER_NODE,
        "nodes": nodes,
        "mode": if fast { "fast" } else { "full" },
        "speedup_1h": speedup_1h,
        "queries": rows,
    });
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_query.json");
    std::fs::write(&path, out.to_string()).expect("write BENCH_query.json");
    println!("\nBENCH_query.json written: 1h-window speedup {speedup_1h:.1}x\n");
}

criterion_group!(benches, bench_ingest, bench_queries, bench_query_hotpath);
criterion_main!(benches);
