//! R-Fig-8: scalability with mesh size.
//!
//! Grows the network from 5 to 60 nodes on a fixed-density grid and
//! measures, per size: routing convergence (mean reachable destinations
//! per node), monitoring completeness, record volume at the server,
//! server ingest wall-time, and simulation wall-time.
//!
//! Figure-generation harness (prints the series).
//!
//! ```sh
//! cargo bench -p loramon-bench --bench scalability
//! ```

use loramon_core::{MonitorClient, MonitorConfig, UplinkModel};
use loramon_mesh::{MeshConfig, MeshNode, TrafficPattern};
use loramon_phy::RadioConfig;
use loramon_server::{MonitorServer, ServerConfig};
use loramon_sim::{placement, NodeId, SimBuilder, SimTime};
use std::time::{Duration, Instant};

struct Row {
    nodes: usize,
    sim_wall_ms: u128,
    ingest_wall_ms: u128,
    reports: usize,
    records: usize,
    completeness: f64,
    mean_reachable: f64,
    transmissions: u64,
}

fn run(n: usize) -> Row {
    let positions = placement::grid(n, 900.0);
    let gateway = NodeId(n as u16);
    let monitor = MonitorConfig::new();
    let mut sim = SimBuilder::new().seed(0x5CA1E + n as u64).build();
    let cfg = RadioConfig::mesher_default();
    let mut ids = Vec::new();
    for (i, &pos) in positions.iter().enumerate() {
        let mut node = MeshNode::with_observer(MeshConfig::fast(), MonitorClient::new(monitor));
        if i != n - 1 {
            node = node.with_traffic(TrafficPattern::to_gateway(
                gateway,
                Duration::from_secs(120),
                16,
            ));
        }
        ids.push(sim.add_node(pos, cfg, Box::new(node)));
    }

    let t0 = Instant::now();
    sim.run_for(Duration::from_secs(900));
    let sim_wall_ms = t0.elapsed().as_millis();

    // Reachability: mean routing-table size as a fraction of peers.
    let mut reach = 0usize;
    for &id in &ids {
        let node: &MeshNode<MonitorClient> = sim.app_as(id).unwrap();
        reach += node.routing_table().len();
    }
    let mean_reachable = reach as f64 / n as f64 / (n - 1).max(1) as f64;

    // Drain reports and ingest.
    let uplink = UplinkModel::perfect();
    let mut pending = Vec::new();
    for &id in &ids {
        let node = sim.app_as_mut::<MeshNode<MonitorClient>>(id).unwrap();
        for r in node.observer_mut().take_outbox() {
            pending.push((SimTime::from_millis(r.generated_at_ms), r));
        }
    }
    let delivered = uplink.deliver_all(pending);
    let reports = delivered.len();
    let server = MonitorServer::new(ServerConfig::default());
    let t1 = Instant::now();
    for (at, report) in delivered {
        server.ingest(&report, at);
    }
    let ingest_wall_ms = t1.elapsed().as_millis();

    let transmissions = sim.trace().transmissions(None) as u64;
    Row {
        nodes: n,
        sim_wall_ms,
        ingest_wall_ms,
        reports,
        records: server.total_records(),
        completeness: server.completeness(transmissions),
        mean_reachable,
        transmissions,
    }
}

fn main() {
    println!("R-Fig-8: scalability with mesh size (900 m grid, 15 simulated minutes)\n");
    println!("nodes | tx frames | reports | records | complete | reach | sim wall | ingest wall");
    println!("------|-----------|---------|---------|----------|-------|----------|------------");
    for n in [5usize, 10, 20, 40, 60] {
        let r = run(n);
        println!(
            "{:>5} | {:>9} | {:>7} | {:>7} | {:>7.1}% | {:>4.0}% | {:>6} ms | {:>8} ms",
            r.nodes,
            r.transmissions,
            r.reports,
            r.records,
            r.completeness * 100.0,
            r.mean_reachable * 100.0,
            r.sim_wall_ms,
            r.ingest_wall_ms
        );
    }
    println!(
        "\nExpected shape: reports and records grow linearly with node count;\n\
         completeness stays high (out-of-band uplink); reachability dips as\n\
         the duty-cycled routing plane saturates in larger meshes."
    );
}
