//! R-Fig-6: monitoring airtime overhead — out-of-band vs in-band
//! reporting, as a function of the report period.
//!
//! Figure-generation harness (prints the series).
//!
//! ```sh
//! cargo bench -p loramon-bench --bench monitoring_overhead
//! ```

use loramon_core::{MonitorConfig, UplinkModel};
use loramon_mesh::TrafficPattern;
use loramon_sim::SimTime;
use std::time::Duration;

// The scenario harness lives in the root `loramon` crate; the bench
// crate re-implements the minimal wiring to avoid a dependency cycle,
// using the same building blocks.
use loramon_core::MonitorClient;
use loramon_mesh::{MeshConfig, MeshNode};
use loramon_phy::{Position, RadioConfig};
use loramon_sim::{NodeId, SimBuilder};

struct RunOutcome {
    airtime_us: u64,
    reports_at_gateway: usize,
    data_frames: u64,
}

fn run(in_band: bool, period_s: u64) -> RunOutcome {
    let n = 4;
    let gateway = NodeId(n as u16);
    let mut monitor = MonitorConfig::new()
        .with_report_period(Duration::from_secs(period_s))
        .with_max_records(10);
    if in_band {
        monitor = monitor.with_in_band(gateway);
    }
    let mut sim = SimBuilder::new().seed(0x0E44).build();
    let cfg = RadioConfig::mesher_default();
    let mut ids = Vec::new();
    for i in 0..n {
        let mut node = MeshNode::with_observer(MeshConfig::fast(), MonitorClient::new(monitor));
        if i != n - 1 {
            node = node.with_traffic(TrafficPattern::to_gateway(
                gateway,
                Duration::from_secs(60),
                16,
            ));
        }
        ids.push(sim.add_node(Position::new(i as f64 * 800.0, 0.0), cfg, Box::new(node)));
    }
    sim.run_for(Duration::from_secs(1800));

    let mut airtime_us = 0;
    let mut data_frames = 0;
    for &id in &ids {
        airtime_us += sim.stats(id).airtime_us;
        let node: &MeshNode<MonitorClient> = sim.app_as(id).unwrap();
        data_frames += node.stats().data_sent;
    }
    // Reports that reached the server side: gateway-collected (in-band)
    // plus every node's own uplink outbox (out-of-band / gateway).
    let uplink = UplinkModel::perfect();
    let mut pending = Vec::new();
    for &id in &ids {
        let node = sim.app_as_mut::<MeshNode<MonitorClient>>(id).unwrap();
        let client = node.observer_mut();
        for r in client.take_outbox() {
            pending.push((SimTime::from_millis(r.generated_at_ms), r));
        }
        for (at, r) in client.take_collected() {
            pending.push((at, r));
        }
    }
    RunOutcome {
        airtime_us,
        reports_at_gateway: uplink.deliver_all(pending).len(),
        data_frames,
    }
}

fn main() {
    println!("R-Fig-6: monitoring airtime overhead (4-node line, 30 min, EU868 1% duty cycle)\n");
    println!("mode        | period | airtime (s) | data frames | reports | overhead");
    println!("------------|--------|-------------|-------------|---------|---------");
    let baseline = run(false, 30);
    println!(
        "out-of-band |   30 s | {:>11.2} | {:>11} | {:>7} | baseline",
        baseline.airtime_us as f64 / 1e6,
        baseline.data_frames,
        baseline.reports_at_gateway
    );
    for period in [240u64, 120, 60, 30] {
        let r = run(true, period);
        let overhead =
            (r.airtime_us as f64 - baseline.airtime_us as f64) / baseline.airtime_us as f64;
        println!(
            "in-band     | {:>4} s | {:>11.2} | {:>11} | {:>7} | {:>+7.1}%",
            period,
            r.airtime_us as f64 / 1e6,
            r.data_frames,
            r.reports_at_gateway,
            overhead * 100.0
        );
    }
    println!(
        "\nExpected shape: out-of-band monitoring costs no LoRa airtime;\n\
         in-band overhead grows as the report period shrinks, until the\n\
         duty cycle caps it — the paper's case for the IP uplink."
    );
}
