//! Ablation studies for the design choices called out in DESIGN.md.
//!
//! 1. **Routing link margin** — hop-count routing vs the same protocol
//!    with a 6 dB minimum link margin, on a topology with a marginal
//!    shortcut. Measures end-to-end delivery.
//! 2. **Record filter** — uplink bytes with full capture vs data-only.
//! 3. **Drop policy** — freshness of what survives an overloaded client
//!    buffer (oldest-drop vs newest-drop).
//!
//! Figure-generation harness (prints tables).
//!
//! ```sh
//! cargo bench -p loramon-bench --bench ablations
//! ```

use loramon::core::{DropPolicy, MonitorConfig, RecordFilter, UplinkModel};
use loramon::mesh::TrafficPattern;
use loramon::phy::{LogDistance, Position};
use loramon::scenario::{run_scenario, ScenarioConfig};
use loramon::server::Window;
use loramon::sim::NodeId;
use std::time::Duration;

fn main() {
    routing_margin_ablation();
    println!();
    record_filter_ablation();
    println!();
    drop_policy_ablation();
}

/// Diamond with a marginal direct shortcut: 1 – {2,3} – 4, where 1↔4 is
/// occasionally demodulable. Hop-count routing takes the bad shortcut;
/// margin-gated routing relays.
fn margin_scenario(margin_db: f64) -> ScenarioConfig {
    let positions = vec![
        Position::new(0.0, 0.0),
        Position::new(369.0, 240.0),
        Position::new(369.0, -240.0),
        Position::new(738.0, 0.0),
    ];
    let mut config = ScenarioConfig::new(positions, 3, 4242)
        .with_duration(Duration::from_secs(3600))
        .with_uplink(UplinkModel::perfect());
    // Obstructed campus, no shadowing: the 738 m diagonal sits ~0.5 dB
    // *below* SF7 sensitivity so only fading spikes demodulate it — a
    // textbook marginal shortcut. The 440 m legs have ~8 dB of margin.
    config.path_loss = LogDistance::new(30.0, 1.0, 3.8, 0.0);
    config.mesh = config.mesh.with_min_link_margin_db(margin_db);
    config.traffic = Some(
        TrafficPattern::to_gateway(config.gateway(), Duration::from_secs(30), 12)
            .with_start_delay(Duration::from_secs(120)),
    );
    config
}

fn routing_margin_ablation() {
    println!("Ablation 1: routing link margin (marginal-shortcut diamond, 1 h)");
    println!("margin | e2e delivery 1→4 | relays forwarded | weak-link rejections");
    println!("-------|------------------|------------------|---------------------");
    for margin in [0.0f64, 3.0, 6.0] {
        let result = run_scenario(&margin_scenario(margin));
        let e2e = result.server.end_to_end(Window::all());
        let pair = e2e
            .iter()
            .find(|e| e.origin == NodeId(1) && e.final_dst == NodeId(4));
        let (ratio, sent) = pair.map_or((0.0, 0), |e| (e.delivery_ratio(), e.sent));
        let forwarded: u64 = result
            .ground_truth
            .mesh_stats
            .values()
            .map(|s| s.forwarded)
            .sum();
        let rejections: u64 = result
            .ground_truth
            .mesh_stats
            .values()
            .map(|s| s.weak_link_rejections)
            .sum();
        println!(
            "{margin:>4} dB | {:>7.1}% of {sent:>3} | {forwarded:>16} | {rejections:>19}",
            ratio * 100.0
        );
    }
    println!(
        "Expected shape: with no margin the origin sometimes prefers the\n\
         marginal 1-hop shortcut (lower delivery); a 6 dB margin forces the\n\
         solid 2-hop path (higher delivery, more forwarding)."
    );
}

fn filter_run(filter: RecordFilter) -> (u64, usize) {
    let monitor = MonitorConfig::new().with_filter(filter);
    let config = ScenarioConfig::line(4, 700.0, 909)
        .with_duration(Duration::from_secs(1800))
        .with_monitor(monitor)
        .with_uplink(UplinkModel::perfect());
    let result = run_scenario(&config);
    let records: u64 = result
        .server
        .node_summaries()
        .iter()
        .map(|s| s.records)
        .sum();
    // Approximate uplink bytes: reports × fixed overhead + records × ~184 B.
    let reports: u64 = result
        .server
        .node_summaries()
        .iter()
        .map(|s| s.reports)
        .sum();
    let approx_bytes = reports as usize * 96 + records as usize * 184;
    (records, approx_bytes)
}

fn record_filter_ablation() {
    println!("Ablation 2: record filter (4-node line, 30 min, JSON uplink)");
    println!("filter     | records at server | approx uplink bytes");
    println!("-----------|-------------------|--------------------");
    let (all_records, all_bytes) = filter_run(RecordFilter::all());
    println!("everything | {all_records:>17} | {all_bytes:>18}");
    let (data_records, data_bytes) = filter_run(RecordFilter::data_only());
    println!("data-only  | {data_records:>17} | {data_bytes:>18}");
    println!(
        "Expected shape: routing beacons dominate a quiet mesh, so the\n\
         data-only filter cuts record volume severalfold — at the price of\n\
         losing the links/topology view (no routing packets to infer from)."
    );
}

fn drop_policy_ablation() {
    println!("Ablation 3: drop policy under client overload (buffer 16, period 120 s)");
    println!("policy | records kept | dropped | mean record age at report (s)");
    println!("-------|--------------|---------|------------------------------");
    for (label, policy) in [
        ("oldest", DropPolicy::Oldest),
        ("newest", DropPolicy::Newest),
    ] {
        let mut monitor = MonitorConfig::new()
            .with_report_period(Duration::from_secs(120))
            .with_buffer_capacity(16)
            .with_max_records(16);
        monitor.drop_policy = policy;
        let mut config = ScenarioConfig::line(3, 500.0, 808)
            .with_duration(Duration::from_secs(1800))
            .with_monitor(monitor)
            .with_uplink(UplinkModel::perfect());
        config.server.archive = true;
        let result = run_scenario(&config);
        let entries = result.server.archive_entries();
        let mut ages = Vec::new();
        for e in &entries {
            for r in &e.report.records {
                ages.push(e.report.generated_at_ms.saturating_sub(r.timestamp_ms) as f64 / 1000.0);
            }
        }
        let kept = ages.len();
        let dropped: u64 = result.client_stats.iter().map(|c| c.dropped).sum();
        let mean_age = if kept > 0 {
            ages.iter().sum::<f64>() / kept as f64
        } else {
            0.0
        };
        println!("{label:>6} | {kept:>12} | {dropped:>7} | {mean_age:>28.1}");
    }
    println!(
        "Expected shape: equal drop counts (same load), but oldest-drop\n\
         reports fresh records (low age) while newest-drop preserves the\n\
         start of each interval (high age)."
    );
}
