//! Distance-vector routing table.
//!
//! LoRaMesher-style: every node periodically broadcasts its table; a
//! receiver adopts routes through the sender when they are new or strictly
//! better, refreshes timestamps on equal routes, and expires entries not
//! refreshed within the timeout. The metric is hop count.

use loramon_sim::{NodeId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// One advertised route, as carried in routing packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteEntry {
    /// Destination address.
    pub address: NodeId,
    /// Hop count to the destination (0 = the sender itself... entries
    /// advertise the sender's cost; the receiver adds one).
    pub metric: u8,
    /// The sender's next hop toward the destination (diagnostic; used for
    /// split-horizon checks).
    pub via: NodeId,
}

impl RouteEntry {
    /// Serialized size on the wire.
    pub const WIRE_LEN: usize = 5;
}

/// A route as stored locally.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Route {
    /// Destination.
    pub address: NodeId,
    /// Next hop toward the destination.
    pub next_hop: NodeId,
    /// Hop count.
    pub metric: u8,
    /// Last time this route was confirmed.
    pub last_seen: SimTime,
    /// RSSI of the routing packet that installed/refreshed the route
    /// (link quality to the next hop; reported by the monitoring client).
    pub rssi_dbm: f64,
    /// SNR of that packet.
    pub snr_db: f64,
}

/// Maximum representable metric; routes at or above are unusable.
pub const INFINITY_METRIC: u8 = 16;

/// The routing table of one node.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    routes: BTreeMap<NodeId, Route>,
}

impl RoutingTable {
    /// An empty table.
    pub fn new() -> Self {
        RoutingTable::default()
    }

    /// Number of known destinations.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether no destinations are known.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// The route to `dst`, if known and usable.
    pub fn route_to(&self, dst: NodeId) -> Option<&Route> {
        self.routes.get(&dst).filter(|r| r.metric < INFINITY_METRIC)
    }

    /// Next hop toward `dst`, if known.
    pub fn next_hop(&self, dst: NodeId) -> Option<NodeId> {
        self.route_to(dst).map(|r| r.next_hop)
    }

    /// All routes in address order.
    pub fn routes(&self) -> impl Iterator<Item = &Route> {
        self.routes.values()
    }

    /// Incorporate a routing broadcast heard from `sender` (a direct
    /// neighbor) with the given link quality, at time `now`.
    ///
    /// Returns the number of routes added or improved.
    pub fn apply_broadcast(
        &mut self,
        local: NodeId,
        sender: NodeId,
        entries: &[RouteEntry],
        rssi_dbm: f64,
        snr_db: f64,
        now: SimTime,
    ) -> usize {
        let mut changed = 0;

        // The sender itself is a 1-hop neighbor.
        changed += usize::from(self.offer(
            Route {
                address: sender,
                next_hop: sender,
                metric: 1,
                last_seen: now,
                rssi_dbm,
                snr_db,
            },
            local,
        ));

        for e in entries {
            // Ignore advertisements of ourselves and of the sender (it is
            // already installed as a neighbor above).
            if e.address == local || e.address == sender {
                continue;
            }
            // Split horizon: a route the sender learned through us would
            // loop straight back.
            if e.via == local {
                continue;
            }
            let metric = e.metric.saturating_add(1).min(INFINITY_METRIC);
            changed += usize::from(self.offer(
                Route {
                    address: e.address,
                    next_hop: sender,
                    metric,
                    last_seen: now,
                    rssi_dbm,
                    snr_db,
                },
                local,
            ));
        }
        changed
    }

    /// Offer a candidate route; install it if new or better, refresh if it
    /// is the incumbent. Returns whether the table changed (install or
    /// metric change).
    fn offer(&mut self, candidate: Route, local: NodeId) -> bool {
        if candidate.address == local || candidate.metric >= INFINITY_METRIC {
            return false;
        }
        match self.routes.get_mut(&candidate.address) {
            None => {
                self.routes.insert(candidate.address, candidate);
                true
            }
            Some(existing) => {
                if candidate.metric < existing.metric
                    // Same next hop: always accept the fresh view, even if
                    // the metric worsened (the topology changed upstream).
                    || candidate.next_hop == existing.next_hop
                {
                    let changed = existing.metric != candidate.metric
                        || existing.next_hop != candidate.next_hop;
                    *existing = candidate;
                    changed
                } else {
                    false
                }
            }
        }
    }

    /// Drop routes not refreshed within `timeout` of `now`. Returns the
    /// expired destinations.
    pub fn expire(&mut self, now: SimTime, timeout: Duration) -> Vec<NodeId> {
        let mut expired = Vec::new();
        self.routes.retain(|&dst, r| {
            let fresh = now.saturating_since(r.last_seen) <= timeout;
            if !fresh {
                expired.push(dst);
            }
            fresh
        });
        expired
    }

    /// Drop every route through the given next hop (e.g. a dead neighbor).
    /// Returns how many were dropped.
    pub fn purge_via(&mut self, next_hop: NodeId) -> usize {
        let before = self.routes.len();
        self.routes.retain(|_, r| r.next_hop != next_hop);
        before - self.routes.len()
    }

    /// The advertisement this node should broadcast: every usable route.
    pub fn advertisement(&self) -> Vec<RouteEntry> {
        self.routes
            .values()
            .filter(|r| r.metric < INFINITY_METRIC)
            .map(|r| RouteEntry {
                address: r.address,
                metric: r.metric,
                via: r.next_hop,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOCAL: NodeId = NodeId(1);
    const B: NodeId = NodeId(2);
    const C: NodeId = NodeId(3);
    const D: NodeId = NodeId(4);

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn empty_broadcast_installs_neighbor() {
        let mut rt = RoutingTable::new();
        let changed = rt.apply_broadcast(LOCAL, B, &[], -90.0, 5.0, t(1));
        assert_eq!(changed, 1);
        let r = rt.route_to(B).unwrap();
        assert_eq!(r.next_hop, B);
        assert_eq!(r.metric, 1);
        assert_eq!(r.rssi_dbm, -90.0);
    }

    #[test]
    fn multi_hop_route_learned_with_incremented_metric() {
        let mut rt = RoutingTable::new();
        let entries = [RouteEntry {
            address: C,
            metric: 1,
            via: C,
        }];
        rt.apply_broadcast(LOCAL, B, &entries, -90.0, 5.0, t(1));
        let r = rt.route_to(C).unwrap();
        assert_eq!(r.next_hop, B);
        assert_eq!(r.metric, 2);
    }

    #[test]
    fn better_route_replaces_worse() {
        let mut rt = RoutingTable::new();
        rt.apply_broadcast(
            LOCAL,
            B,
            &[RouteEntry {
                address: D,
                metric: 3,
                via: C,
            }],
            -90.0,
            5.0,
            t(1),
        );
        assert_eq!(rt.route_to(D).unwrap().metric, 4);
        // C offers D at metric 1 → via C it is 2 hops: better.
        rt.apply_broadcast(
            LOCAL,
            C,
            &[RouteEntry {
                address: D,
                metric: 1,
                via: D,
            }],
            -85.0,
            6.0,
            t(2),
        );
        let r = rt.route_to(D).unwrap();
        assert_eq!(r.metric, 2);
        assert_eq!(r.next_hop, C);
    }

    #[test]
    fn worse_route_from_other_neighbor_ignored() {
        let mut rt = RoutingTable::new();
        rt.apply_broadcast(
            LOCAL,
            B,
            &[RouteEntry {
                address: D,
                metric: 1,
                via: D,
            }],
            -90.0,
            5.0,
            t(1),
        );
        rt.apply_broadcast(
            LOCAL,
            C,
            &[RouteEntry {
                address: D,
                metric: 5,
                via: D,
            }],
            -80.0,
            7.0,
            t(2),
        );
        let r = rt.route_to(D).unwrap();
        assert_eq!(r.next_hop, B);
        assert_eq!(r.metric, 2);
    }

    #[test]
    fn same_next_hop_update_accepts_worse_metric() {
        let mut rt = RoutingTable::new();
        rt.apply_broadcast(
            LOCAL,
            B,
            &[RouteEntry {
                address: D,
                metric: 1,
                via: D,
            }],
            -90.0,
            5.0,
            t(1),
        );
        // B's path to D degraded.
        rt.apply_broadcast(
            LOCAL,
            B,
            &[RouteEntry {
                address: D,
                metric: 4,
                via: C,
            }],
            -90.0,
            5.0,
            t(2),
        );
        assert_eq!(rt.route_to(D).unwrap().metric, 5);
    }

    #[test]
    fn split_horizon_rejects_routes_through_self() {
        let mut rt = RoutingTable::new();
        rt.apply_broadcast(
            LOCAL,
            B,
            &[RouteEntry {
                address: D,
                metric: 2,
                via: LOCAL,
            }],
            -90.0,
            5.0,
            t(1),
        );
        assert!(rt.route_to(D).is_none());
    }

    #[test]
    fn own_address_never_installed() {
        let mut rt = RoutingTable::new();
        rt.apply_broadcast(
            LOCAL,
            B,
            &[RouteEntry {
                address: LOCAL,
                metric: 1,
                via: B,
            }],
            -90.0,
            5.0,
            t(1),
        );
        assert!(rt.route_to(LOCAL).is_none());
        assert_eq!(rt.len(), 1); // just the neighbor
    }

    #[test]
    fn metric_saturates_at_infinity() {
        let mut rt = RoutingTable::new();
        rt.apply_broadcast(
            LOCAL,
            B,
            &[RouteEntry {
                address: D,
                metric: INFINITY_METRIC - 1,
                via: C,
            }],
            -90.0,
            5.0,
            t(1),
        );
        // 15 + 1 = 16 = infinity → unusable.
        assert!(rt.route_to(D).is_none());
    }

    #[test]
    fn expire_drops_stale_routes() {
        let mut rt = RoutingTable::new();
        rt.apply_broadcast(LOCAL, B, &[], -90.0, 5.0, t(1));
        rt.apply_broadcast(LOCAL, C, &[], -90.0, 5.0, t(50));
        let expired = rt.expire(t(61), Duration::from_secs(30));
        assert_eq!(expired, vec![B]);
        assert!(rt.route_to(B).is_none());
        assert!(rt.route_to(C).is_some());
    }

    #[test]
    fn refresh_prevents_expiry() {
        let mut rt = RoutingTable::new();
        rt.apply_broadcast(LOCAL, B, &[], -90.0, 5.0, t(1));
        rt.apply_broadcast(LOCAL, B, &[], -91.0, 5.0, t(25));
        let expired = rt.expire(t(40), Duration::from_secs(30));
        assert!(expired.is_empty());
        // The refresh also updated link quality.
        assert_eq!(rt.route_to(B).unwrap().rssi_dbm, -91.0);
    }

    #[test]
    fn purge_via_removes_all_routes_through_hop() {
        let mut rt = RoutingTable::new();
        rt.apply_broadcast(
            LOCAL,
            B,
            &[
                RouteEntry {
                    address: C,
                    metric: 1,
                    via: C,
                },
                RouteEntry {
                    address: D,
                    metric: 2,
                    via: C,
                },
            ],
            -90.0,
            5.0,
            t(1),
        );
        assert_eq!(rt.len(), 3);
        assert_eq!(rt.purge_via(B), 3);
        assert!(rt.is_empty());
    }

    #[test]
    fn advertisement_mirrors_table() {
        let mut rt = RoutingTable::new();
        rt.apply_broadcast(
            LOCAL,
            B,
            &[RouteEntry {
                address: C,
                metric: 1,
                via: C,
            }],
            -90.0,
            5.0,
            t(1),
        );
        let adv = rt.advertisement();
        assert_eq!(adv.len(), 2);
        assert!(adv.iter().any(|e| e.address == B && e.metric == 1));
        assert!(adv
            .iter()
            .any(|e| e.address == C && e.metric == 2 && e.via == B));
    }

    #[test]
    fn routes_iterate_in_address_order() {
        let mut rt = RoutingTable::new();
        rt.apply_broadcast(LOCAL, D, &[], -90.0, 5.0, t(1));
        rt.apply_broadcast(LOCAL, B, &[], -90.0, 5.0, t(1));
        let order: Vec<NodeId> = rt.routes().map(|r| r.address).collect();
        assert_eq!(order, vec![B, D]);
    }
}
