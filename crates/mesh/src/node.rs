//! The mesh protocol engine: one [`MeshNode`] runs on each simulated node.
//!
//! Responsibilities: periodic routing broadcasts, distance-vector table
//! maintenance, CSMA transmission with exponential backoff, TTL
//! forwarding, payload segmentation/reassembly, end-to-end ACKs with
//! retransmission, and feeding every observed packet to the attached
//! [`MeshObserver`].

use crate::config::{MeshConfig, TrafficDestination, TrafficPattern};
use crate::observer::{Direction, MeshObserver, MeshSnapshot, NullObserver, PacketEvent};
use crate::packet::{Body, Packet, PacketType, FLAG_ACK_REQUEST, MAX_SEGMENT_PAYLOAD};
use crate::routing::RoutingTable;
use bytes::Bytes;
use loramon_sim::{Application, Context, NodeId, ReceivedFrame, SimTime, TxResult, TxToken};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

const TIMER_HELLO: u64 = 1;
const TIMER_QUEUE: u64 = 2;
const TIMER_ACK_CHECK: u64 = 3;
const TIMER_EXPIRE: u64 = 4;
const TIMER_TRAFFIC: u64 = 5;
const TIMER_POLL: u64 = 6;

/// Mesh-layer protocol counters (the "node status" numbers the monitoring
/// client ships to the server).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshStats {
    /// Application messages this node originated.
    pub messages_sent: u64,
    /// Complete application messages delivered to this node.
    pub messages_delivered: u64,
    /// Originated reliable messages confirmed by an end-to-end ACK.
    pub messages_acked: u64,
    /// Originated reliable messages abandoned after the retry budget.
    pub drops_unacked: u64,
    /// Data segments transmitted (originated + forwarded).
    pub data_sent: u64,
    /// Data segments received addressed to this node (final or next hop).
    pub data_received: u64,
    /// Routing broadcasts transmitted.
    pub routing_sent: u64,
    /// Routing broadcasts received.
    pub routing_received: u64,
    /// ACK packets transmitted.
    pub acks_sent: u64,
    /// ACK packets received (for us or forwarded).
    pub acks_received: u64,
    /// Data segments forwarded toward another node.
    pub forwarded: u64,
    /// Whole-message retransmissions triggered by ACK timeout.
    pub retransmissions: u64,
    /// Segments dropped because TTL expired.
    pub drops_ttl: u64,
    /// Segments/messages dropped for lack of a route.
    pub drops_no_route: u64,
    /// Frames dropped because the outbound queue was full.
    pub drops_queue_full: u64,
    /// Frames dropped after exhausting CSMA attempts.
    pub drops_csma: u64,
    /// Undecodable frames heard.
    pub decode_errors: u64,
    /// Valid frames heard that were link-addressed to someone else.
    pub overheard: u64,
    /// Duplicate segments suppressed.
    pub duplicates: u64,
    /// Every valid frame demodulated, regardless of addressing.
    pub packets_heard: u64,
    /// Routing broadcasts ignored because their link margin was below
    /// [`MeshConfig::min_link_margin_db`].
    pub weak_link_rejections: u64,
}

/// A complete application message delivered by the mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Originating node.
    pub from: NodeId,
    /// Reassembled payload.
    pub payload: Bytes,
    /// Delivery time.
    pub at: SimTime,
}

#[derive(Debug)]
struct QueuedFrame {
    packet: Packet,
    csma_attempts: u32,
}

#[derive(Debug)]
struct PendingAck {
    segments: Vec<Packet>,
    retries_left: u32,
    deadline: SimTime,
}

#[derive(Debug)]
struct Reassembly {
    segments: Vec<Option<Bytes>>,
    received: usize,
    ack_requested: bool,
}

/// The mesh protocol application. Generic over the attached observer so
/// harnesses can recover it (e.g. the monitoring client) after a run via
/// [`Simulator::app_as`](loramon_sim::Simulator::app_as).
#[derive(Debug)]
pub struct MeshNode<O: MeshObserver = NullObserver> {
    config: MeshConfig,
    traffic: Option<TrafficPattern>,
    observer: O,
    local: NodeId,
    routing: RoutingTable,
    next_packet_id: u16,
    queue: VecDeque<QueuedFrame>,
    in_flight: Option<Packet>,
    pending_acks: BTreeMap<u16, PendingAck>,
    reassembly: BTreeMap<(u16, u16), Reassembly>,
    seen: VecDeque<(u16, u16, u8, PacketType)>,
    inbox: Vec<Message>,
    stats: MeshStats,
}

impl MeshNode<NullObserver> {
    /// A mesh node with the given configuration and no observer.
    pub fn new(config: MeshConfig) -> Self {
        MeshNode::with_observer(config, NullObserver)
    }
}

impl<O: MeshObserver> MeshNode<O> {
    /// A mesh node with an attached observer.
    pub fn with_observer(config: MeshConfig, observer: O) -> Self {
        MeshNode {
            config,
            traffic: None,
            observer,
            local: NodeId(0),
            routing: RoutingTable::new(),
            next_packet_id: 0,
            queue: VecDeque::new(),
            in_flight: None,
            pending_acks: BTreeMap::new(),
            reassembly: BTreeMap::new(),
            seen: VecDeque::new(),
            inbox: Vec::new(),
            stats: MeshStats::default(),
        }
    }

    /// Attach a periodic traffic pattern (builder style).
    pub fn with_traffic(mut self, pattern: TrafficPattern) -> Self {
        self.traffic = Some(pattern);
        self
    }

    /// This node's address (valid once the simulation has started).
    pub fn local_id(&self) -> NodeId {
        self.local
    }

    /// Protocol counters.
    pub fn stats(&self) -> MeshStats {
        self.stats
    }

    /// The routing table.
    pub fn routing_table(&self) -> &RoutingTable {
        &self.routing
    }

    /// Messages delivered so far (does not drain).
    pub fn messages(&self) -> &[Message] {
        &self.inbox
    }

    /// Drain delivered messages.
    pub fn take_messages(&mut self) -> Vec<Message> {
        std::mem::take(&mut self.inbox)
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Mutable access to the attached observer.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Current outbound queue depth in frames.
    pub fn queue_len(&self) -> usize {
        self.queue.len() + usize::from(self.in_flight.is_some())
    }

    fn next_id(&mut self) -> u16 {
        self.next_packet_id = self.next_packet_id.wrapping_add(1);
        self.next_packet_id
    }

    /// Send an application message through the mesh. Returns `false` when
    /// there is no route to `dst` (the message is counted and dropped).
    ///
    /// # Panics
    ///
    /// Panics if the payload needs more than 255 segments.
    pub fn send_message(
        &mut self,
        ctx: &mut Context<'_>,
        dst: NodeId,
        payload: Bytes,
        reliable: bool,
    ) -> bool {
        self.stats.messages_sent += 1;
        if dst == self.local {
            // Loopback: deliver immediately.
            let msg = Message {
                from: self.local,
                payload: payload.clone(),
                at: ctx.now(),
            };
            self.observer.on_message(self.local, &payload, ctx.now());
            self.inbox.push(msg);
            self.stats.messages_delivered += 1;
            return true;
        }
        let Some(next_hop) = self.routing.next_hop(dst) else {
            self.stats.drops_no_route += 1;
            return false;
        };
        let chunks: Vec<Bytes> = if payload.is_empty() {
            vec![Bytes::new()]
        } else {
            (0..payload.len())
                .step_by(MAX_SEGMENT_PAYLOAD)
                .map(|off| payload.slice(off..payload.len().min(off + MAX_SEGMENT_PAYLOAD)))
                .collect()
        };
        assert!(chunks.len() <= 255, "payload needs more than 255 segments");
        let total = chunks.len() as u8;
        let id = self.next_id();
        let flags = if reliable { FLAG_ACK_REQUEST } else { 0 };
        let mut segments = Vec::with_capacity(chunks.len());
        for (i, chunk) in chunks.into_iter().enumerate() {
            segments.push(Packet::data(
                next_hop,
                self.local,
                self.local,
                dst,
                id,
                self.config.max_ttl,
                i as u8,
                total,
                flags,
                chunk,
            ));
        }
        if reliable {
            self.pending_acks.insert(
                id,
                PendingAck {
                    segments: segments.clone(),
                    retries_left: self.config.max_retries,
                    deadline: ctx.now() + self.config.ack_timeout,
                },
            );
        }
        for p in segments {
            self.enqueue(ctx, p);
        }
        true
    }

    fn enqueue(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        if self.queue.len() >= self.config.queue_capacity {
            self.stats.drops_queue_full += 1;
            return;
        }
        self.queue.push_back(QueuedFrame {
            packet,
            csma_attempts: 0,
        });
        self.service_queue(ctx);
    }

    fn service_queue(&mut self, ctx: &mut Context<'_>) {
        if self.in_flight.is_some() {
            return;
        }
        while let Some(mut frame) = self.queue.pop_front() {
            if ctx.channel_busy() {
                frame.csma_attempts += 1;
                if frame.csma_attempts > self.config.csma_max_attempts {
                    self.stats.drops_csma += 1;
                    continue; // drop, try the next frame
                }
                let exp = frame.csma_attempts.min(4);
                let base = self.config.csma_backoff.as_micros() as u64;
                let spread = base << exp;
                let wait = Duration::from_micros(base + ctx.rng().next_below(spread.max(1)));
                self.queue.push_front(frame);
                ctx.set_timer(wait, TIMER_QUEUE);
                return;
            }
            let bytes = frame.packet.encode();
            ctx.transmit(bytes);
            self.in_flight = Some(frame.packet);
            return;
        }
    }

    fn send_ack(&mut self, ctx: &mut Context<'_>, to: NodeId, fallback_hop: NodeId, acked_id: u16) {
        let next_hop = self.routing.next_hop(to).unwrap_or(fallback_hop);
        let id = self.next_id();
        let packet = Packet::ack(
            next_hop,
            self.local,
            self.local,
            to,
            id,
            self.config.max_ttl,
            to,
            acked_id,
        );
        // `acked_origin` is the origin of the *data* packet, i.e. `to`.
        self.enqueue(ctx, packet);
    }

    fn remember(&mut self, key: (u16, u16, u8, PacketType)) -> bool {
        if self.seen.contains(&key) {
            return false;
        }
        if self.seen.len() >= 512 {
            self.seen.pop_front();
        }
        self.seen.push_back(key);
        true
    }

    fn emit_packet_event(
        &mut self,
        packet: &Packet,
        direction: Direction,
        at: SimTime,
        rssi: Option<f64>,
        snr: Option<f64>,
    ) {
        let h = &packet.header;
        self.observer.on_packet(&PacketEvent {
            at,
            direction,
            local: self.local,
            counterpart: match direction {
                Direction::In => h.link_src,
                Direction::Out => h.link_dst,
            },
            ptype: h.ptype,
            origin: h.origin,
            final_dst: h.final_dst,
            packet_id: h.packet_id,
            ttl: h.ttl,
            size_bytes: packet.encoded_len(),
            rssi_dbm: rssi,
            snr_db: snr,
        });
    }

    fn snapshot(&self, ctx: &Context<'_>) -> MeshSnapshot {
        MeshSnapshot {
            node: self.local,
            now: ctx.now(),
            routes: self.routing.routes().copied().collect(),
            queue_len: self.queue_len(),
            stats: self.stats,
            battery_percent: ctx.battery_percent(),
            duty_cycle_utilization: ctx.duty_cycle_utilization(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn deliver_complete(
        &mut self,
        ctx: &mut Context<'_>,
        origin: NodeId,
        link_src: NodeId,
        packet_id: u16,
        payload: Bytes,
        ack_requested: bool,
        to_us: bool,
    ) {
        self.observer.on_message(origin, &payload, ctx.now());
        self.inbox.push(Message {
            from: origin,
            payload,
            at: ctx.now(),
        });
        self.stats.messages_delivered += 1;
        if ack_requested && to_us {
            self.send_ack(ctx, origin, link_src, packet_id);
        }
    }

    fn handle_data(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let h = packet.header;
        let Body::Data(payload) = packet.body else {
            return;
        };
        self.stats.data_received += 1;
        let to_us = h.final_dst == self.local;
        let broadcast = h.final_dst.is_broadcast();
        if to_us || broadcast {
            if h.seg_total == 1 {
                self.deliver_complete(
                    ctx,
                    h.origin,
                    h.link_src,
                    h.packet_id,
                    payload,
                    h.ack_requested(),
                    to_us,
                );
            } else {
                let key = (h.origin.raw(), h.packet_id);
                let entry = self.reassembly.entry(key).or_insert_with(|| Reassembly {
                    segments: vec![None; h.seg_total as usize],
                    received: 0,
                    ack_requested: h.ack_requested(),
                });
                let slot = &mut entry.segments[h.seg_index as usize];
                if slot.is_none() {
                    *slot = Some(payload);
                    entry.received += 1;
                }
                if entry.received == entry.segments.len() {
                    let entry = self.reassembly.remove(&key).expect("present");
                    let mut whole = Vec::new();
                    for seg in entry.segments {
                        whole.extend_from_slice(&seg.expect("complete"));
                    }
                    self.deliver_complete(
                        ctx,
                        h.origin,
                        h.link_src,
                        h.packet_id,
                        Bytes::from(whole),
                        entry.ack_requested,
                        to_us,
                    );
                }
            }
            return;
        }

        // Forwarding role.
        if h.ttl <= 1 {
            self.stats.drops_ttl += 1;
            return;
        }
        let Some(next_hop) = self.routing.next_hop(h.final_dst) else {
            self.stats.drops_no_route += 1;
            return;
        };
        let forwarded = Packet::data(
            next_hop,
            self.local,
            h.origin,
            h.final_dst,
            h.packet_id,
            h.ttl - 1,
            h.seg_index,
            h.seg_total,
            h.flags,
            payload,
        );
        self.stats.forwarded += 1;
        self.enqueue(ctx, forwarded);
    }

    fn handle_ack(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let h = packet.header;
        let Body::Ack {
            acked_origin,
            acked_id,
        } = packet.body
        else {
            return;
        };
        self.stats.acks_received += 1;
        if h.final_dst == self.local {
            if acked_origin == self.local && self.pending_acks.remove(&acked_id).is_some() {
                self.stats.messages_acked += 1;
            }
            return;
        }
        if h.ttl <= 1 {
            self.stats.drops_ttl += 1;
            return;
        }
        let Some(next_hop) = self.routing.next_hop(h.final_dst) else {
            self.stats.drops_no_route += 1;
            return;
        };
        let forwarded = Packet::ack(
            next_hop,
            self.local,
            h.origin,
            h.final_dst,
            h.packet_id,
            h.ttl - 1,
            acked_origin,
            acked_id,
        );
        self.enqueue(ctx, forwarded);
    }

    fn fire_traffic(&mut self, ctx: &mut Context<'_>) {
        let Some(pattern) = self.traffic else {
            return;
        };
        let dst = match pattern.destination {
            TrafficDestination::Fixed(d) => Some(d),
            TrafficDestination::RandomPeer => {
                let peers: Vec<NodeId> = self.routing.routes().map(|r| r.address).collect();
                if peers.is_empty() {
                    None
                } else {
                    let i = ctx.rng().next_below(peers.len() as u64) as usize;
                    Some(peers[i])
                }
            }
        };
        if let Some(dst) = dst {
            // A recognizable payload: sequence number then padding.
            let mut payload = vec![0u8; pattern.payload_len.max(2)];
            payload[..2].copy_from_slice(&self.next_packet_id.to_be_bytes());
            self.send_message(ctx, dst, Bytes::from(payload), pattern.reliable);
        }
        let jitter_us = pattern.jitter.as_micros() as u64;
        let extra = if jitter_us > 0 {
            ctx.rng().next_below(jitter_us)
        } else {
            0
        };
        ctx.set_timer(pattern.period + Duration::from_micros(extra), TIMER_TRAFFIC);
    }

    fn check_ack_deadlines(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let due: Vec<u16> = self
            .pending_acks
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            let mut entry = self.pending_acks.remove(&id).expect("present");
            if entry.retries_left == 0 {
                self.stats.drops_unacked += 1;
                continue;
            }
            entry.retries_left -= 1;
            entry.deadline = now + self.config.ack_timeout;
            self.stats.retransmissions += 1;
            // Refresh the next hop — the topology may have moved.
            let final_dst = entry.segments[0].header.final_dst;
            let next_hop = self.routing.next_hop(final_dst);
            let segments = entry.segments.clone();
            self.pending_acks.insert(id, entry);
            match next_hop {
                Some(hop) => {
                    for mut p in segments {
                        p.header.link_dst = hop;
                        p.header.link_src = self.local;
                        self.enqueue(ctx, p);
                    }
                }
                None => {
                    self.stats.drops_no_route += 1;
                }
            }
        }
    }
}

impl<O: MeshObserver + 'static> Application for MeshNode<O> {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.local = ctx.node_id();
        let mut rng = ctx.rng();
        let hello_us = self.config.hello_period.as_micros() as u64;
        ctx.set_timer(
            Duration::from_micros(rng.next_below(hello_us.max(1))),
            TIMER_HELLO,
        );
        ctx.set_timer(self.config.route_timeout / 4, TIMER_EXPIRE);
        ctx.set_timer(self.config.ack_timeout / 2, TIMER_ACK_CHECK);
        ctx.set_timer(self.config.poll_period, TIMER_POLL);
        if let Some(pattern) = self.traffic {
            let jitter_us = pattern.jitter.as_micros() as u64;
            let extra = if jitter_us > 0 {
                rng.next_below(jitter_us)
            } else {
                0
            };
            ctx.set_timer(
                pattern.start_delay + Duration::from_micros(extra),
                TIMER_TRAFFIC,
            );
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<'_>) {
        // A recovery is a cold boot: every piece of volatile protocol
        // state — routes, queued frames, pending end-to-end ACKs,
        // half-reassembled payloads, the duplicate cache, counters — is
        // gone, and the observer gets the same treatment before the
        // node starts over.
        self.routing = RoutingTable::new();
        self.queue.clear();
        self.in_flight = None;
        self.pending_acks.clear();
        self.reassembly.clear();
        self.seen.clear();
        self.inbox.clear();
        self.stats = MeshStats::default();
        self.observer.on_reboot();
        self.on_start(ctx);
    }

    fn on_frame(&mut self, ctx: &mut Context<'_>, frame: &ReceivedFrame) {
        let packet = match Packet::decode(&frame.payload) {
            Ok(p) => p,
            Err(_) => {
                self.stats.decode_errors += 1;
                return;
            }
        };
        self.stats.packets_heard += 1;
        self.emit_packet_event(
            &packet,
            Direction::In,
            ctx.now(),
            Some(frame.rssi_dbm),
            Some(frame.snr_db),
        );

        let h = packet.header;
        if h.link_dst != self.local && !h.link_dst.is_broadcast() {
            self.stats.overheard += 1;
            return;
        }

        match h.ptype {
            PacketType::Routing => {
                if let Body::Routing(entries) = &packet.body {
                    self.stats.routing_received += 1;
                    let cfg = ctx.radio_config();
                    let floor = loramon_phy::sensitivity_dbm(cfg.sf(), cfg.bw())
                        + self.config.min_link_margin_db;
                    if frame.rssi_dbm < floor {
                        // Too weak to route over; still recorded above.
                        self.stats.weak_link_rejections += 1;
                        return;
                    }
                    self.routing.apply_broadcast(
                        self.local,
                        h.link_src,
                        entries,
                        frame.rssi_dbm,
                        frame.snr_db,
                        ctx.now(),
                    );
                }
            }
            PacketType::Data => {
                let key = (h.origin.raw(), h.packet_id, h.seg_index, PacketType::Data);
                if !self.remember(key) {
                    self.stats.duplicates += 1;
                    // Our earlier ACK may have been lost; repeat it.
                    if h.final_dst == self.local && h.ack_requested() {
                        self.send_ack(ctx, h.origin, h.link_src, h.packet_id);
                    }
                    return;
                }
                self.handle_data(ctx, packet);
            }
            PacketType::Ack => {
                let key = (h.origin.raw(), h.packet_id, 0, PacketType::Ack);
                if !self.remember(key) {
                    self.stats.duplicates += 1;
                    return;
                }
                self.handle_ack(ctx, packet);
            }
        }
    }

    fn on_tx_result(&mut self, ctx: &mut Context<'_>, _token: TxToken, result: TxResult) {
        match result {
            TxResult::Sent { .. } => {
                if let Some(packet) = self.in_flight.take() {
                    match packet.header.ptype {
                        PacketType::Routing => self.stats.routing_sent += 1,
                        PacketType::Data => self.stats.data_sent += 1,
                        PacketType::Ack => self.stats.acks_sent += 1,
                    }
                    self.emit_packet_event(&packet, Direction::Out, ctx.now(), None, None);
                }
                self.service_queue(ctx);
            }
            TxResult::Busy => {
                if let Some(packet) = self.in_flight.take() {
                    self.queue.push_front(QueuedFrame {
                        packet,
                        csma_attempts: 0,
                    });
                }
                ctx.set_timer(self.config.csma_backoff, TIMER_QUEUE);
            }
            TxResult::DutyCycleBlocked { retry_at } => {
                if let Some(packet) = self.in_flight.take() {
                    self.queue.push_front(QueuedFrame {
                        packet,
                        csma_attempts: 0,
                    });
                }
                let wait = match retry_at {
                    Some(at) => at.saturating_since(ctx.now()) + Duration::from_millis(10),
                    None => self.config.hello_period,
                };
                ctx.set_timer(wait, TIMER_QUEUE);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: u64) {
        match timer {
            TIMER_HELLO => {
                let id = self.next_id();
                let adv = self.routing.advertisement();
                let packet = Packet::routing(self.local, id, adv);
                self.enqueue(ctx, packet);
                let jitter_us = self.config.hello_jitter.as_micros() as u64;
                let extra = if jitter_us > 0 {
                    ctx.rng().next_below(jitter_us)
                } else {
                    0
                };
                ctx.set_timer(
                    self.config.hello_period + Duration::from_micros(extra),
                    TIMER_HELLO,
                );
            }
            TIMER_QUEUE => self.service_queue(ctx),
            TIMER_ACK_CHECK => {
                self.check_ack_deadlines(ctx);
                ctx.set_timer(self.config.ack_timeout / 2, TIMER_ACK_CHECK);
            }
            TIMER_EXPIRE => {
                let expired = self.routing.expire(ctx.now(), self.config.route_timeout);
                for dead in expired {
                    self.routing.purge_via(dead);
                }
                ctx.set_timer(self.config.route_timeout / 4, TIMER_EXPIRE);
            }
            TIMER_TRAFFIC => self.fire_traffic(ctx),
            TIMER_POLL => {
                let snapshot = self.snapshot(ctx);
                let outgoing = self.observer.poll(&snapshot);
                for (dst, payload) in outgoing {
                    self.send_message(ctx, dst, payload, false);
                }
                ctx.set_timer(self.config.poll_period, TIMER_POLL);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::RecordingObserver;
    use loramon_phy::{Position, RadioConfig};
    use loramon_sim::{SimBuilder, Simulator};

    type RecNode = MeshNode<RecordingObserver>;

    fn build_line(n: usize, spacing: f64, seed: u64) -> (Simulator, Vec<NodeId>) {
        let mut sim = SimBuilder::new().seed(seed).build();
        let cfg = RadioConfig::mesher_default();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| {
                sim.add_node(
                    Position::new(i as f64 * spacing, 0.0),
                    cfg,
                    Box::new(MeshNode::with_observer(
                        MeshConfig::fast(),
                        RecordingObserver::default(),
                    )),
                )
            })
            .collect();
        (sim, ids)
    }

    #[test]
    fn neighbors_discover_each_other() {
        let (mut sim, ids) = build_line(2, 200.0, 1);
        sim.run_for(Duration::from_secs(60));
        for (&a, &b) in [(&ids[0], &ids[1]), (&ids[1], &ids[0])] {
            let node: &RecNode = sim.app_as(a).unwrap();
            let r = node.routing_table().route_to(b).expect("route missing");
            assert_eq!(r.metric, 1);
            assert_eq!(r.next_hop, b);
        }
    }

    #[test]
    fn multihop_routes_converge_on_a_line() {
        // 5 nodes, 1.6 km apart: each can only reach its direct neighbors
        // (suburban path loss at 3.2 km is far past SF7 sensitivity).
        let (mut sim, ids) = build_line(5, 1600.0, 3);
        sim.run_for(Duration::from_secs(300));
        let first: &RecNode = sim.app_as(ids[0]).unwrap();
        let route = first.routing_table().route_to(ids[4]);
        let r = route.expect("end-to-end route missing");
        assert_eq!(r.next_hop, ids[1], "must route through the chain");
        assert!(r.metric >= 3, "metric {} too small", r.metric);
    }

    #[test]
    fn data_is_forwarded_end_to_end() {
        let (mut sim, ids) = build_line(3, 1600.0, 5);
        // Give routing time to converge, then have node 0 send to node 2.
        sim.run_for(Duration::from_secs(120));
        let dst = ids[2];
        {
            // Use traffic injection through a poll-less path: direct call
            // via app_as_mut needs a Context, so emulate with traffic
            // pattern instead in other tests; here shortcut via routing:
            // verify a route exists, then restart-free send using the
            // traffic pattern is covered elsewhere.
            let first: &RecNode = sim.app_as(ids[0]).unwrap();
            assert!(first.routing_table().route_to(dst).is_some());
        }
    }

    #[test]
    fn traffic_pattern_delivers_messages_end_to_end() {
        let mut sim = SimBuilder::new().seed(7).build();
        let cfg = RadioConfig::mesher_default();
        let positions = [0.0, 1600.0, 3200.0];
        let gateway_pos = positions[2];
        // Node 0 sends periodic telemetry to node 2 through node 1.
        let gw_id = NodeId(3);
        let mut ids = Vec::new();
        for (i, &x) in positions.iter().enumerate() {
            let mut node =
                MeshNode::with_observer(MeshConfig::fast(), RecordingObserver::default());
            let app: Box<dyn Application> = if i == 0 {
                node = node.with_traffic(
                    TrafficPattern::to_gateway(gw_id, Duration::from_secs(30), 16)
                        .with_start_delay(Duration::from_secs(60)),
                );
                Box::new(node)
            } else {
                Box::new(node)
            };
            ids.push(sim.add_node(Position::new(x, 0.0), cfg, app));
        }
        assert_eq!(ids[2], gw_id);
        let _ = gateway_pos;
        sim.run_for(Duration::from_secs(600));
        let gw: &RecNode = sim.app_as(gw_id).unwrap();
        assert!(
            !gw.messages().is_empty(),
            "gateway received no telemetry messages"
        );
        assert_eq!(gw.messages()[0].from, ids[0]);
        // The relay actually forwarded.
        let relay: &RecNode = sim.app_as(ids[1]).unwrap();
        assert!(relay.stats().forwarded > 0, "relay never forwarded");
    }

    #[test]
    fn reliable_messages_get_acked() {
        let mut sim = SimBuilder::new().seed(11).build();
        let cfg = RadioConfig::mesher_default();
        let gw = NodeId(2);
        let sender = MeshNode::with_observer(MeshConfig::fast(), RecordingObserver::default())
            .with_traffic(
                TrafficPattern::to_gateway(gw, Duration::from_secs(60), 16)
                    .with_reliable(true)
                    .with_start_delay(Duration::from_secs(30)),
            );
        let a = sim.add_node(Position::new(0.0, 0.0), cfg, Box::new(sender));
        sim.add_node(
            Position::new(300.0, 0.0),
            cfg,
            Box::new(MeshNode::with_observer(
                MeshConfig::fast(),
                RecordingObserver::default(),
            )),
        );
        sim.run_for(Duration::from_secs(300));
        let s: &RecNode = sim.app_as(a).unwrap();
        assert!(s.stats().messages_sent >= 3);
        assert!(
            s.stats().messages_acked >= 2,
            "acked {} of {} sent",
            s.stats().messages_acked,
            s.stats().messages_sent
        );
    }

    #[test]
    fn large_payload_is_segmented_and_reassembled() {
        let mut sim = SimBuilder::new().seed(13).duty_cycle(1.0).build();
        let cfg = RadioConfig::mesher_default();
        let gw = NodeId(2);
        // 600 bytes > 240-byte segment limit → 3 segments.
        let sender = MeshNode::with_observer(MeshConfig::fast(), RecordingObserver::default())
            .with_traffic(TrafficPattern {
                destination: TrafficDestination::Fixed(gw),
                period: Duration::from_secs(120),
                jitter: Duration::ZERO,
                payload_len: 600,
                start_delay: Duration::from_secs(30),
                reliable: false,
            });
        let a = sim.add_node(Position::new(0.0, 0.0), cfg, Box::new(sender));
        let b = sim.add_node(
            Position::new(200.0, 0.0),
            cfg,
            Box::new(MeshNode::with_observer(
                MeshConfig::fast(),
                RecordingObserver::default(),
            )),
        );
        sim.run_for(Duration::from_secs(200));
        let gw_node: &RecNode = sim.app_as(b).unwrap();
        assert!(!gw_node.messages().is_empty(), "no reassembled message");
        assert_eq!(gw_node.messages()[0].payload.len(), 600);
        let s: &RecNode = sim.app_as(a).unwrap();
        assert!(
            s.stats().data_sent >= 3,
            "sent {} segments",
            s.stats().data_sent
        );
    }

    #[test]
    fn observer_sees_in_and_out_packets() {
        let (mut sim, ids) = build_line(2, 200.0, 17);
        sim.run_for(Duration::from_secs(60));
        let node: &RecNode = sim.app_as(ids[0]).unwrap();
        let obs = node.observer();
        let outs = obs
            .packets
            .iter()
            .filter(|p| p.direction == Direction::Out)
            .count();
        let ins = obs
            .packets
            .iter()
            .filter(|p| p.direction == Direction::In)
            .count();
        assert!(outs > 0, "no outgoing packets observed");
        assert!(ins > 0, "no incoming packets observed");
        // Incoming events carry RSSI, outgoing do not.
        assert!(obs
            .packets
            .iter()
            .all(|p| (p.direction == Direction::In) == p.rssi_dbm.is_some()));
        assert!(obs.polls > 0, "observer was never polled");
    }

    #[test]
    fn stats_track_routing_exchange() {
        let (mut sim, ids) = build_line(2, 200.0, 19);
        sim.run_for(Duration::from_secs(120));
        for &id in &ids {
            let node: &RecNode = sim.app_as(id).unwrap();
            assert!(
                node.stats().routing_sent >= 5,
                "sent {}",
                node.stats().routing_sent
            );
            assert!(node.stats().routing_received >= 5);
        }
    }

    #[test]
    fn isolated_node_has_empty_table_and_drops() {
        let mut sim = SimBuilder::new().seed(23).build();
        let cfg = RadioConfig::mesher_default();
        let lonely = MeshNode::with_observer(MeshConfig::fast(), RecordingObserver::default())
            .with_traffic(
                TrafficPattern::to_gateway(NodeId(99), Duration::from_secs(30), 8)
                    .with_start_delay(Duration::from_secs(10)),
            );
        let a = sim.add_node(Position::new(0.0, 0.0), cfg, Box::new(lonely));
        sim.run_for(Duration::from_secs(200));
        let node: &RecNode = sim.app_as(a).unwrap();
        assert!(node.routing_table().is_empty());
        assert!(node.stats().drops_no_route > 0);
        assert_eq!(node.stats().messages_delivered, 0);
    }

    #[test]
    fn dead_relay_breaks_delivery_until_reroute() {
        // Diamond: 1 -- {2,3} -- 4. Kill relay 2; traffic 1→4 should
        // continue through 3 after routes re-form.
        let mut sim = SimBuilder::new().seed(29).build();
        let cfg = RadioConfig::mesher_default();
        let gw = NodeId(4);
        let sender = MeshNode::with_observer(MeshConfig::fast(), RecordingObserver::default())
            .with_traffic(
                TrafficPattern::to_gateway(gw, Duration::from_secs(20), 12)
                    .with_start_delay(Duration::from_secs(60)),
            );
        let _n1 = sim.add_node(Position::new(0.0, 0.0), cfg, Box::new(sender));
        let n2 = sim.add_node(
            Position::new(1200.0, 900.0),
            cfg,
            Box::new(RecNode::with_observer(
                MeshConfig::fast(),
                RecordingObserver::default(),
            )),
        );
        let _n3 = sim.add_node(
            Position::new(1200.0, -900.0),
            cfg,
            Box::new(RecNode::with_observer(
                MeshConfig::fast(),
                RecordingObserver::default(),
            )),
        );
        let n4 = sim.add_node(
            Position::new(2400.0, 0.0),
            cfg,
            Box::new(RecNode::with_observer(
                MeshConfig::fast(),
                RecordingObserver::default(),
            )),
        );
        assert_eq!(n4, gw);
        // Let everything converge and flow, then kill node 2 at t=300 s.
        sim.schedule_failure(n2, SimTime::from_secs(300));
        sim.run_for(Duration::from_secs(900));
        let gw_node: &RecNode = sim.app_as(gw).unwrap();
        let before = gw_node
            .messages()
            .iter()
            .filter(|m| m.at < SimTime::from_secs(300))
            .count();
        let after = gw_node
            .messages()
            .iter()
            .filter(|m| m.at > SimTime::from_secs(420))
            .count();
        assert!(before > 0, "no messages before the failure");
        assert!(after > 0, "mesh never recovered after relay death");
    }

    #[test]
    fn duplicate_suppression_counts() {
        // Two paths can deliver the same segment twice to the gateway in
        // the diamond topology with retransmissions; simply assert the
        // counter stays consistent: duplicates ≤ data_received overall.
        let (mut sim, ids) = build_line(3, 1600.0, 31);
        sim.run_for(Duration::from_secs(300));
        for &id in &ids {
            let node: &RecNode = sim.app_as(id).unwrap();
            let s = node.stats();
            assert!(s.duplicates <= s.packets_heard);
        }
    }

    #[test]
    fn weak_link_margin_rejects_marginal_neighbors() {
        // Two nodes at 2.6 km suburban: demodulable (~2 dB margin) but
        // below a 6 dB routing threshold → hellos are heard yet no
        // routes form, and the rejection counter ticks.
        let mut sim = SimBuilder::new().seed(3).build();
        let cfg = RadioConfig::mesher_default();
        let strict = MeshConfig::fast().with_min_link_margin_db(6.0);
        let a = sim.add_node(
            Position::new(0.0, 0.0),
            cfg,
            Box::new(RecNode::with_observer(strict, RecordingObserver::default())),
        );
        let b = sim.add_node(
            Position::new(2600.0, 0.0),
            cfg,
            Box::new(RecNode::with_observer(strict, RecordingObserver::default())),
        );
        sim.run_for(Duration::from_secs(300));
        for id in [a, b] {
            let node: &RecNode = sim.app_as(id).unwrap();
            assert!(
                node.stats().packets_heard > 0,
                "node {id} heard nothing — geometry broke"
            );
            assert!(
                node.stats().weak_link_rejections > 0,
                "node {id} rejected nothing"
            );
            assert!(
                node.routing_table().is_empty(),
                "node {id} installed a weak route"
            );
        }
    }

    #[test]
    fn weak_link_margin_prefers_relay_over_marginal_shortcut() {
        // A(0) – B(1200) – C(2400): with a 6 dB margin, A must reach C
        // through B even when C's hellos are occasionally demodulable.
        let mut sim = SimBuilder::new().seed(5).build();
        let cfg = RadioConfig::mesher_default();
        let strict = MeshConfig::fast().with_min_link_margin_db(6.0);
        let ids: Vec<NodeId> = [0.0, 1200.0, 2400.0]
            .iter()
            .map(|&x| {
                sim.add_node(
                    Position::new(x, 0.0),
                    cfg,
                    Box::new(RecNode::with_observer(strict, RecordingObserver::default())),
                )
            })
            .collect();
        sim.run_for(Duration::from_secs(300));
        let a: &RecNode = sim.app_as(ids[0]).unwrap();
        let route = a
            .routing_table()
            .route_to(ids[2])
            .expect("no route A→C at all");
        assert_eq!(route.next_hop, ids[1], "A took the marginal shortcut");
        assert_eq!(route.metric, 2);
    }

    #[test]
    fn tiny_queue_overflows_under_burst() {
        // Queue capacity 2 + an 800-byte payload (4 segments) → the tail
        // segments are dropped and counted.
        let mut sim = SimBuilder::new().seed(37).duty_cycle(1.0).build();
        let cfg = RadioConfig::mesher_default();
        let mut config = MeshConfig::fast();
        config.queue_capacity = 2;
        let sender = MeshNode::with_observer(config, RecordingObserver::default()).with_traffic(
            TrafficPattern {
                destination: TrafficDestination::Fixed(NodeId(2)),
                period: Duration::from_secs(60),
                jitter: Duration::ZERO,
                payload_len: 800,
                start_delay: Duration::from_secs(30),
                reliable: false,
            },
        );
        let a = sim.add_node(Position::new(0.0, 0.0), cfg, Box::new(sender));
        sim.add_node(
            Position::new(200.0, 0.0),
            cfg,
            Box::new(RecNode::with_observer(
                MeshConfig::fast(),
                RecordingObserver::default(),
            )),
        );
        sim.run_for(Duration::from_secs(120));
        let node: &RecNode = sim.app_as(a).unwrap();
        assert!(
            node.stats().drops_queue_full > 0,
            "queue never overflowed: {:?}",
            node.stats()
        );
    }

    #[test]
    fn csma_backs_off_and_eventually_drops_under_jamming() {
        // A saturating jammer sits between two mesh nodes with the duty
        // cycle disabled: CSMA keeps finding the channel busy.
        let mut sim = SimBuilder::new().seed(41).duty_cycle(1.0).build();
        let cfg = RadioConfig::mesher_default();
        let mut config = MeshConfig::fast();
        config.csma_max_attempts = 2;
        config.csma_backoff = Duration::from_millis(50);
        let a = sim.add_node(
            Position::new(0.0, 0.0),
            cfg,
            Box::new(RecNode::with_observer(config, RecordingObserver::default())),
        );
        sim.add_node(
            Position::new(200.0, 0.0),
            cfg,
            Box::new(RecNode::with_observer(config, RecordingObserver::default())),
        );
        sim.add_node(
            Position::new(100.0, 0.0),
            cfg,
            Box::new(loramon_sim::Jammer::new(200)),
        );
        sim.run_for(Duration::from_secs(600));
        let node: &RecNode = sim.app_as(a).unwrap();
        assert!(
            node.stats().drops_csma > 0,
            "CSMA never gave up under a saturating jammer: {:?}",
            node.stats()
        );
    }

    #[test]
    fn reliable_delivery_retransmits_over_a_lossy_link() {
        // A link pinned at exactly SF7 sensitivity (no shadowing, so
        // only per-packet fading decides): ~50% PDR. Reliable messages
        // need retries, and most eventually get acked.
        let mut sim = SimBuilder::new()
            .seed(47)
            .path_loss(loramon_phy::LogDistance::new(38.0, 1.0, 2.9, 0.0))
            .build();
        let cfg = RadioConfig::mesher_default();
        let sender = MeshNode::with_observer(MeshConfig::fast(), RecordingObserver::default())
            .with_traffic(
                TrafficPattern::to_gateway(NodeId(2), Duration::from_secs(60), 12)
                    .with_reliable(true)
                    .with_start_delay(Duration::from_secs(60)),
            );
        let a = sim.add_node(Position::new(0.0, 0.0), cfg, Box::new(sender));
        sim.add_node(
            Position::new(2925.0, 0.0),
            cfg,
            Box::new(RecNode::with_observer(
                MeshConfig::fast(),
                RecordingObserver::default(),
            )),
        );
        sim.run_for(Duration::from_secs(3600));
        let node: &RecNode = sim.app_as(a).unwrap();
        let s = node.stats();
        assert!(s.messages_sent >= 30, "sent {}", s.messages_sent);
        assert!(s.retransmissions > 0, "lossy link needed no retries: {s:?}");
        assert!(
            s.messages_acked > s.messages_sent / 3,
            "acked {}/{}",
            s.messages_acked,
            s.messages_sent
        );
    }

    #[test]
    fn queue_len_reports_inflight() {
        let node = MeshNode::new(MeshConfig::new());
        assert_eq!(node.queue_len(), 0);
    }
}
