//! The observation interface the monitoring client plugs into.
//!
//! A [`MeshObserver`] sees every packet the node's radio puts on or takes
//! off the air — exactly the vantage point of the paper's client-side
//! monitor — plus a periodic poll through which it can inspect node state
//! and (for in-band reporting) hand messages back to the mesh for
//! transmission.

use crate::node::MeshStats;
use crate::packet::PacketType;
use crate::routing::Route;
use bytes::Bytes;
use loramon_sim::{NodeId, SimTime};
use serde::{Deserialize, Serialize};

/// Packet direction relative to the observed node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Demodulated by this node's radio.
    In,
    /// Transmitted by this node's radio.
    Out,
}

/// One observed packet, with the metadata the paper's monitor reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketEvent {
    /// When the packet finished (reception or transmission).
    pub at: SimTime,
    /// Direction relative to the observed node.
    pub direction: Direction,
    /// The observed node.
    pub local: NodeId,
    /// The link-layer peer: sender for `In`, link destination for `Out`.
    pub counterpart: NodeId,
    /// Packet type.
    pub ptype: PacketType,
    /// End-to-end origin.
    pub origin: NodeId,
    /// End-to-end destination.
    pub final_dst: NodeId,
    /// Origin-assigned packet id.
    pub packet_id: u16,
    /// Remaining TTL as seen on the wire.
    pub ttl: u8,
    /// Encoded packet size in bytes.
    pub size_bytes: usize,
    /// RSSI of the reception (`None` for outgoing packets).
    pub rssi_dbm: Option<f64>,
    /// SNR of the reception (`None` for outgoing packets).
    pub snr_db: Option<f64>,
}

/// A snapshot of mesh-layer state handed to [`MeshObserver::poll`].
#[derive(Debug, Clone, PartialEq)]
pub struct MeshSnapshot {
    /// The observed node.
    pub node: NodeId,
    /// Snapshot time.
    pub now: SimTime,
    /// Current routing table.
    pub routes: Vec<Route>,
    /// Outbound queue depth in frames.
    pub queue_len: usize,
    /// Protocol counters.
    pub stats: MeshStats,
    /// Remaining battery percentage.
    pub battery_percent: u8,
    /// Duty-cycle budget utilization (1.0 = at the cap).
    pub duty_cycle_utilization: f64,
}

/// Observer of one mesh node. All methods default to no-ops.
pub trait MeshObserver {
    /// A packet crossed this node's radio.
    fn on_packet(&mut self, event: &PacketEvent) {
        let _ = event;
    }

    /// Periodic poll (every
    /// [`MeshConfig::poll_period`](crate::MeshConfig::poll_period)).
    /// Returning `(dst, payload)`
    /// pairs asks the mesh to send them as ordinary data messages — the
    /// in-band reporting path.
    fn poll(&mut self, snapshot: &MeshSnapshot) -> Vec<(NodeId, Bytes)> {
        let _ = snapshot;
        Vec::new()
    }

    /// A data message addressed to this node arrived (fully reassembled).
    fn on_message(&mut self, from: NodeId, payload: &Bytes, at: SimTime) {
        let _ = (from, payload, at);
    }

    /// The node crashed and came back: volatile observer state (buffers,
    /// pending queues, sequence counters) is gone, exactly as a power
    /// cycle would lose it on real hardware. Observers that model
    /// persistent storage may keep state across this call.
    fn on_reboot(&mut self) {}
}

/// The do-nothing observer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl MeshObserver for NullObserver {}

/// An observer that records every event — handy in tests.
#[derive(Debug, Default)]
pub struct RecordingObserver {
    /// Every packet event seen.
    pub packets: Vec<PacketEvent>,
    /// Every completed message (from, payload).
    pub messages: Vec<(NodeId, Bytes)>,
    /// Number of polls received.
    pub polls: usize,
    /// Number of reboot notifications received.
    pub reboots: usize,
}

impl MeshObserver for RecordingObserver {
    fn on_packet(&mut self, event: &PacketEvent) {
        self.packets.push(event.clone());
    }

    fn poll(&mut self, _snapshot: &MeshSnapshot) -> Vec<(NodeId, Bytes)> {
        self.polls += 1;
        Vec::new()
    }

    fn on_message(&mut self, from: NodeId, payload: &Bytes, _at: SimTime) {
        self.messages.push((from, payload.clone()));
    }

    fn on_reboot(&mut self) {
        self.reboots += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_observer_accumulates() {
        let mut o = RecordingObserver::default();
        o.on_packet(&PacketEvent {
            at: SimTime::ZERO,
            direction: Direction::In,
            local: NodeId(1),
            counterpart: NodeId(2),
            ptype: PacketType::Data,
            origin: NodeId(2),
            final_dst: NodeId(1),
            packet_id: 1,
            ttl: 9,
            size_bytes: 40,
            rssi_dbm: Some(-95.0),
            snr_db: Some(4.0),
        });
        o.on_message(NodeId(2), &Bytes::from_static(b"hi"), SimTime::ZERO);
        assert_eq!(o.packets.len(), 1);
        assert_eq!(o.messages.len(), 1);
    }

    #[test]
    fn null_observer_returns_nothing() {
        let mut o = NullObserver;
        let snap = MeshSnapshot {
            node: NodeId(1),
            now: SimTime::ZERO,
            routes: vec![],
            queue_len: 0,
            stats: MeshStats::default(),
            battery_percent: 100,
            duty_cycle_utilization: 0.0,
        };
        assert!(o.poll(&snap).is_empty());
    }
}
