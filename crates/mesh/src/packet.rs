//! Mesh packet wire format.
//!
//! A compact, explicitly specified binary layout (big-endian), modelled on
//! the LoRaMesher packet family. Every packet shares a 15-byte header:
//!
//! ```text
//! offset  size  field
//! 0       2     link_dst   — next hop address, or 0xFFFF broadcast
//! 2       2     link_src   — transmitting node
//! 4       1     packet type
//! 5       2     packet id  — assigned by the origin
//! 7       1     ttl        — remaining hops
//! 8       2     origin     — end-to-end source
//! 10      2     final_dst  — end-to-end destination
//! 12      1     seg_index  — segment number (0-based)
//! 13      1     seg_total  — total segments (≥ 1)
//! 14      1     flags      — bit 0: ACK requested
//! ```
//!
//! followed by a type-specific body: route entries for routing packets,
//! raw payload for data packets, the acked id for ACKs.

use crate::routing::RouteEntry;
use bytes::{BufMut, Bytes, BytesMut};
use loramon_sim::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of the common header in bytes.
pub const HEADER_LEN: usize = 15;

/// Header flag: the origin requests an end-to-end ACK.
pub const FLAG_ACK_REQUEST: u8 = 0b0000_0001;

/// Largest LoRa PHY payload; packets must fit within it.
pub const MAX_PACKET_LEN: usize = 255;

/// Largest data payload per packet.
pub const MAX_SEGMENT_PAYLOAD: usize = MAX_PACKET_LEN - HEADER_LEN;

/// Packet type discriminant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PacketType {
    /// Periodic routing-table broadcast.
    Routing,
    /// Unicast application data (possibly one segment of many).
    Data,
    /// End-to-end acknowledgment for reliable data.
    Ack,
}

impl PacketType {
    fn to_byte(self) -> u8 {
        match self {
            PacketType::Routing => 1,
            PacketType::Data => 2,
            PacketType::Ack => 3,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(PacketType::Routing),
            2 => Some(PacketType::Data),
            3 => Some(PacketType::Ack),
            _ => None,
        }
    }
}

impl fmt::Display for PacketType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketType::Routing => write!(f, "ROUTING"),
            PacketType::Data => write!(f, "DATA"),
            PacketType::Ack => write!(f, "ACK"),
        }
    }
}

/// The common packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Header {
    /// Link-layer destination (next hop, or broadcast).
    pub link_dst: NodeId,
    /// Link-layer source (the transmitting node).
    pub link_src: NodeId,
    /// Packet type.
    pub ptype: PacketType,
    /// Origin-assigned packet id.
    pub packet_id: u16,
    /// Remaining hops.
    pub ttl: u8,
    /// End-to-end source.
    pub origin: NodeId,
    /// End-to-end destination.
    pub final_dst: NodeId,
    /// Segment index (0-based).
    pub seg_index: u8,
    /// Total segments (≥ 1).
    pub seg_total: u8,
    /// Flag bits ([`FLAG_ACK_REQUEST`]).
    pub flags: u8,
}

impl Header {
    /// Whether the origin requested an end-to-end ACK.
    pub fn ack_requested(&self) -> bool {
        self.flags & FLAG_ACK_REQUEST != 0
    }
}

/// A full mesh packet: header plus typed body.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// The header.
    pub header: Header,
    /// The body.
    pub body: Body,
}

/// Typed packet body.
#[derive(Debug, Clone, PartialEq)]
pub enum Body {
    /// Routing advertisement: the sender's view of the network.
    Routing(Vec<RouteEntry>),
    /// Application payload (one segment).
    Data(Bytes),
    /// Acknowledgment of `(origin, packet_id)`.
    Ack {
        /// Origin of the acked data packet.
        acked_origin: NodeId,
        /// Id of the acked data packet.
        acked_id: u16,
    },
}

/// Error from decoding a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than a header.
    Truncated,
    /// Unknown packet-type byte.
    UnknownType(u8),
    /// Body length inconsistent with the type.
    BadBody,
    /// `seg_total` of zero or `seg_index >= seg_total`.
    BadSegment,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "packet shorter than header"),
            DecodeError::UnknownType(b) => write!(f, "unknown packet type byte {b:#04x}"),
            DecodeError::BadBody => write!(f, "body length inconsistent with packet type"),
            DecodeError::BadSegment => write!(f, "invalid segmentation fields"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl Packet {
    /// Construct a routing broadcast.
    pub fn routing(src: NodeId, packet_id: u16, entries: Vec<RouteEntry>) -> Self {
        Packet {
            header: Header {
                link_dst: NodeId::BROADCAST,
                link_src: src,
                ptype: PacketType::Routing,
                packet_id,
                ttl: 1,
                origin: src,
                final_dst: NodeId::BROADCAST,
                seg_index: 0,
                seg_total: 1,
                flags: 0,
            },
            body: Body::Routing(entries),
        }
    }

    /// Construct one data segment.
    #[allow(clippy::too_many_arguments)]
    pub fn data(
        link_dst: NodeId,
        link_src: NodeId,
        origin: NodeId,
        final_dst: NodeId,
        packet_id: u16,
        ttl: u8,
        seg_index: u8,
        seg_total: u8,
        flags: u8,
        payload: Bytes,
    ) -> Self {
        assert!(
            seg_total >= 1 && seg_index < seg_total,
            "invalid segmentation"
        );
        assert!(payload.len() <= MAX_SEGMENT_PAYLOAD, "payload too large");
        Packet {
            header: Header {
                link_dst,
                link_src,
                ptype: PacketType::Data,
                packet_id,
                ttl,
                origin,
                final_dst,
                seg_index,
                seg_total,
                flags,
            },
            body: Body::Data(payload),
        }
    }

    /// Construct an end-to-end ACK.
    #[allow(clippy::too_many_arguments)]
    pub fn ack(
        link_dst: NodeId,
        link_src: NodeId,
        origin: NodeId,
        final_dst: NodeId,
        packet_id: u16,
        ttl: u8,
        acked_origin: NodeId,
        acked_id: u16,
    ) -> Self {
        Packet {
            header: Header {
                link_dst,
                link_src,
                ptype: PacketType::Ack,
                packet_id,
                ttl,
                origin,
                final_dst,
                seg_index: 0,
                seg_total: 1,
                flags: 0,
            },
            body: Body::Ack {
                acked_origin,
                acked_id,
            },
        }
    }

    /// Serialized length in bytes.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN
            + match &self.body {
                Body::Routing(entries) => entries.len() * RouteEntry::WIRE_LEN,
                Body::Data(payload) => payload.len(),
                Body::Ack { .. } => 4,
            }
    }

    /// Encode to bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        let h = &self.header;
        buf.put_u16(h.link_dst.raw());
        buf.put_u16(h.link_src.raw());
        buf.put_u8(h.ptype.to_byte());
        buf.put_u16(h.packet_id);
        buf.put_u8(h.ttl);
        buf.put_u16(h.origin.raw());
        buf.put_u16(h.final_dst.raw());
        buf.put_u8(h.seg_index);
        buf.put_u8(h.seg_total);
        buf.put_u8(h.flags);
        match &self.body {
            Body::Routing(entries) => {
                for e in entries {
                    buf.put_u16(e.address.raw());
                    buf.put_u8(e.metric);
                    buf.put_u16(e.via.raw());
                }
            }
            Body::Data(payload) => buf.put_slice(payload),
            Body::Ack {
                acked_origin,
                acked_id,
            } => {
                buf.put_u16(acked_origin.raw());
                buf.put_u16(*acked_id);
            }
        }
        buf.freeze()
    }

    /// Decode from bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncation, unknown type byte,
    /// inconsistent body length or invalid segmentation fields.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        if bytes.len() < HEADER_LEN {
            return Err(DecodeError::Truncated);
        }
        let u16_at = |i: usize| u16::from_be_bytes([bytes[i], bytes[i + 1]]);
        let ptype = PacketType::from_byte(bytes[4]).ok_or(DecodeError::UnknownType(bytes[4]))?;
        let header = Header {
            link_dst: NodeId(u16_at(0)),
            link_src: NodeId(u16_at(2)),
            ptype,
            packet_id: u16_at(5),
            ttl: bytes[7],
            origin: NodeId(u16_at(8)),
            final_dst: NodeId(u16_at(10)),
            seg_index: bytes[12],
            seg_total: bytes[13],
            flags: bytes[14],
        };
        if header.seg_total == 0 || header.seg_index >= header.seg_total {
            return Err(DecodeError::BadSegment);
        }
        let body_bytes = &bytes[HEADER_LEN..];
        let body = match ptype {
            PacketType::Routing => {
                if !body_bytes.len().is_multiple_of(RouteEntry::WIRE_LEN) {
                    return Err(DecodeError::BadBody);
                }
                let entries = body_bytes
                    .chunks_exact(RouteEntry::WIRE_LEN)
                    .map(|c| RouteEntry {
                        address: NodeId(u16::from_be_bytes([c[0], c[1]])),
                        metric: c[2],
                        via: NodeId(u16::from_be_bytes([c[3], c[4]])),
                    })
                    .collect();
                Body::Routing(entries)
            }
            PacketType::Data => Body::Data(Bytes::copy_from_slice(body_bytes)),
            PacketType::Ack => {
                if body_bytes.len() != 4 {
                    return Err(DecodeError::BadBody);
                }
                Body::Ack {
                    acked_origin: NodeId(u16::from_be_bytes([body_bytes[0], body_bytes[1]])),
                    acked_id: u16::from_be_bytes([body_bytes[2], body_bytes[3]]),
                }
            }
        };
        Ok(Packet { header, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries() -> Vec<RouteEntry> {
        vec![
            RouteEntry {
                address: NodeId(0x0002),
                metric: 1,
                via: NodeId(0x0002),
            },
            RouteEntry {
                address: NodeId(0x0003),
                metric: 2,
                via: NodeId(0x0002),
            },
        ]
    }

    #[test]
    fn routing_roundtrip() {
        let p = Packet::routing(NodeId(1), 42, entries());
        let decoded = Packet::decode(&p.encode()).unwrap();
        assert_eq!(p, decoded);
    }

    #[test]
    fn data_roundtrip() {
        let p = Packet::data(
            NodeId(2),
            NodeId(1),
            NodeId(1),
            NodeId(5),
            7,
            4,
            0,
            1,
            FLAG_ACK_REQUEST,
            Bytes::from_static(b"telemetry payload"),
        );
        let decoded = Packet::decode(&p.encode()).unwrap();
        assert_eq!(p, decoded);
    }

    #[test]
    fn ack_roundtrip() {
        let p = Packet::ack(
            NodeId(2),
            NodeId(5),
            NodeId(5),
            NodeId(1),
            9,
            4,
            NodeId(1),
            7,
        );
        let decoded = Packet::decode(&p.encode()).unwrap();
        assert_eq!(p, decoded);
        if let Body::Ack {
            acked_origin,
            acked_id,
        } = decoded.body
        {
            assert_eq!(acked_origin, NodeId(1));
            assert_eq!(acked_id, 7);
        } else {
            panic!("wrong body");
        }
    }

    #[test]
    fn encoded_len_matches_reality() {
        let p = Packet::routing(NodeId(1), 1, entries());
        assert_eq!(p.encoded_len(), p.encode().len());
        let p = Packet::data(
            NodeId(2),
            NodeId(1),
            NodeId(1),
            NodeId(5),
            7,
            4,
            0,
            1,
            0,
            Bytes::from_static(b"xyz"),
        );
        assert_eq!(p.encoded_len(), HEADER_LEN + 3);
        assert_eq!(p.encoded_len(), p.encode().len());
    }

    #[test]
    fn truncated_header_rejected() {
        assert_eq!(Packet::decode(&[0u8; 5]), Err(DecodeError::Truncated));
        assert_eq!(Packet::decode(&[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut bytes = Packet::routing(NodeId(1), 1, vec![]).encode().to_vec();
        bytes[4] = 0x7F;
        assert_eq!(Packet::decode(&bytes), Err(DecodeError::UnknownType(0x7F)));
    }

    #[test]
    fn bad_routing_body_rejected() {
        let mut bytes = Packet::routing(NodeId(1), 1, entries()).encode().to_vec();
        bytes.pop();
        assert_eq!(Packet::decode(&bytes), Err(DecodeError::BadBody));
    }

    #[test]
    fn bad_ack_body_rejected() {
        let mut bytes = Packet::ack(
            NodeId(2),
            NodeId(5),
            NodeId(5),
            NodeId(1),
            9,
            4,
            NodeId(1),
            7,
        )
        .encode()
        .to_vec();
        bytes.push(0);
        assert_eq!(Packet::decode(&bytes), Err(DecodeError::BadBody));
    }

    #[test]
    fn bad_segmentation_rejected() {
        let mut bytes = Packet::data(
            NodeId(2),
            NodeId(1),
            NodeId(1),
            NodeId(5),
            7,
            4,
            0,
            1,
            0,
            Bytes::new(),
        )
        .encode()
        .to_vec();
        bytes[13] = 0; // seg_total = 0
        assert_eq!(Packet::decode(&bytes), Err(DecodeError::BadSegment));
        bytes[13] = 2;
        bytes[12] = 2; // seg_index == seg_total
        assert_eq!(Packet::decode(&bytes), Err(DecodeError::BadSegment));
    }

    #[test]
    fn empty_routing_packet_is_valid() {
        let p = Packet::routing(NodeId(9), 0, vec![]);
        let decoded = Packet::decode(&p.encode()).unwrap();
        assert_eq!(decoded.body, Body::Routing(vec![]));
        assert_eq!(decoded.encoded_len(), HEADER_LEN);
    }

    #[test]
    fn broadcast_header_fields() {
        let p = Packet::routing(NodeId(3), 5, vec![]);
        assert!(p.header.link_dst.is_broadcast());
        assert_eq!(p.header.origin, NodeId(3));
        assert_eq!(p.header.ptype, PacketType::Routing);
    }

    #[test]
    #[should_panic(expected = "payload too large")]
    fn oversized_payload_panics() {
        let _ = Packet::data(
            NodeId(2),
            NodeId(1),
            NodeId(1),
            NodeId(5),
            7,
            4,
            0,
            1,
            0,
            Bytes::from(vec![0u8; MAX_SEGMENT_PAYLOAD + 1]),
        );
    }

    #[test]
    fn display_of_types() {
        assert_eq!(PacketType::Routing.to_string(), "ROUTING");
        assert_eq!(PacketType::Data.to_string(), "DATA");
        assert_eq!(PacketType::Ack.to_string(), "ACK");
    }
}
