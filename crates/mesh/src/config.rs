//! Mesh protocol configuration and traffic generation patterns.

use loramon_sim::NodeId;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Protocol timing and behaviour knobs. Defaults follow the LoRaMesher
/// firmware where it documents a value, and sensible EU868 practice
/// elsewhere.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeshConfig {
    /// Period between routing broadcasts (default 60 s).
    pub hello_period: Duration,
    /// Uniform random extra delay added to each hello (desynchronizes
    /// neighbors; default 5 s).
    pub hello_jitter: Duration,
    /// Routes not refreshed within this window are dropped
    /// (default 10 min).
    pub route_timeout: Duration,
    /// Initial TTL of originated packets (default 10).
    pub max_ttl: u8,
    /// End-to-end ACK retry budget for reliable messages (default 3).
    pub max_retries: u32,
    /// How long to wait for an end-to-end ACK before retransmitting
    /// (default 12 s — several worst-case multi-hop airtimes).
    pub ack_timeout: Duration,
    /// Base CSMA backoff when the channel is sensed busy (default 300 ms;
    /// the k-th attempt waits a uniform random time up to `2^k` × base).
    pub csma_backoff: Duration,
    /// CSMA attempts before dropping a frame (default 6).
    pub csma_max_attempts: u32,
    /// Outbound queue capacity in frames (default 32).
    pub queue_capacity: usize,
    /// Period of the observer poll tick (default 1 s).
    pub poll_period: Duration,
    /// Minimum link margin (dB above the receiver's sensitivity) a
    /// routing broadcast must arrive with before routes through its
    /// sender are accepted (default 0 = accept anything demodulable).
    /// Raising this keeps hop-count routing off marginal shortcut links.
    pub min_link_margin_db: f64,
}

impl MeshConfig {
    /// The default configuration (see field docs).
    pub fn new() -> Self {
        MeshConfig {
            hello_period: Duration::from_secs(60),
            hello_jitter: Duration::from_secs(5),
            route_timeout: Duration::from_secs(600),
            max_ttl: 10,
            max_retries: 3,
            ack_timeout: Duration::from_secs(12),
            csma_backoff: Duration::from_millis(300),
            csma_max_attempts: 6,
            queue_capacity: 32,
            poll_period: Duration::from_secs(1),
            min_link_margin_db: 0.0,
        }
    }

    /// A fast-converging configuration for short simulations and tests:
    /// 10 s hellos, 60 s route timeout.
    pub fn fast() -> Self {
        MeshConfig {
            hello_period: Duration::from_secs(10),
            hello_jitter: Duration::from_secs(2),
            route_timeout: Duration::from_secs(60),
            ack_timeout: Duration::from_secs(6),
            ..MeshConfig::new()
        }
    }

    /// Set the hello period (builder style).
    pub fn with_hello_period(mut self, period: Duration) -> Self {
        self.hello_period = period;
        self
    }

    /// Set the route timeout (builder style).
    pub fn with_route_timeout(mut self, timeout: Duration) -> Self {
        self.route_timeout = timeout;
        self
    }

    /// Set the initial TTL (builder style).
    pub fn with_max_ttl(mut self, ttl: u8) -> Self {
        self.max_ttl = ttl;
        self
    }

    /// Set the minimum routing-link margin in dB (builder style).
    ///
    /// # Panics
    ///
    /// Panics if negative.
    pub fn with_min_link_margin_db(mut self, margin: f64) -> Self {
        assert!(margin >= 0.0, "margin cannot be negative");
        self.min_link_margin_db = margin;
        self
    }
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig::new()
    }
}

/// Where pattern-generated traffic is addressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficDestination {
    /// A fixed node (typically the gateway).
    Fixed(NodeId),
    /// A uniformly random destination from the current routing table.
    RandomPeer,
}

/// A periodic application workload originated by a node — the "sensor
/// sends a reading every N seconds" traffic of the paper's scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficPattern {
    /// Destination selection.
    pub destination: TrafficDestination,
    /// Mean period between messages.
    pub period: Duration,
    /// Uniform random jitter added to each period.
    pub jitter: Duration,
    /// Application payload length in bytes.
    pub payload_len: usize,
    /// Delay before the first message (lets routing converge).
    pub start_delay: Duration,
    /// Whether messages request end-to-end ACKs.
    pub reliable: bool,
}

impl TrafficPattern {
    /// Periodic unreliable telemetry of `payload_len` bytes to a fixed
    /// destination.
    pub fn to_gateway(gateway: NodeId, period: Duration, payload_len: usize) -> Self {
        TrafficPattern {
            destination: TrafficDestination::Fixed(gateway),
            period,
            jitter: Duration::from_millis(period.as_millis() as u64 / 10),
            payload_len,
            start_delay: Duration::from_secs(90),
            reliable: false,
        }
    }

    /// Make the pattern reliable (builder style).
    pub fn with_reliable(mut self, reliable: bool) -> Self {
        self.reliable = reliable;
        self
    }

    /// Set the start delay (builder style).
    pub fn with_start_delay(mut self, delay: Duration) -> Self {
        self.start_delay = delay;
        self
    }

    /// Set the jitter (builder style).
    pub fn with_jitter(mut self, jitter: Duration) -> Self {
        self.jitter = jitter;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = MeshConfig::new();
        assert!(c.hello_period > c.hello_jitter);
        assert!(c.route_timeout > c.hello_period);
        assert!(c.max_ttl > 1);
        assert!(c.queue_capacity > 0);
    }

    #[test]
    fn fast_config_is_faster() {
        let c = MeshConfig::fast();
        assert!(c.hello_period < MeshConfig::new().hello_period);
        assert!(c.route_timeout >= 3 * c.hello_period);
    }

    #[test]
    fn builders_chain() {
        let c = MeshConfig::new()
            .with_hello_period(Duration::from_secs(30))
            .with_max_ttl(5);
        assert_eq!(c.hello_period, Duration::from_secs(30));
        assert_eq!(c.max_ttl, 5);
    }

    #[test]
    fn gateway_pattern() {
        let p = TrafficPattern::to_gateway(NodeId(9), Duration::from_secs(120), 24);
        assert_eq!(p.destination, TrafficDestination::Fixed(NodeId(9)));
        assert_eq!(p.payload_len, 24);
        assert!(!p.reliable);
        assert!(p.with_reliable(true).reliable);
    }
}
