//! # loramon-mesh
//!
//! A distance-vector LoRa mesh protocol in the style of LoRaMesher (the
//! firmware used by the paper's testbed), running on `loramon-sim`.
//!
//! Nodes periodically broadcast their routing tables; data is forwarded
//! hop by hop with TTLs; payloads larger than one LoRa frame are
//! segmented and reassembled; reliable messages use end-to-end ACKs with
//! retransmission; transmissions go through CSMA with exponential
//! backoff and the regional duty-cycle regulator.
//!
//! The [`MeshObserver`] hook exposes exactly what the paper's monitoring
//! client records: every packet crossing the node's radio, plus periodic
//! state snapshots.
//!
//! ## Example
//!
//! ```
//! use loramon_mesh::{MeshConfig, MeshNode, TrafficPattern};
//! use loramon_sim::{NodeId, SimBuilder};
//! use loramon_phy::{Position, RadioConfig};
//! use std::time::Duration;
//!
//! let mut sim = SimBuilder::new().seed(1).build();
//! let cfg = RadioConfig::mesher_default();
//! let gateway = NodeId(2);
//! let sensor = MeshNode::new(MeshConfig::fast()).with_traffic(
//!     TrafficPattern::to_gateway(gateway, Duration::from_secs(60), 16),
//! );
//! sim.add_node(Position::new(0.0, 0.0), cfg, Box::new(sensor));
//! sim.add_node(Position::new(300.0, 0.0), cfg, Box::new(MeshNode::new(MeshConfig::fast())));
//! sim.run_for(Duration::from_secs(300));
//! let gw: &MeshNode = sim.app_as(gateway).unwrap();
//! assert!(!gw.messages().is_empty());
//! ```

pub mod config;
pub mod node;
pub mod observer;
pub mod packet;
pub mod routing;

pub use config::{MeshConfig, TrafficDestination, TrafficPattern};
pub use node::{MeshNode, MeshStats, Message};
pub use observer::{
    Direction, MeshObserver, MeshSnapshot, NullObserver, PacketEvent, RecordingObserver,
};
pub use packet::{
    Body, DecodeError, Header, Packet, PacketType, FLAG_ACK_REQUEST, HEADER_LEN, MAX_PACKET_LEN,
    MAX_SEGMENT_PAYLOAD,
};
pub use routing::{Route, RouteEntry, RoutingTable, INFINITY_METRIC};
