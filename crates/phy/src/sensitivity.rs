//! Receiver sensitivity and SNR demodulation floors for SX127x-class
//! transceivers.
//!
//! Values follow the SX1276 datasheet (table 10 and the LoRa modem
//! characteristics). A reception is possible when the received power is
//! above [`sensitivity_dbm`] *and* the SINR is above [`snr_floor_db`].

use crate::params::{Bandwidth, SpreadingFactor};

/// Minimum SNR (dB) at which a given spreading factor still demodulates.
///
/// Each SF step buys 2.5 dB: SF7 needs −7.5 dB, SF12 works down to −20 dB.
pub fn snr_floor_db(sf: SpreadingFactor) -> f64 {
    match sf {
        SpreadingFactor::Sf7 => -7.5,
        SpreadingFactor::Sf8 => -10.0,
        SpreadingFactor::Sf9 => -12.5,
        SpreadingFactor::Sf10 => -15.0,
        SpreadingFactor::Sf11 => -17.5,
        SpreadingFactor::Sf12 => -20.0,
    }
}

/// Receiver sensitivity (dBm) for a spreading-factor/bandwidth pair.
///
/// Derived as `noise_floor(BW) + snr_floor(SF)`, which reproduces the
/// datasheet table within a fraction of a dB (e.g. SF7/125 kHz ≈ −124.5,
/// SF12/125 kHz ≈ −137).
pub fn sensitivity_dbm(sf: SpreadingFactor, bw: Bandwidth) -> f64 {
    crate::noise_floor_dbm(bw.hz()) + snr_floor_db(sf)
}

/// Link margin (dB) of a reception: how far above sensitivity it landed.
///
/// Negative margin means the packet is below the demodulation threshold.
pub fn link_margin_db(rssi_dbm: f64, sf: SpreadingFactor, bw: Bandwidth) -> f64 {
    rssi_dbm - sensitivity_dbm(sf, bw)
}

/// The most robust (highest) spreading factor *not* needed for the given
/// RSSI — i.e. the fastest SF that still closes the link with `margin_db`
/// of headroom. Returns `None` if even SF12 cannot close the link.
///
/// This is the building block for adaptive-data-rate style decisions and
/// for the PDR-vs-SF sweep (R-Fig-5).
pub fn fastest_sf_closing_link(
    rssi_dbm: f64,
    bw: Bandwidth,
    margin_db: f64,
) -> Option<SpreadingFactor> {
    SpreadingFactor::ALL
        .into_iter()
        .find(|&sf| rssi_dbm >= sensitivity_dbm(sf, bw) + margin_db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snr_floor_descends_by_2_5db_per_sf() {
        let floors: Vec<f64> = SpreadingFactor::ALL.into_iter().map(snr_floor_db).collect();
        for pair in floors.windows(2) {
            assert!((pair[0] - pair[1] - 2.5).abs() < 1e-9);
        }
    }

    #[test]
    fn sensitivity_sf7_125khz_near_datasheet() {
        let s = sensitivity_dbm(SpreadingFactor::Sf7, Bandwidth::Khz125);
        // Datasheet: -123 dBm (our 6 dB NF model gives -124.5).
        assert!((-126.0..=-122.0).contains(&s), "got {s}");
    }

    #[test]
    fn sensitivity_sf12_125khz_near_datasheet() {
        let s = sensitivity_dbm(SpreadingFactor::Sf12, Bandwidth::Khz125);
        // Datasheet: -136 dBm.
        assert!((-138.0..=-134.0).contains(&s), "got {s}");
    }

    #[test]
    fn sensitivity_improves_with_sf_and_degrades_with_bw() {
        let a = sensitivity_dbm(SpreadingFactor::Sf7, Bandwidth::Khz125);
        let b = sensitivity_dbm(SpreadingFactor::Sf12, Bandwidth::Khz125);
        assert!(b < a, "higher SF should be more sensitive");
        let c = sensitivity_dbm(SpreadingFactor::Sf7, Bandwidth::Khz500);
        assert!(c > a, "wider BW should be less sensitive");
    }

    #[test]
    fn link_margin_sign() {
        assert!(link_margin_db(-100.0, SpreadingFactor::Sf7, Bandwidth::Khz125) > 0.0);
        assert!(link_margin_db(-130.0, SpreadingFactor::Sf7, Bandwidth::Khz125) < 0.0);
    }

    #[test]
    fn fastest_sf_strong_signal_is_sf7() {
        assert_eq!(
            fastest_sf_closing_link(-80.0, Bandwidth::Khz125, 0.0),
            Some(SpreadingFactor::Sf7)
        );
    }

    #[test]
    fn fastest_sf_weak_signal_needs_higher_sf() {
        let sf = fastest_sf_closing_link(-130.0, Bandwidth::Khz125, 0.0).unwrap();
        assert!(sf > SpreadingFactor::Sf7);
    }

    #[test]
    fn fastest_sf_none_when_link_hopeless() {
        assert_eq!(
            fastest_sf_closing_link(-150.0, Bandwidth::Khz125, 0.0),
            None
        );
    }

    #[test]
    fn margin_requirement_pushes_sf_up() {
        let relaxed = fastest_sf_closing_link(-120.0, Bandwidth::Khz125, 0.0).unwrap();
        let strict = fastest_sf_closing_link(-120.0, Bandwidth::Khz125, 10.0).unwrap();
        assert!(strict >= relaxed);
    }
}
