//! Radio energy accounting.
//!
//! Nodes in the paper's testbed are battery-powered ESP32 + SX1276 boards;
//! the monitoring client reports a battery estimate in its node-status
//! snapshots. This model converts time spent in each radio state into
//! charge drawn, using SX1276 datasheet currents.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Radio operating states with distinct current draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RadioState {
    /// Radio powered down.
    Sleep,
    /// Standby/idle, crystal running.
    Idle,
    /// Receiving (or listening).
    Rx,
    /// Transmitting.
    Tx,
}

impl RadioState {
    /// All states.
    pub const ALL: [RadioState; 4] = [
        RadioState::Sleep,
        RadioState::Idle,
        RadioState::Rx,
        RadioState::Tx,
    ];
}

/// Current-draw model (milliamps per state) plus a battery capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    sleep_ma: f64,
    idle_ma: f64,
    rx_ma: f64,
    tx_ma: f64,
    battery_mah: f64,
}

impl EnergyModel {
    /// SX1276 at 14 dBm with an ESP32 host in light sleep:
    /// sleep 0.01 mA, idle 1.6 mA, rx 11.5 mA, tx 29 mA; 2500 mAh cell.
    pub fn sx1276_default() -> Self {
        EnergyModel {
            sleep_ma: 0.01,
            idle_ma: 1.6,
            rx_ma: 11.5,
            tx_ma: 29.0,
            battery_mah: 2500.0,
        }
    }

    /// Custom model.
    ///
    /// # Panics
    ///
    /// Panics if any current is negative or the battery capacity is not
    /// positive.
    pub fn new(sleep_ma: f64, idle_ma: f64, rx_ma: f64, tx_ma: f64, battery_mah: f64) -> Self {
        assert!(
            sleep_ma >= 0.0 && idle_ma >= 0.0 && rx_ma >= 0.0 && tx_ma >= 0.0,
            "currents cannot be negative"
        );
        assert!(battery_mah > 0.0, "battery capacity must be positive");
        EnergyModel {
            sleep_ma,
            idle_ma,
            rx_ma,
            tx_ma,
            battery_mah,
        }
    }

    /// Current draw (mA) in a state.
    pub fn current_ma(&self, state: RadioState) -> f64 {
        match state {
            RadioState::Sleep => self.sleep_ma,
            RadioState::Idle => self.idle_ma,
            RadioState::Rx => self.rx_ma,
            RadioState::Tx => self.tx_ma,
        }
    }

    /// Battery capacity in mAh.
    pub fn battery_mah(&self) -> f64 {
        self.battery_mah
    }

    /// Charge (mAh) consumed by spending `dur` in `state`.
    pub fn charge_mah(&self, state: RadioState, dur: Duration) -> f64 {
        self.current_ma(state) * dur.as_secs_f64() / 3600.0
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::sx1276_default()
    }
}

/// Running battery meter for a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatteryMeter {
    model: EnergyModel,
    consumed_mah: f64,
}

impl BatteryMeter {
    /// A full battery with the given model.
    pub fn new(model: EnergyModel) -> Self {
        BatteryMeter {
            model,
            consumed_mah: 0.0,
        }
    }

    /// Record time spent in a state.
    pub fn spend(&mut self, state: RadioState, dur: Duration) {
        self.consumed_mah += self.model.charge_mah(state, dur);
    }

    /// Total charge consumed so far (mAh).
    pub fn consumed_mah(&self) -> f64 {
        self.consumed_mah
    }

    /// Remaining battery fraction, clamped to `[0, 1]`.
    pub fn remaining_fraction(&self) -> f64 {
        (1.0 - self.consumed_mah / self.model.battery_mah()).clamp(0.0, 1.0)
    }

    /// Remaining battery as an integer percentage — the field the
    /// monitoring client reports.
    pub fn percent(&self) -> u8 {
        (self.remaining_fraction() * 100.0).round() as u8
    }

    /// Whether the battery is exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining_fraction() <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_currents_are_ordered() {
        let m = EnergyModel::sx1276_default();
        assert!(m.current_ma(RadioState::Sleep) < m.current_ma(RadioState::Idle));
        assert!(m.current_ma(RadioState::Idle) < m.current_ma(RadioState::Rx));
        assert!(m.current_ma(RadioState::Rx) < m.current_ma(RadioState::Tx));
    }

    #[test]
    fn one_hour_tx_draws_tx_current() {
        let m = EnergyModel::sx1276_default();
        let mah = m.charge_mah(RadioState::Tx, Duration::from_secs(3600));
        assert!((mah - 29.0).abs() < 1e-9);
    }

    #[test]
    fn meter_starts_full_and_depletes() {
        let mut meter = BatteryMeter::new(EnergyModel::sx1276_default());
        assert_eq!(meter.percent(), 100);
        assert!(!meter.is_empty());
        // 2500 mAh at 29 mA lasts ~86 h; spend 43 h in Tx → ~50%.
        meter.spend(RadioState::Tx, Duration::from_secs(43 * 3600));
        assert!((45..=55).contains(&meter.percent()), "{}", meter.percent());
    }

    #[test]
    fn meter_clamps_at_zero() {
        let mut meter = BatteryMeter::new(EnergyModel::new(0.0, 0.0, 0.0, 1000.0, 1.0));
        meter.spend(RadioState::Tx, Duration::from_secs(3600 * 10));
        assert_eq!(meter.percent(), 0);
        assert!(meter.is_empty());
        assert_eq!(meter.remaining_fraction(), 0.0);
    }

    #[test]
    fn sleep_barely_consumes() {
        let mut meter = BatteryMeter::new(EnergyModel::sx1276_default());
        meter.spend(RadioState::Sleep, Duration::from_secs(24 * 3600));
        assert_eq!(meter.percent(), 100);
        assert!(meter.consumed_mah() < 0.5);
    }

    #[test]
    #[should_panic(expected = "battery")]
    fn zero_battery_panics() {
        let _ = EnergyModel::new(0.0, 1.0, 2.0, 3.0, 0.0);
    }

    #[test]
    fn charge_scales_linearly_with_time() {
        let m = EnergyModel::sx1276_default();
        let one = m.charge_mah(RadioState::Rx, Duration::from_secs(100));
        let two = m.charge_mah(RadioState::Rx, Duration::from_secs(200));
        assert!((two - 2.0 * one).abs() < 1e-12);
    }
}
