//! Packet-overlap and capture-effect decisions.
//!
//! LoRa receivers can survive a collision if one packet is sufficiently
//! stronger than the sum of its interferers (the *capture effect*), and
//! transmissions on different spreading factors are quasi-orthogonal. This
//! module encodes those rules; the simulator's channel feeds it every
//! overlap it observes.

use crate::params::RadioConfig;
use serde::{Deserialize, Serialize};

/// Power ratio (dB) a packet must hold over the aggregate interference to
/// be captured. 6 dB is the commonly used SX127x co-SF threshold.
pub const DEFAULT_CAPTURE_THRESHOLD_DB: f64 = 6.0;

/// Cross-SF rejection (dB): interference on a *different* spreading factor
/// is attenuated by this much before being summed. LoRa SFs are
/// quasi-orthogonal, not perfectly so.
pub const DEFAULT_CROSS_SF_REJECTION_DB: f64 = 16.0;

/// Outcome of evaluating a reception against its interferers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CaptureOutcome {
    /// No interference worth mentioning; packet is received cleanly.
    Clean,
    /// Interference present, but the packet holds the capture threshold.
    Captured,
    /// Packet lost to the collision.
    Lost,
}

impl CaptureOutcome {
    /// Whether the packet survives (clean or captured).
    pub fn survives(self) -> bool {
        !matches!(self, CaptureOutcome::Lost)
    }
}

/// One interfering transmission overlapping a reception.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interferer {
    /// Received power of the interferer at the victim receiver, in dBm.
    pub power_dbm: f64,
    /// Whether the interferer shares the victim's SF (and channel).
    pub same_sf: bool,
    /// Whether the overlap touches the victim's preamble/header region
    /// (more damaging than payload-only overlap).
    pub overlaps_preamble: bool,
}

/// Collision model configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollisionModel {
    capture_threshold_db: f64,
    cross_sf_rejection_db: f64,
    /// If `true`, any same-SF overlap on the preamble kills the packet
    /// regardless of power (pessimistic-sync model).
    strict_preamble: bool,
}

impl CollisionModel {
    /// The default model: 6 dB capture, 16 dB cross-SF rejection,
    /// power-based preamble survival.
    pub fn new() -> Self {
        CollisionModel {
            capture_threshold_db: DEFAULT_CAPTURE_THRESHOLD_DB,
            cross_sf_rejection_db: DEFAULT_CROSS_SF_REJECTION_DB,
            strict_preamble: false,
        }
    }

    /// Set the co-SF capture threshold in dB.
    ///
    /// # Panics
    ///
    /// Panics if negative.
    pub fn with_capture_threshold_db(mut self, db: f64) -> Self {
        assert!(db >= 0.0, "capture threshold cannot be negative");
        self.capture_threshold_db = db;
        self
    }

    /// Set the cross-SF rejection in dB.
    pub fn with_cross_sf_rejection_db(mut self, db: f64) -> Self {
        assert!(db >= 0.0, "rejection cannot be negative");
        self.cross_sf_rejection_db = db;
        self
    }

    /// Enable the pessimistic model in which any same-SF preamble overlap
    /// destroys the packet.
    pub fn with_strict_preamble(mut self, strict: bool) -> Self {
        self.strict_preamble = strict;
        self
    }

    /// Capture threshold in dB.
    pub fn capture_threshold_db(&self) -> f64 {
        self.capture_threshold_db
    }

    /// Aggregate interference power in dBm after cross-SF rejection.
    ///
    /// Returns `None` when there are no interferers.
    pub fn aggregate_interference_dbm(&self, interferers: &[Interferer]) -> Option<f64> {
        if interferers.is_empty() {
            return None;
        }
        let total_mw: f64 = interferers
            .iter()
            .map(|i| {
                let effective = if i.same_sf {
                    i.power_dbm
                } else {
                    i.power_dbm - self.cross_sf_rejection_db
                };
                10f64.powf(effective / 10.0)
            })
            .sum();
        Some(10.0 * total_mw.log10())
    }

    /// Decide whether a reception at `victim_power_dbm` survives the given
    /// interferers.
    pub fn evaluate(&self, victim_power_dbm: f64, interferers: &[Interferer]) -> CaptureOutcome {
        let Some(agg) = self.aggregate_interference_dbm(interferers) else {
            return CaptureOutcome::Clean;
        };
        if self.strict_preamble && interferers.iter().any(|i| i.same_sf && i.overlaps_preamble) {
            return CaptureOutcome::Lost;
        }
        // Interference far below the victim is negligible noise, not a
        // "capture": report Clean when the margin is very large.
        let margin = victim_power_dbm - agg;
        if margin >= self.capture_threshold_db + 20.0 {
            CaptureOutcome::Clean
        } else if margin >= self.capture_threshold_db {
            CaptureOutcome::Captured
        } else {
            CaptureOutcome::Lost
        }
    }

    /// Convenience check that two configurations even interact: packets on
    /// different frequencies never collide.
    pub fn interacts(a: &RadioConfig, b: &RadioConfig) -> bool {
        (a.frequency_hz() - b.frequency_hz()).abs() < f64::from(a.bw().khz() * 1000 / 2)
    }
}

impl Default for CollisionModel {
    fn default() -> Self {
        CollisionModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Bandwidth, CodingRate, RadioConfig, SpreadingFactor};

    fn same_sf(power_dbm: f64) -> Interferer {
        Interferer {
            power_dbm,
            same_sf: true,
            overlaps_preamble: false,
        }
    }

    #[test]
    fn no_interferers_is_clean() {
        let m = CollisionModel::new();
        assert_eq!(m.evaluate(-100.0, &[]), CaptureOutcome::Clean);
    }

    #[test]
    fn strong_victim_captures_weak_interferer() {
        let m = CollisionModel::new();
        let out = m.evaluate(-80.0, &[same_sf(-90.0)]);
        assert_eq!(out, CaptureOutcome::Captured);
        assert!(out.survives());
    }

    #[test]
    fn near_equal_powers_destroy_both() {
        let m = CollisionModel::new();
        let out = m.evaluate(-85.0, &[same_sf(-86.0)]);
        assert_eq!(out, CaptureOutcome::Lost);
        assert!(!out.survives());
    }

    #[test]
    fn capture_threshold_is_a_boundary() {
        let m = CollisionModel::new();
        assert_eq!(
            m.evaluate(-80.0, &[same_sf(-86.0)]),
            CaptureOutcome::Captured
        );
        assert_eq!(m.evaluate(-80.0, &[same_sf(-85.9)]), CaptureOutcome::Lost);
    }

    #[test]
    fn far_below_interference_counts_as_clean() {
        let m = CollisionModel::new();
        assert_eq!(m.evaluate(-60.0, &[same_sf(-120.0)]), CaptureOutcome::Clean);
    }

    #[test]
    fn interference_aggregates_in_linear_domain() {
        let m = CollisionModel::new();
        // Two equal interferers sum to +3 dB.
        let agg = m
            .aggregate_interference_dbm(&[same_sf(-90.0), same_sf(-90.0)])
            .unwrap();
        assert!((agg + 87.0).abs() < 0.05, "got {agg}");
    }

    #[test]
    fn many_weak_interferers_eventually_kill() {
        let m = CollisionModel::new();
        // One -92 dBm interferer: victim at -88 has only 4 dB margin → lost.
        // But check aggregation: 8 interferers at -98 sum to -89.
        let crowd: Vec<Interferer> = (0..8).map(|_| same_sf(-98.0)).collect();
        let out = m.evaluate(-88.0, &crowd);
        assert_eq!(out, CaptureOutcome::Lost);
        // A single one of them would have been survivable (10 dB margin).
        assert!(m.evaluate(-88.0, &crowd[..1]).survives());
    }

    #[test]
    fn cross_sf_interference_is_attenuated() {
        let m = CollisionModel::new();
        let cross = Interferer {
            power_dbm: -85.0,
            same_sf: false,
            overlaps_preamble: false,
        };
        // Same power on another SF is rejected by 16 dB → survives.
        assert!(m.evaluate(-85.0, &[cross]).survives());
        // On the same SF it would be fatal.
        assert!(!m.evaluate(-85.0, &[same_sf(-85.0)]).survives());
    }

    #[test]
    fn strict_preamble_overrides_power() {
        let m = CollisionModel::new().with_strict_preamble(true);
        let i = Interferer {
            power_dbm: -120.0,
            same_sf: true,
            overlaps_preamble: true,
        };
        assert_eq!(m.evaluate(-60.0, &[i]), CaptureOutcome::Lost);
        // Payload-only overlap still follows power rules.
        assert!(m.evaluate(-60.0, &[same_sf(-120.0)]).survives());
    }

    #[test]
    fn different_frequencies_do_not_interact() {
        let a = RadioConfig::mesher_default();
        let b = a.with_frequency_hz(868_300_000.0);
        assert!(!CollisionModel::interacts(&a, &b));
        assert!(CollisionModel::interacts(&a, &a));
    }

    #[test]
    fn cross_sf_config_on_same_freq_interacts() {
        let a = RadioConfig::mesher_default();
        let b = RadioConfig::new(SpreadingFactor::Sf9, Bandwidth::Khz125, CodingRate::Cr4_5);
        assert!(CollisionModel::interacts(&a, &b));
    }
}
