//! Duty-cycle regulation.
//!
//! EU868 devices may occupy the channel for at most 1% of time. The
//! regulator tracks transmissions over a sliding window and answers "may I
//! transmit now, and if not, when?" — both the mesh layer and the in-band
//! monitoring transport consult it.

use std::collections::VecDeque;
use std::time::Duration;

/// Sliding-window duty-cycle regulator.
///
/// Time is expressed in microseconds since simulation start (the
/// simulator's clock domain), keeping this type `no_std`-portable in
/// spirit: a firmware port would feed it `millis()`.
#[derive(Debug, Clone)]
pub struct DutyCycleRegulator {
    /// Allowed fraction of airtime within the window (e.g. 0.01).
    duty_cycle: f64,
    /// Window length in µs (the ETSI reference hour by default).
    window_us: u64,
    /// Completed transmissions: (start_us, duration_us).
    history: VecDeque<(u64, u64)>,
    /// Total airtime ever spent, for statistics.
    lifetime_airtime_us: u64,
}

impl DutyCycleRegulator {
    /// A regulator for the given duty-cycle fraction over a 1-hour window.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < duty_cycle <= 1`.
    pub fn new(duty_cycle: f64) -> Self {
        Self::with_window(duty_cycle, Duration::from_secs(3600))
    }

    /// A regulator with an explicit window length.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < duty_cycle <= 1` and the window is non-zero.
    pub fn with_window(duty_cycle: f64, window: Duration) -> Self {
        assert!(
            duty_cycle > 0.0 && duty_cycle <= 1.0,
            "duty cycle must be in (0, 1], got {duty_cycle}"
        );
        assert!(!window.is_zero(), "window must be non-zero");
        DutyCycleRegulator {
            duty_cycle,
            window_us: window.as_micros() as u64,
            history: VecDeque::new(),
            lifetime_airtime_us: 0,
        }
    }

    /// The EU868 1% regulator.
    pub fn eu868() -> Self {
        DutyCycleRegulator::new(0.01)
    }

    /// An effectively unlimited regulator (duty cycle 1.0).
    pub fn unlimited() -> Self {
        DutyCycleRegulator::new(1.0)
    }

    /// The configured duty-cycle fraction.
    pub fn duty_cycle(&self) -> f64 {
        self.duty_cycle
    }

    /// Airtime budget per window, in µs.
    pub fn budget_us(&self) -> u64 {
        (self.window_us as f64 * self.duty_cycle) as u64
    }

    /// Airtime consumed within the window ending at `now_us`.
    pub fn consumed_us(&self, now_us: u64) -> u64 {
        let window_start = now_us.saturating_sub(self.window_us);
        self.history
            .iter()
            .map(|&(start, dur)| {
                let end = start + dur;
                if end <= window_start {
                    0
                } else {
                    // Count only the part inside the window.
                    end - start.max(window_start)
                }
            })
            .sum()
    }

    /// Total airtime ever recorded, in µs.
    pub fn lifetime_airtime_us(&self) -> u64 {
        self.lifetime_airtime_us
    }

    /// Whether a transmission of `airtime_us` may start at `now_us`.
    pub fn may_transmit(&self, now_us: u64, airtime_us: u64) -> bool {
        self.consumed_us(now_us) + airtime_us <= self.budget_us()
    }

    /// Earliest time at or after `now_us` when a transmission of
    /// `airtime_us` becomes permissible.
    ///
    /// Returns `None` when the packet alone exceeds the whole budget and
    /// will never be allowed.
    pub fn next_allowed_at(&self, now_us: u64, airtime_us: u64) -> Option<u64> {
        if airtime_us > self.budget_us() {
            return None;
        }
        if self.may_transmit(now_us, airtime_us) {
            return Some(now_us);
        }
        // Try the instants where history entries slide out of the window.
        let mut candidates: Vec<u64> = self
            .history
            .iter()
            .flat_map(|&(start, dur)| [start + self.window_us, start + dur + self.window_us])
            .filter(|&t| t > now_us)
            .collect();
        candidates.sort_unstable();
        for t in candidates {
            if self.may_transmit(t, airtime_us) {
                return Some(t);
            }
        }
        // Fallback: one full window after now everything has expired.
        Some(now_us + self.window_us)
    }

    /// Record a transmission that started at `start_us` and lasted
    /// `airtime_us`. Also prunes history that can no longer affect any
    /// future query.
    pub fn record_transmission(&mut self, start_us: u64, airtime_us: u64) {
        self.lifetime_airtime_us += airtime_us;
        self.history.push_back((start_us, airtime_us));
        let horizon = start_us.saturating_sub(2 * self.window_us);
        while let Some(&(s, d)) = self.history.front() {
            if s + d < horizon {
                self.history.pop_front();
            } else {
                break;
            }
        }
    }

    /// Current utilization as a fraction of the budget (1.0 = at the cap).
    pub fn utilization(&self, now_us: u64) -> f64 {
        self.consumed_us(now_us) as f64 / self.budget_us() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000;

    #[test]
    fn fresh_regulator_allows_transmission() {
        let r = DutyCycleRegulator::eu868();
        assert!(r.may_transmit(0, 56_000));
        assert_eq!(r.consumed_us(0), 0);
    }

    #[test]
    fn budget_is_one_percent_of_an_hour() {
        let r = DutyCycleRegulator::eu868();
        assert_eq!(r.budget_us(), 36 * SEC);
    }

    #[test]
    fn consumption_accumulates_and_blocks() {
        let mut r = DutyCycleRegulator::with_window(0.01, Duration::from_secs(100));
        // Budget: 1 s. Spend 0.9 s.
        r.record_transmission(0, 900_000);
        assert_eq!(r.consumed_us(SEC), 900_000);
        assert!(r.may_transmit(SEC, 100_000));
        assert!(!r.may_transmit(SEC, 100_001));
    }

    #[test]
    fn old_transmissions_slide_out_of_window() {
        let mut r = DutyCycleRegulator::with_window(0.01, Duration::from_secs(100));
        r.record_transmission(0, 1_000_000); // uses the whole budget
        assert!(!r.may_transmit(50 * SEC, 1));
        // After the window has fully passed the old tx, budget is free.
        assert!(r.may_transmit(101 * SEC, 1_000_000));
    }

    #[test]
    fn partial_window_overlap_counts_partially() {
        let mut r = DutyCycleRegulator::with_window(0.01, Duration::from_secs(100));
        r.record_transmission(0, 1_000_000);
        // At t=100.5s, the first 0.5 s of the tx has left the window.
        assert_eq!(r.consumed_us(100 * SEC + SEC / 2), 500_000);
    }

    #[test]
    fn next_allowed_at_now_when_free() {
        let r = DutyCycleRegulator::eu868();
        assert_eq!(r.next_allowed_at(123, 1000), Some(123));
    }

    #[test]
    fn next_allowed_waits_for_budget() {
        let mut r = DutyCycleRegulator::with_window(0.01, Duration::from_secs(100));
        r.record_transmission(0, 1_000_000);
        let t = r.next_allowed_at(2 * SEC, 500_000).unwrap();
        assert!(t > 2 * SEC);
        assert!(r.may_transmit(t, 500_000), "allowed at t={t}");
        // And it is the earliest candidate instant in the discrete set.
        assert!(!r.may_transmit(t - SEC, 500_000));
    }

    #[test]
    fn oversized_packet_never_allowed() {
        let r = DutyCycleRegulator::with_window(0.01, Duration::from_secs(1));
        // Budget is 10 ms; a 20 ms packet can never comply.
        assert_eq!(r.next_allowed_at(0, 20_000), None);
    }

    #[test]
    fn lifetime_airtime_tracks_everything() {
        let mut r = DutyCycleRegulator::eu868();
        r.record_transmission(0, 1000);
        r.record_transmission(10 * SEC, 2000);
        assert_eq!(r.lifetime_airtime_us(), 3000);
    }

    #[test]
    fn utilization_fraction() {
        let mut r = DutyCycleRegulator::with_window(0.5, Duration::from_secs(10));
        // Budget 5 s; consume 1 s → 20%.
        r.record_transmission(0, SEC);
        assert!((r.utilization(2 * SEC) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn unlimited_regulator_never_blocks() {
        let mut r = DutyCycleRegulator::unlimited();
        for i in 0..100 {
            assert!(r.may_transmit(i * SEC, SEC / 2));
            r.record_transmission(i * SEC, SEC / 2);
        }
    }

    #[test]
    #[should_panic(expected = "duty cycle")]
    fn zero_duty_cycle_panics() {
        let _ = DutyCycleRegulator::new(0.0);
    }

    #[test]
    fn history_is_pruned() {
        let mut r = DutyCycleRegulator::with_window(0.01, Duration::from_secs(1));
        for i in 0..10_000u64 {
            r.record_transmission(i * SEC, 100);
        }
        assert!(r.history.len() < 100, "history grew to {}", r.history.len());
    }
}
