//! Time-on-air computation using the Semtech SX127x formula
//! (AN1200.13 / SX1276 datasheet §4.1.1.7).
//!
//! The monitoring system reports per-packet airtime to quantify channel
//! occupancy, and the duty-cycle regulator consumes these values.

use crate::params::{HeaderMode, RadioConfig};
use std::time::Duration;

/// Number of payload symbols for a packet of `payload_len` bytes.
///
/// Implements
/// `n = 8 + max(ceil((8·PL − 4·SF + 28 + 16·CRC − 20·IH) / (4·(SF − 2·DE))) · (CR + 4), 0)`.
pub fn payload_symbols(config: &RadioConfig, payload_len: usize) -> u32 {
    let pl = payload_len as i64;
    let sf = i64::from(config.sf().value());
    let crc = if config.crc_enabled() { 1 } else { 0 };
    let ih = match config.header() {
        HeaderMode::Explicit => 0,
        HeaderMode::Implicit => 1,
    };
    let de = if config.low_data_rate_optimize() {
        1
    } else {
        0
    };
    let cr = i64::from(config.cr().cr());

    let numerator = 8 * pl - 4 * sf + 28 + 16 * crc - 20 * ih;
    let denominator = 4 * (sf - 2 * de);
    let ceil_div = if numerator > 0 {
        (numerator + denominator - 1) / denominator
    } else {
        0
    };
    let extra = (ceil_div * (cr + 4)).max(0);
    (8 + extra) as u32
}

/// Preamble duration.
///
/// `(n_preamble + 4.25) · T_symbol` — the 4.25 accounts for the two sync
/// symbols and the 2.25-symbol sync word tail.
pub fn preamble_duration(config: &RadioConfig) -> Duration {
    let symbols = f64::from(config.preamble_symbols()) + 4.25;
    Duration::from_secs_f64(symbols * config.symbol_time_s())
}

/// Total time-on-air for a packet of `payload_len` bytes.
///
/// ```
/// use loramon_phy::{RadioConfig, airtime::time_on_air};
///
/// // LoRaMesher default (SF7/125k/4:5), 20-byte payload: ~56.6 ms.
/// let toa = time_on_air(&RadioConfig::mesher_default(), 20);
/// assert!((toa.as_secs_f64() - 0.0566).abs() < 0.001);
/// ```
pub fn time_on_air(config: &RadioConfig, payload_len: usize) -> Duration {
    let payload = f64::from(payload_symbols(config, payload_len)) * config.symbol_time_s();
    preamble_duration(config) + Duration::from_secs_f64(payload)
}

/// Time-on-air expressed in whole microseconds — the resolution used by the
/// discrete-event simulator.
pub fn time_on_air_us(config: &RadioConfig, payload_len: usize) -> u64 {
    time_on_air(config, payload_len).as_micros() as u64
}

/// The largest payload (bytes) whose time-on-air stays within `budget`.
///
/// Returns `None` when even an empty payload exceeds the budget.
pub fn max_payload_within(config: &RadioConfig, budget: Duration) -> Option<usize> {
    if time_on_air(config, 0) > budget {
        return None;
    }
    // Airtime is monotonic in payload length; binary search the boundary.
    let (mut lo, mut hi) = (0usize, 255usize);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if time_on_air(config, mid) <= budget {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Bandwidth, CodingRate, HeaderMode, RadioConfig, SpreadingFactor};

    fn cfg(sf: SpreadingFactor) -> RadioConfig {
        RadioConfig::new(sf, Bandwidth::Khz125, CodingRate::Cr4_5)
    }

    #[test]
    fn preamble_sf7_is_12_5_ms() {
        // (8 + 4.25) * 1.024 ms = 12.544 ms
        let d = preamble_duration(&cfg(SpreadingFactor::Sf7));
        assert!((d.as_secs_f64() - 0.012544).abs() < 1e-6);
    }

    #[test]
    fn payload_symbols_empty_payload_has_floor_of_8() {
        // SF12: numerator 8*0 - 48 + 28 + 16 = -4 < 0 → just the 8-symbol floor.
        let n = payload_symbols(&cfg(SpreadingFactor::Sf12), 0);
        assert_eq!(n, 8);
    }

    #[test]
    fn known_value_sf7_20_bytes() {
        // Cross-checked against the Semtech LoRa calculator:
        // SF7, 125 kHz, CR4/5, explicit header, CRC on, preamble 8,
        // 20-byte payload → 56.58 ms.
        let toa = time_on_air(&cfg(SpreadingFactor::Sf7), 20);
        assert!((toa.as_secs_f64() - 0.05658).abs() < 2e-4, "got {toa:?}");
    }

    #[test]
    fn known_value_sf12_51_bytes() {
        // SF12, 125 kHz, CR4/5, LDRO on, 51-byte payload → ~2.47 s
        // (the longest EU868 packet at DR0).
        let toa = time_on_air(&cfg(SpreadingFactor::Sf12), 51);
        let s = toa.as_secs_f64();
        assert!((s - 2.4658).abs() < 0.005, "got {s}");
    }

    #[test]
    fn airtime_monotonic_in_payload() {
        for sf in SpreadingFactor::ALL {
            let c = cfg(sf);
            let mut prev = time_on_air(&c, 0);
            for len in 1..=255 {
                let cur = time_on_air(&c, len);
                assert!(cur >= prev, "{sf} len {len}");
                prev = cur;
            }
        }
    }

    #[test]
    fn airtime_monotonic_in_sf() {
        let mut prev = Duration::ZERO;
        for sf in SpreadingFactor::ALL {
            let cur = time_on_air(&cfg(sf), 32);
            assert!(cur > prev, "{sf}");
            prev = cur;
        }
    }

    #[test]
    fn higher_bandwidth_shortens_airtime() {
        let narrow = RadioConfig::new(SpreadingFactor::Sf9, Bandwidth::Khz125, CodingRate::Cr4_5);
        let wide = narrow.with_bw(Bandwidth::Khz500);
        assert!(time_on_air(&wide, 32) < time_on_air(&narrow, 32));
    }

    #[test]
    fn more_coding_overhead_lengthens_airtime() {
        let light = cfg(SpreadingFactor::Sf9);
        let heavy = light.with_cr(CodingRate::Cr4_8);
        assert!(time_on_air(&heavy, 32) > time_on_air(&light, 32));
    }

    #[test]
    fn implicit_header_saves_airtime() {
        let explicit = cfg(SpreadingFactor::Sf7);
        let implicit = explicit.with_header(HeaderMode::Implicit);
        assert!(time_on_air(&implicit, 32) < time_on_air(&explicit, 32));
    }

    #[test]
    fn crc_disabled_saves_airtime_or_equal() {
        let on = cfg(SpreadingFactor::Sf7);
        let off = on.with_crc(false);
        assert!(time_on_air(&off, 32) <= time_on_air(&on, 32));
    }

    #[test]
    fn max_payload_within_budget_is_tight() {
        let c = cfg(SpreadingFactor::Sf7);
        let budget = Duration::from_millis(100);
        let n = max_payload_within(&c, budget).unwrap();
        assert!(time_on_air(&c, n) <= budget);
        assert!(time_on_air(&c, n + 1) > budget);
    }

    #[test]
    fn max_payload_none_when_preamble_alone_too_long() {
        let c = cfg(SpreadingFactor::Sf12);
        assert_eq!(max_payload_within(&c, Duration::from_millis(1)), None);
    }

    #[test]
    fn micros_matches_duration() {
        let c = cfg(SpreadingFactor::Sf9);
        assert_eq!(
            time_on_air_us(&c, 48),
            time_on_air(&c, 48).as_micros() as u64
        );
    }
}
