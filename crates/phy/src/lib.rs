//! # loramon-phy
//!
//! LoRa physical-layer modeling for the `loramon` monitoring system.
//!
//! This crate is the radio substrate of the reproduction: everything the
//! monitoring system ultimately observes — received signal strength,
//! signal-to-noise ratio, packet airtime, collisions, duty-cycle budget —
//! is computed by the models in this crate. It is deliberately free of any
//! simulator dependency so the same types can describe a real radio.
//!
//! ## Modules
//!
//! * [`params`] — radio parameter types ([`SpreadingFactor`], [`Bandwidth`],
//!   [`CodingRate`], [`RadioConfig`]).
//! * [`adr`] — adaptive-data-rate controller (SF selection from SNR).
//! * [`airtime`] — the Semtech time-on-air formula.
//! * [`region`] — regional channel plans and duty-cycle rules (EU868, US915).
//! * [`propagation`] — positions, path-loss models and link budget.
//! * [`sensitivity`] — receiver sensitivity and SNR demodulation floors.
//! * [`collision`] — packet-overlap and capture-effect decisions.
//! * [`dutycycle`] — a duty-cycle regulator enforcing regional limits.
//! * [`energy`] — radio current-draw model for battery accounting.
//!
//! ## Example
//!
//! Compute the time-on-air of a 32-byte packet at SF9/125 kHz and check the
//! link budget over 2 km of suburban terrain:
//!
//! ```
//! use loramon_phy::{RadioConfig, SpreadingFactor, Bandwidth, CodingRate};
//! use loramon_phy::propagation::{LogDistance, PathLossModel, Position};
//!
//! let cfg = RadioConfig::new(SpreadingFactor::Sf9, Bandwidth::Khz125, CodingRate::Cr4_5);
//! let toa = loramon_phy::airtime::time_on_air(&cfg, 32);
//! assert!(toa.as_millis() > 100 && toa.as_millis() < 300);
//!
//! let model = LogDistance::suburban();
//! let a = Position::new(0.0, 0.0);
//! let b = Position::new(2000.0, 0.0);
//! let loss_db = model.path_loss_db(a.distance_to(b));
//! let rssi = cfg.tx_power_dbm() - loss_db;
//! assert!(rssi < -80.0);
//! ```

pub mod adr;
pub mod airtime;
pub mod collision;
pub mod dutycycle;
pub mod energy;
pub mod params;
pub mod propagation;
pub mod region;
pub mod sensitivity;

pub use adr::{AdrConfig, AdrController};
pub use airtime::time_on_air;
pub use collision::{CaptureOutcome, CollisionModel};
pub use dutycycle::DutyCycleRegulator;
pub use energy::EnergyModel;
pub use params::{Bandwidth, CodingRate, HeaderMode, RadioConfig, SpreadingFactor};
pub use propagation::{FreeSpace, LogDistance, PathLossModel, Position};
pub use region::{Region, RegionParams};
pub use sensitivity::{sensitivity_dbm, snr_floor_db};

/// Thermal noise floor in dBm for a given bandwidth in Hz, assuming a 6 dB
/// receiver noise figure (typical for SX127x-class transceivers).
///
/// `floor = -174 dBm/Hz + 10·log10(BW) + NF`.
///
/// ```
/// let f = loramon_phy::noise_floor_dbm(125_000.0);
/// assert!((f - (-117.0)).abs() < 0.5);
/// ```
pub fn noise_floor_dbm(bandwidth_hz: f64) -> f64 {
    const NOISE_FIGURE_DB: f64 = 6.0;
    -174.0 + 10.0 * bandwidth_hz.log10() + NOISE_FIGURE_DB
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_floor_at_125khz_matches_datasheet_ballpark() {
        // -174 + 10*log10(125e3) + 6 = -174 + 50.97 + 6 = -117.03
        let f = noise_floor_dbm(125_000.0);
        assert!((f + 117.03).abs() < 0.05, "got {f}");
    }

    #[test]
    fn noise_floor_scales_with_bandwidth() {
        let narrow = noise_floor_dbm(125_000.0);
        let wide = noise_floor_dbm(500_000.0);
        // Quadrupling bandwidth raises the floor by ~6 dB.
        assert!((wide - narrow - 6.02).abs() < 0.05);
    }
}
