//! Adaptive data rate (ADR) — choosing the spreading factor from
//! observed link quality.
//!
//! LoRaWAN networks adapt each device's SF to the measured SNR margin;
//! mesh deployments benefit the same way (faster links, less airtime,
//! fewer collisions). This controller implements the standard
//! LoRaWAN-style algorithm: take a high percentile of recent SNR
//! measurements, subtract the demodulation floor and a safety margin,
//! and step the SF down one notch per 2.5 dB of surplus.

use crate::params::SpreadingFactor;
use crate::sensitivity::snr_floor_db;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// ADR controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdrConfig {
    /// Safety margin (dB) kept above the SNR floor (default 10, the
    /// LoRaWAN `margin_db` default).
    pub margin_db: f64,
    /// How many recent SNR samples to consider (default 20).
    pub window: usize,
    /// Minimum samples before a recommendation is made (default 5).
    pub min_samples: usize,
}

impl Default for AdrConfig {
    fn default() -> Self {
        AdrConfig {
            margin_db: 10.0,
            window: 20,
            min_samples: 5,
        }
    }
}

/// Sliding-window ADR controller for one link.
#[derive(Debug, Clone)]
pub struct AdrController {
    config: AdrConfig,
    snrs: VecDeque<f64>,
}

impl AdrController {
    /// A controller with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `min_samples` is zero, or
    /// `min_samples > window`.
    pub fn new(config: AdrConfig) -> Self {
        assert!(config.window > 0, "window must be positive");
        assert!(
            config.min_samples > 0 && config.min_samples <= config.window,
            "min_samples must be in 1..=window"
        );
        AdrController {
            config,
            snrs: VecDeque::with_capacity(config.window),
        }
    }

    /// Record one SNR measurement (dB) from a received packet.
    pub fn record_snr(&mut self, snr_db: f64) {
        if self.snrs.len() >= self.config.window {
            self.snrs.pop_front();
        }
        self.snrs.push_back(snr_db);
    }

    /// Number of samples currently held.
    pub fn samples(&self) -> usize {
        self.snrs.len()
    }

    /// The link-quality statistic ADR uses: the maximum SNR of the
    /// window (LoRaWAN uses max; robust against the odd deep fade).
    pub fn snr_statistic(&self) -> Option<f64> {
        if self.snrs.len() < self.config.min_samples {
            return None;
        }
        self.snrs
            .iter()
            .copied()
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Recommend a spreading factor given the current operating SF.
    ///
    /// Returns `None` until enough samples have been seen. The
    /// recommendation can move *down* (faster) by several steps at once
    /// but only *up* (more robust) one step at a time, mirroring
    /// LoRaWAN's conservative upward behaviour.
    pub fn recommend(&self, current: SpreadingFactor) -> Option<SpreadingFactor> {
        let snr = self.snr_statistic()?;
        let floor = snr_floor_db(current);
        let surplus = snr - floor - self.config.margin_db;
        let steps = (surplus / 2.5).floor() as i64;
        let current_v = i64::from(current.value());
        let target = if steps >= 0 {
            // Surplus: go faster (lower SF), as far as it allows.
            (current_v - steps).max(7)
        } else {
            // Deficit: back off one step.
            (current_v + 1).min(12)
        };
        SpreadingFactor::from_value(target as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller_with(snrs: &[f64]) -> AdrController {
        let mut c = AdrController::new(AdrConfig::default());
        for &s in snrs {
            c.record_snr(s);
        }
        c
    }

    #[test]
    fn no_recommendation_until_min_samples() {
        let mut c = AdrController::new(AdrConfig::default());
        for _ in 0..4 {
            c.record_snr(5.0);
            assert_eq!(c.recommend(SpreadingFactor::Sf9), None);
        }
        c.record_snr(5.0);
        assert!(c.recommend(SpreadingFactor::Sf9).is_some());
    }

    #[test]
    fn strong_link_steps_down_to_sf7() {
        // SNR 10 dB at SF12 (floor -20): surplus 10 - (-20) - 10 = 20 dB
        // → 8 steps down → clamped at SF7.
        let c = controller_with(&[10.0; 10]);
        assert_eq!(
            c.recommend(SpreadingFactor::Sf12),
            Some(SpreadingFactor::Sf7)
        );
    }

    #[test]
    fn marginal_link_keeps_current_sf() {
        // SNR exactly floor+margin at SF9: surplus 0 → stay.
        let snr = snr_floor_db(SpreadingFactor::Sf9) + 10.0;
        let c = controller_with(&[snr; 10]);
        assert_eq!(
            c.recommend(SpreadingFactor::Sf9),
            Some(SpreadingFactor::Sf9)
        );
    }

    #[test]
    fn weak_link_backs_off_one_step() {
        // SNR below floor+margin → one step up.
        let snr = snr_floor_db(SpreadingFactor::Sf9) + 5.0;
        let c = controller_with(&[snr; 10]);
        assert_eq!(
            c.recommend(SpreadingFactor::Sf9),
            Some(SpreadingFactor::Sf10)
        );
    }

    #[test]
    fn sf12_cannot_back_off_further() {
        let c = controller_with(&[-25.0; 10]);
        assert_eq!(
            c.recommend(SpreadingFactor::Sf12),
            Some(SpreadingFactor::Sf12)
        );
    }

    #[test]
    fn statistic_is_window_max() {
        let mut c = controller_with(&[-5.0, 2.0, -1.0, 0.5, -3.0]);
        assert_eq!(c.snr_statistic(), Some(2.0));
        // Window slides: push enough to evict the max.
        for _ in 0..20 {
            c.record_snr(-10.0);
        }
        assert_eq!(c.snr_statistic(), Some(-10.0));
    }

    #[test]
    fn surplus_of_2_5db_is_one_step() {
        let snr = snr_floor_db(SpreadingFactor::Sf9) + 10.0 + 2.5;
        let c = controller_with(&[snr; 10]);
        assert_eq!(
            c.recommend(SpreadingFactor::Sf9),
            Some(SpreadingFactor::Sf8)
        );
    }

    #[test]
    #[should_panic(expected = "min_samples")]
    fn invalid_config_panics() {
        let _ = AdrController::new(AdrConfig {
            window: 4,
            min_samples: 5,
            margin_db: 10.0,
        });
    }
}
