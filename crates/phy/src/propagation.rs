//! Positions, path-loss models and the link budget.
//!
//! The simulator asks a [`PathLossModel`] for the attenuation between two
//! positions; the resulting RSSI/SNR pair is exactly what the monitoring
//! client later reports to the server, so the model choice directly shapes
//! the dashboards in R-Fig-3.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node position in meters on a flat plane.
///
/// Two dimensions are sufficient for the campus-scale deployments the paper
/// targets; altitude differences are folded into the shadowing term.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Position {
    /// East-west coordinate in meters.
    pub x: f64,
    /// North-south coordinate in meters.
    pub y: f64,
}

impl Position {
    /// Create a position from coordinates in meters.
    pub fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    pub fn distance_to(self, other: Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Midpoint between two positions.
    pub fn midpoint(self, other: Position) -> Position {
        Position::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// A deterministic path-loss model: attenuation in dB as a function of
/// distance.
///
/// Models are deterministic on purpose — random shadowing is sampled once
/// per link by the simulator (via [`LogDistance::shadowing_sigma_db`]) so
/// that a link's quality is stable across a run, as it is in a real static
/// deployment.
pub trait PathLossModel: fmt::Debug + Send + Sync {
    /// Median path loss in dB at `distance_m` meters.
    fn path_loss_db(&self, distance_m: f64) -> f64;

    /// Standard deviation of log-normal shadowing, in dB (0 = none).
    fn shadowing_sigma_db(&self) -> f64 {
        0.0
    }

    /// Distance (m) at which median path loss reaches `loss_db`.
    ///
    /// Default implementation bisects `path_loss_db`; models with a closed
    /// form may override.
    fn distance_for_loss(&self, loss_db: f64) -> f64 {
        let (mut lo, mut hi) = (0.1f64, 1.0e7f64);
        for _ in 0..200 {
            let mid = (lo * hi).sqrt();
            if self.path_loss_db(mid) < loss_db {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (lo * hi).sqrt()
    }
}

/// Free-space (Friis) path loss.
///
/// `PL(d) = 20·log10(d) + 20·log10(f) − 147.55` with `d` in meters and `f`
/// in Hz. The most optimistic model; line-of-sight rural links approach it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FreeSpace {
    frequency_hz: f64,
}

impl FreeSpace {
    /// Free-space loss at the given carrier frequency.
    ///
    /// # Panics
    ///
    /// Panics if `frequency_hz` is not positive.
    pub fn new(frequency_hz: f64) -> Self {
        assert!(frequency_hz > 0.0, "frequency must be positive");
        FreeSpace { frequency_hz }
    }

    /// Free-space loss at the EU868 carrier.
    pub fn eu868() -> Self {
        FreeSpace::new(868e6)
    }
}

impl PathLossModel for FreeSpace {
    fn path_loss_db(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(1.0);
        20.0 * d.log10() + 20.0 * self.frequency_hz.log10() - 147.55
    }
}

/// Log-distance path loss with optional log-normal shadowing.
///
/// `PL(d) = PL(d0) + 10·n·log10(d/d0)`, the standard empirical model for
/// urban/suburban LoRa deployments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogDistance {
    /// Reference loss at `reference_m`, in dB.
    pl0_db: f64,
    /// Reference distance in meters.
    reference_m: f64,
    /// Path-loss exponent `n` (2 = free space, 4+ = dense urban).
    exponent: f64,
    /// Log-normal shadowing standard deviation in dB.
    sigma_db: f64,
}

impl LogDistance {
    /// Create a log-distance model.
    ///
    /// # Panics
    ///
    /// Panics if `reference_m <= 0`, `exponent <= 0`, or `sigma_db < 0`.
    pub fn new(pl0_db: f64, reference_m: f64, exponent: f64, sigma_db: f64) -> Self {
        assert!(reference_m > 0.0, "reference distance must be positive");
        assert!(exponent > 0.0, "path-loss exponent must be positive");
        assert!(sigma_db >= 0.0, "shadowing sigma cannot be negative");
        LogDistance {
            pl0_db,
            reference_m,
            exponent,
            sigma_db,
        }
    }

    /// Rural / line-of-sight parameters (n = 2.3, σ = 2 dB).
    pub fn rural() -> Self {
        LogDistance::new(31.5, 1.0, 2.3, 2.0)
    }

    /// Suburban / campus parameters (n = 2.9, σ = 4 dB) — the default for
    /// the reconstructed experiments.
    pub fn suburban() -> Self {
        LogDistance::new(38.0, 1.0, 2.9, 4.0)
    }

    /// Dense urban parameters (n = 3.5, σ = 6 dB), after the Bor et al.
    /// LoRa measurement campaign.
    pub fn urban() -> Self {
        LogDistance::new(40.0, 1.0, 3.5, 6.0)
    }

    /// Indoor multi-floor parameters (n = 4.2, σ = 7 dB).
    pub fn indoor() -> Self {
        LogDistance::new(42.0, 1.0, 4.2, 7.0)
    }

    /// The path-loss exponent `n`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }
}

impl PathLossModel for LogDistance {
    fn path_loss_db(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(self.reference_m);
        self.pl0_db + 10.0 * self.exponent * (d / self.reference_m).log10()
    }

    fn shadowing_sigma_db(&self) -> f64 {
        self.sigma_db
    }

    fn distance_for_loss(&self, loss_db: f64) -> f64 {
        if loss_db <= self.pl0_db {
            return self.reference_m;
        }
        self.reference_m * 10f64.powf((loss_db - self.pl0_db) / (10.0 * self.exponent))
    }
}

/// Link budget: the received power for a transmit power and path loss.
///
/// Antenna gains of monopole whips cancel against cable losses on the
/// class of devices the paper uses, so they are not modelled separately.
pub fn received_power_dbm(tx_power_dbm: f64, path_loss_db: f64, shadowing_db: f64) -> f64 {
    tx_power_dbm - path_loss_db + shadowing_db
}

/// SNR (dB) of a reception given its RSSI and channel bandwidth.
pub fn snr_db(rssi_dbm: f64, bandwidth_hz: f64) -> f64 {
    rssi_dbm - crate::noise_floor_dbm(bandwidth_hz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Position::new(3.0, 4.0);
        let b = Position::new(0.0, 0.0);
        assert!((a.distance_to(b) - 5.0).abs() < 1e-12);
        assert!((b.distance_to(a) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_to(a), 0.0);
    }

    #[test]
    fn midpoint_is_halfway() {
        let m = Position::new(0.0, 0.0).midpoint(Position::new(10.0, 20.0));
        assert_eq!(m, Position::new(5.0, 10.0));
    }

    #[test]
    fn free_space_868mhz_at_1km_is_about_91db() {
        // FSPL(1 km, 868 MHz) = 20log10(1000) + 20log10(868e6) - 147.55 ≈ 91.2 dB
        let m = FreeSpace::eu868();
        let pl = m.path_loss_db(1000.0);
        assert!((pl - 91.2).abs() < 0.3, "got {pl}");
    }

    #[test]
    fn free_space_adds_6db_per_doubling() {
        let m = FreeSpace::eu868();
        let d1 = m.path_loss_db(500.0);
        let d2 = m.path_loss_db(1000.0);
        assert!((d2 - d1 - 6.02).abs() < 0.05);
    }

    #[test]
    fn free_space_clamps_below_one_meter() {
        let m = FreeSpace::eu868();
        assert_eq!(m.path_loss_db(0.0), m.path_loss_db(1.0));
    }

    #[test]
    fn log_distance_exponent_controls_slope() {
        let rural = LogDistance::rural();
        let urban = LogDistance::urban();
        let slope = |m: &LogDistance| m.path_loss_db(1000.0) - m.path_loss_db(100.0);
        assert!(slope(&urban) > slope(&rural));
        // Slope per decade is 10·n.
        assert!((slope(&rural) - 23.0).abs() < 1e-9);
        assert!((slope(&urban) - 35.0).abs() < 1e-9);
    }

    #[test]
    fn log_distance_inverse_is_consistent() {
        let m = LogDistance::suburban();
        for d in [10.0, 100.0, 1000.0, 5000.0] {
            let pl = m.path_loss_db(d);
            let back = m.distance_for_loss(pl);
            assert!((back - d).abs() / d < 1e-9, "d={d} back={back}");
        }
    }

    #[test]
    fn generic_distance_for_loss_bisection_works() {
        let m = FreeSpace::eu868();
        let pl = m.path_loss_db(2500.0);
        let d = m.distance_for_loss(pl);
        assert!((d - 2500.0).abs() < 1.0, "got {d}");
    }

    #[test]
    fn presets_order_by_harshness() {
        let d = 1000.0;
        let rural = LogDistance::rural().path_loss_db(d);
        let suburban = LogDistance::suburban().path_loss_db(d);
        let urban = LogDistance::urban().path_loss_db(d);
        let indoor = LogDistance::indoor().path_loss_db(d);
        assert!(rural < suburban && suburban < urban && urban < indoor);
    }

    #[test]
    fn link_budget_composition() {
        let rssi = received_power_dbm(14.0, 100.0, -3.0);
        assert!((rssi + 89.0).abs() < 1e-12);
    }

    #[test]
    fn snr_of_strong_signal_positive() {
        assert!(snr_db(-80.0, 125_000.0) > 0.0);
        assert!(snr_db(-130.0, 125_000.0) < 0.0);
    }

    #[test]
    fn typical_campus_link_closes_at_sf7() {
        // 300 m suburban at 14 dBm should be comfortably above SF7
        // sensitivity — the scenario of the paper's own testbed.
        let m = LogDistance::suburban();
        let rssi = received_power_dbm(14.0, m.path_loss_db(300.0), 0.0);
        let sens = crate::sensitivity_dbm(crate::SpreadingFactor::Sf7, crate::Bandwidth::Khz125);
        assert!(rssi > sens + 10.0, "rssi {rssi} sens {sens}");
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn invalid_exponent_panics() {
        let _ = LogDistance::new(40.0, 1.0, 0.0, 2.0);
    }
}
