//! Radio parameter types: spreading factor, bandwidth, coding rate and the
//! aggregate [`RadioConfig`].
//!
//! These are newtype-style enums rather than raw integers so that invalid
//! combinations (SF6.5, 333 kHz, CR 4/9, …) are unrepresentable.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// LoRa spreading factor (SF7–SF12).
///
/// Higher spreading factors trade data rate for sensitivity: each step up
/// roughly doubles time-on-air and buys ~2.5 dB of link budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SpreadingFactor {
    /// SF7 — fastest, least robust.
    Sf7,
    /// SF8.
    Sf8,
    /// SF9.
    Sf9,
    /// SF10.
    Sf10,
    /// SF11.
    Sf11,
    /// SF12 — slowest, most robust.
    Sf12,
}

impl SpreadingFactor {
    /// All spreading factors, ascending.
    pub const ALL: [SpreadingFactor; 6] = [
        SpreadingFactor::Sf7,
        SpreadingFactor::Sf8,
        SpreadingFactor::Sf9,
        SpreadingFactor::Sf10,
        SpreadingFactor::Sf11,
        SpreadingFactor::Sf12,
    ];

    /// The numeric spreading factor (7–12).
    pub fn value(self) -> u32 {
        match self {
            SpreadingFactor::Sf7 => 7,
            SpreadingFactor::Sf8 => 8,
            SpreadingFactor::Sf9 => 9,
            SpreadingFactor::Sf10 => 10,
            SpreadingFactor::Sf11 => 11,
            SpreadingFactor::Sf12 => 12,
        }
    }

    /// Build from the numeric value.
    ///
    /// Returns `None` for values outside 7–12.
    pub fn from_value(v: u32) -> Option<Self> {
        match v {
            7 => Some(SpreadingFactor::Sf7),
            8 => Some(SpreadingFactor::Sf8),
            9 => Some(SpreadingFactor::Sf9),
            10 => Some(SpreadingFactor::Sf10),
            11 => Some(SpreadingFactor::Sf11),
            12 => Some(SpreadingFactor::Sf12),
            _ => None,
        }
    }

    /// Chips per symbol (`2^SF`).
    pub fn chips_per_symbol(self) -> u32 {
        1 << self.value()
    }
}

impl fmt::Display for SpreadingFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SF{}", self.value())
    }
}

impl FromStr for SpreadingFactor {
    type Err = ParseParamError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        let digits = t
            .strip_prefix("SF")
            .or_else(|| t.strip_prefix("sf"))
            .unwrap_or(t);
        digits
            .parse::<u32>()
            .ok()
            .and_then(SpreadingFactor::from_value)
            .ok_or_else(|| ParseParamError::new("spreading factor", s))
    }
}

/// LoRa channel bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Bandwidth {
    /// 125 kHz — the EU868 default.
    Khz125,
    /// 250 kHz.
    Khz250,
    /// 500 kHz — used for US915 downlinks.
    Khz500,
}

impl Bandwidth {
    /// All bandwidths, ascending.
    pub const ALL: [Bandwidth; 3] = [Bandwidth::Khz125, Bandwidth::Khz250, Bandwidth::Khz500];

    /// Bandwidth in hertz.
    pub fn hz(self) -> f64 {
        match self {
            Bandwidth::Khz125 => 125_000.0,
            Bandwidth::Khz250 => 250_000.0,
            Bandwidth::Khz500 => 500_000.0,
        }
    }

    /// Bandwidth in kilohertz.
    pub fn khz(self) -> u32 {
        match self {
            Bandwidth::Khz125 => 125,
            Bandwidth::Khz250 => 250,
            Bandwidth::Khz500 => 500,
        }
    }

    /// Build from a kHz value; `None` if unsupported.
    pub fn from_khz(khz: u32) -> Option<Self> {
        match khz {
            125 => Some(Bandwidth::Khz125),
            250 => Some(Bandwidth::Khz250),
            500 => Some(Bandwidth::Khz500),
            _ => None,
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}kHz", self.khz())
    }
}

/// LoRa forward-error-correction coding rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CodingRate {
    /// 4/5 — least redundancy.
    Cr4_5,
    /// 4/6.
    Cr4_6,
    /// 4/7.
    Cr4_7,
    /// 4/8 — most redundancy.
    Cr4_8,
}

impl CodingRate {
    /// All coding rates, ascending redundancy.
    pub const ALL: [CodingRate; 4] = [
        CodingRate::Cr4_5,
        CodingRate::Cr4_6,
        CodingRate::Cr4_7,
        CodingRate::Cr4_8,
    ];

    /// The `CR` term of the Semtech airtime formula (1–4).
    pub fn cr(self) -> u32 {
        match self {
            CodingRate::Cr4_5 => 1,
            CodingRate::Cr4_6 => 2,
            CodingRate::Cr4_7 => 3,
            CodingRate::Cr4_8 => 4,
        }
    }

    /// Denominator of the rate fraction (5–8).
    pub fn denominator(self) -> u32 {
        self.cr() + 4
    }
}

impl fmt::Display for CodingRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "4/{}", self.denominator())
    }
}

/// Whether the PHY header is transmitted (explicit) or implied (implicit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum HeaderMode {
    /// Explicit header: length/CR/CRC flags are transmitted. The default.
    #[default]
    Explicit,
    /// Implicit header: both sides agree on the format out of band.
    Implicit,
}

/// Error returned when parsing a radio parameter from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseParamError {
    what: &'static str,
    input: String,
}

impl ParseParamError {
    fn new(what: &'static str, input: &str) -> Self {
        ParseParamError {
            what,
            input: input.to_owned(),
        }
    }
}

impl fmt::Display for ParseParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {}: {:?}", self.what, self.input)
    }
}

impl std::error::Error for ParseParamError {}

/// Complete radio configuration shared by a transmitter/receiver pair.
///
/// Two radios can only exchange packets when their spreading factor,
/// bandwidth and center frequency match; the collision model in
/// [`crate::collision`] treats mismatched configurations as orthogonal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioConfig {
    sf: SpreadingFactor,
    bw: Bandwidth,
    cr: CodingRate,
    header: HeaderMode,
    /// Preamble length in symbols (default 8, as in LoRaMesher).
    preamble_symbols: u32,
    /// Whether the payload CRC is enabled (default true).
    crc_enabled: bool,
    /// Transmit power in dBm (default 14, the EU868 ERP limit).
    tx_power_dbm: f64,
    /// Center frequency in Hz (default 868.1 MHz).
    frequency_hz: f64,
}

impl RadioConfig {
    /// Create a configuration with the given SF/BW/CR and defaults for the
    /// remaining fields (8-symbol preamble, CRC on, 14 dBm, 868.1 MHz,
    /// explicit header).
    pub fn new(sf: SpreadingFactor, bw: Bandwidth, cr: CodingRate) -> Self {
        RadioConfig {
            sf,
            bw,
            cr,
            header: HeaderMode::Explicit,
            preamble_symbols: 8,
            crc_enabled: true,
            tx_power_dbm: 14.0,
            frequency_hz: 868_100_000.0,
        }
    }

    /// The LoRaMesher default configuration: SF7, 125 kHz, CR 4/5.
    pub fn mesher_default() -> Self {
        RadioConfig::new(SpreadingFactor::Sf7, Bandwidth::Khz125, CodingRate::Cr4_5)
    }

    /// A long-range configuration: SF12, 125 kHz, CR 4/8.
    pub fn long_range() -> Self {
        RadioConfig::new(SpreadingFactor::Sf12, Bandwidth::Khz125, CodingRate::Cr4_8)
    }

    /// Spreading factor.
    pub fn sf(&self) -> SpreadingFactor {
        self.sf
    }

    /// Bandwidth.
    pub fn bw(&self) -> Bandwidth {
        self.bw
    }

    /// Coding rate.
    pub fn cr(&self) -> CodingRate {
        self.cr
    }

    /// Header mode.
    pub fn header(&self) -> HeaderMode {
        self.header
    }

    /// Preamble length in symbols.
    pub fn preamble_symbols(&self) -> u32 {
        self.preamble_symbols
    }

    /// Whether the payload CRC is on.
    pub fn crc_enabled(&self) -> bool {
        self.crc_enabled
    }

    /// Transmit power in dBm.
    pub fn tx_power_dbm(&self) -> f64 {
        self.tx_power_dbm
    }

    /// Center frequency in Hz.
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }

    /// Set the spreading factor (builder style).
    pub fn with_sf(mut self, sf: SpreadingFactor) -> Self {
        self.sf = sf;
        self
    }

    /// Set the bandwidth (builder style).
    pub fn with_bw(mut self, bw: Bandwidth) -> Self {
        self.bw = bw;
        self
    }

    /// Set the coding rate (builder style).
    pub fn with_cr(mut self, cr: CodingRate) -> Self {
        self.cr = cr;
        self
    }

    /// Set the header mode (builder style).
    pub fn with_header(mut self, header: HeaderMode) -> Self {
        self.header = header;
        self
    }

    /// Set the preamble length in symbols (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `symbols < 6`, the SX127x hardware minimum.
    pub fn with_preamble_symbols(mut self, symbols: u32) -> Self {
        assert!(symbols >= 6, "preamble must be at least 6 symbols");
        self.preamble_symbols = symbols;
        self
    }

    /// Enable or disable the payload CRC (builder style).
    pub fn with_crc(mut self, enabled: bool) -> Self {
        self.crc_enabled = enabled;
        self
    }

    /// Set the transmit power in dBm (builder style).
    ///
    /// # Panics
    ///
    /// Panics if outside the SX127x range of 2–20 dBm.
    pub fn with_tx_power_dbm(mut self, dbm: f64) -> Self {
        assert!(
            (2.0..=20.0).contains(&dbm),
            "tx power {dbm} dBm outside SX127x range 2-20"
        );
        self.tx_power_dbm = dbm;
        self
    }

    /// Set the center frequency in Hz (builder style).
    pub fn with_frequency_hz(mut self, hz: f64) -> Self {
        assert!(hz > 0.0, "frequency must be positive");
        self.frequency_hz = hz;
        self
    }

    /// Symbol duration in seconds (`2^SF / BW`).
    pub fn symbol_time_s(&self) -> f64 {
        f64::from(self.sf.chips_per_symbol()) / self.bw.hz()
    }

    /// Whether the SX127x low-data-rate optimization is mandatory
    /// (symbol time above 16 ms, i.e. SF11/SF12 at 125 kHz).
    pub fn low_data_rate_optimize(&self) -> bool {
        self.symbol_time_s() > 0.016
    }

    /// Two configurations can demodulate each other's packets only if SF,
    /// bandwidth and frequency all match.
    pub fn compatible_with(&self, other: &RadioConfig) -> bool {
        self.sf == other.sf
            && self.bw == other.bw
            && (self.frequency_hz - other.frequency_hz).abs() < 1.0
    }

    /// Raw PHY bitrate in bits/second (before FEC overhead).
    pub fn bitrate_bps(&self) -> f64 {
        let sf = f64::from(self.sf.value());
        let cr = 4.0 / f64::from(self.cr.denominator());
        sf * cr * self.bw.hz() / f64::from(self.sf.chips_per_symbol())
    }
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig::mesher_default()
    }
}

impl fmt::Display for RadioConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{} @{:.1}MHz {}dBm",
            self.sf,
            self.bw,
            self.cr,
            self.frequency_hz / 1e6,
            self.tx_power_dbm
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sf_value_roundtrip() {
        for sf in SpreadingFactor::ALL {
            assert_eq!(SpreadingFactor::from_value(sf.value()), Some(sf));
        }
        assert_eq!(SpreadingFactor::from_value(6), None);
        assert_eq!(SpreadingFactor::from_value(13), None);
    }

    #[test]
    fn sf_parses_from_str() {
        assert_eq!("SF7".parse::<SpreadingFactor>(), Ok(SpreadingFactor::Sf7));
        assert_eq!("sf12".parse::<SpreadingFactor>(), Ok(SpreadingFactor::Sf12));
        assert_eq!("9".parse::<SpreadingFactor>(), Ok(SpreadingFactor::Sf9));
        assert!("SF6".parse::<SpreadingFactor>().is_err());
        assert!("banana".parse::<SpreadingFactor>().is_err());
    }

    #[test]
    fn sf_ordering_matches_numeric() {
        assert!(SpreadingFactor::Sf7 < SpreadingFactor::Sf12);
        assert!(SpreadingFactor::Sf9 < SpreadingFactor::Sf10);
    }

    #[test]
    fn bandwidth_hz_khz_consistent() {
        for bw in Bandwidth::ALL {
            assert!((bw.hz() - f64::from(bw.khz()) * 1000.0).abs() < 1e-9);
            assert_eq!(Bandwidth::from_khz(bw.khz()), Some(bw));
        }
        assert_eq!(Bandwidth::from_khz(62), None);
    }

    #[test]
    fn coding_rate_terms() {
        assert_eq!(CodingRate::Cr4_5.cr(), 1);
        assert_eq!(CodingRate::Cr4_8.cr(), 4);
        assert_eq!(CodingRate::Cr4_6.denominator(), 6);
    }

    #[test]
    fn symbol_time_sf7_125khz() {
        let cfg = RadioConfig::mesher_default();
        // 128 / 125000 = 1.024 ms
        assert!((cfg.symbol_time_s() - 0.001024).abs() < 1e-9);
    }

    #[test]
    fn ldro_only_for_slow_symbols() {
        let sf12 = RadioConfig::new(SpreadingFactor::Sf12, Bandwidth::Khz125, CodingRate::Cr4_5);
        assert!(sf12.low_data_rate_optimize());
        let sf12_wide = sf12.with_bw(Bandwidth::Khz500);
        assert!(!sf12_wide.low_data_rate_optimize());
        assert!(!RadioConfig::mesher_default().low_data_rate_optimize());
    }

    #[test]
    fn compatibility_requires_matching_sf_bw_freq() {
        let a = RadioConfig::mesher_default();
        assert!(a.compatible_with(&a));
        assert!(!a.compatible_with(&a.with_sf(SpreadingFactor::Sf8)));
        assert!(!a.compatible_with(&a.with_bw(Bandwidth::Khz250)));
        assert!(!a.compatible_with(&a.with_frequency_hz(868_300_000.0)));
        // Coding rate mismatch is still compatible (CR is in the header).
        assert!(a.compatible_with(&a.with_cr(CodingRate::Cr4_8)));
    }

    #[test]
    fn bitrate_sf7_is_about_5_5_kbps() {
        let cfg = RadioConfig::mesher_default();
        let kbps = cfg.bitrate_bps() / 1000.0;
        assert!((kbps - 5.47).abs() < 0.05, "got {kbps}");
    }

    #[test]
    #[should_panic(expected = "preamble")]
    fn preamble_below_minimum_panics() {
        let _ = RadioConfig::mesher_default().with_preamble_symbols(4);
    }

    #[test]
    #[should_panic(expected = "tx power")]
    fn tx_power_out_of_range_panics() {
        let _ = RadioConfig::mesher_default().with_tx_power_dbm(30.0);
    }

    #[test]
    fn display_formats() {
        let cfg = RadioConfig::mesher_default();
        let s = cfg.to_string();
        assert!(s.contains("SF7"));
        assert!(s.contains("125kHz"));
        assert!(s.contains("4/5"));
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = RadioConfig::long_range().with_tx_power_dbm(17.0);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: RadioConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
