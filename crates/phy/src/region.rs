//! Regional radio regulations: channel plans and duty-cycle limits.
//!
//! The paper's testbed operates under EU868 rules (1% duty cycle in the
//! 868.0–868.6 MHz sub-band); US915 is provided for completeness and for
//! the regional ablation in the benches.

use crate::params::{Bandwidth, RadioConfig};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// A supported regulatory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Europe 863–870 MHz (ETSI EN 300 220): duty-cycle limited.
    Eu868,
    /// North America 902–928 MHz (FCC part 15): dwell-time limited.
    Us915,
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Region::Eu868 => write!(f, "EU868"),
            Region::Us915 => write!(f, "US915"),
        }
    }
}

/// The concrete parameters of a region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionParams {
    region: Region,
    channels_hz: Vec<f64>,
    default_bandwidth: Bandwidth,
    max_tx_power_dbm: f64,
    /// Fraction of time a device may transmit (1.0 = unlimited).
    duty_cycle: f64,
    /// Maximum continuous transmission (dwell) time, if the region limits it.
    max_dwell_time: Option<Duration>,
    max_payload_bytes: usize,
}

impl RegionParams {
    /// Parameters for a region.
    pub fn new(region: Region) -> Self {
        match region {
            Region::Eu868 => RegionParams {
                region,
                // The three mandatory EU868 channels.
                channels_hz: vec![868_100_000.0, 868_300_000.0, 868_500_000.0],
                default_bandwidth: Bandwidth::Khz125,
                max_tx_power_dbm: 14.0,
                duty_cycle: 0.01,
                max_dwell_time: None,
                max_payload_bytes: 255,
            },
            Region::Us915 => RegionParams {
                region,
                // First eight 125 kHz uplink channels.
                channels_hz: (0..8)
                    .map(|i| 902_300_000.0 + 200_000.0 * f64::from(i))
                    .collect(),
                default_bandwidth: Bandwidth::Khz125,
                max_tx_power_dbm: 20.0,
                duty_cycle: 1.0,
                max_dwell_time: Some(Duration::from_millis(400)),
                max_payload_bytes: 255,
            },
        }
    }

    /// Which region these parameters describe.
    pub fn region(&self) -> Region {
        self.region
    }

    /// The channel center frequencies in Hz.
    pub fn channels_hz(&self) -> &[f64] {
        &self.channels_hz
    }

    /// Default channel bandwidth.
    pub fn default_bandwidth(&self) -> Bandwidth {
        self.default_bandwidth
    }

    /// Maximum permitted transmit power in dBm.
    pub fn max_tx_power_dbm(&self) -> f64 {
        self.max_tx_power_dbm
    }

    /// Permitted duty cycle as a fraction (0.01 = 1%).
    pub fn duty_cycle(&self) -> f64 {
        self.duty_cycle
    }

    /// Maximum dwell time per transmission, if limited.
    pub fn max_dwell_time(&self) -> Option<Duration> {
        self.max_dwell_time
    }

    /// Maximum PHY payload size in bytes.
    pub fn max_payload_bytes(&self) -> usize {
        self.max_payload_bytes
    }

    /// Check a radio configuration against this region's rules.
    ///
    /// # Errors
    ///
    /// Returns a [`RegionViolation`] describing the first rule broken:
    /// off-plan frequency or excessive transmit power.
    pub fn validate(&self, config: &RadioConfig) -> Result<(), RegionViolation> {
        if config.tx_power_dbm() > self.max_tx_power_dbm {
            return Err(RegionViolation::TxPower {
                configured_dbm: config.tx_power_dbm(),
                limit_dbm: self.max_tx_power_dbm,
            });
        }
        let on_plan = self
            .channels_hz
            .iter()
            .any(|&c| (c - config.frequency_hz()).abs() < 1.0);
        if !on_plan {
            return Err(RegionViolation::Frequency {
                configured_hz: config.frequency_hz(),
            });
        }
        Ok(())
    }

    /// Whether a transmission of the given airtime violates the dwell limit.
    pub fn dwell_ok(&self, airtime: Duration) -> bool {
        match self.max_dwell_time {
            Some(limit) => airtime <= limit,
            None => true,
        }
    }
}

/// A regional-compliance violation.
#[derive(Debug, Clone, PartialEq)]
pub enum RegionViolation {
    /// Transmit power exceeds the regional limit.
    TxPower {
        /// Configured power.
        configured_dbm: f64,
        /// Regional limit.
        limit_dbm: f64,
    },
    /// Frequency is not on the regional channel plan.
    Frequency {
        /// Configured center frequency.
        configured_hz: f64,
    },
}

impl fmt::Display for RegionViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionViolation::TxPower {
                configured_dbm,
                limit_dbm,
            } => write!(
                f,
                "tx power {configured_dbm} dBm exceeds regional limit {limit_dbm} dBm"
            ),
            RegionViolation::Frequency { configured_hz } => write!(
                f,
                "frequency {:.3} MHz is not on the regional channel plan",
                configured_hz / 1e6
            ),
        }
    }
}

impl std::error::Error for RegionViolation {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{CodingRate, SpreadingFactor};

    #[test]
    fn eu868_has_three_mandatory_channels() {
        let p = RegionParams::new(Region::Eu868);
        assert_eq!(p.channels_hz().len(), 3);
        assert!((p.channels_hz()[0] - 868_100_000.0).abs() < 1.0);
        assert!((p.duty_cycle() - 0.01).abs() < 1e-12);
        assert!(p.max_dwell_time().is_none());
    }

    #[test]
    fn us915_has_dwell_limit_and_no_duty_cycle() {
        let p = RegionParams::new(Region::Us915);
        assert_eq!(p.channels_hz().len(), 8);
        assert_eq!(p.duty_cycle(), 1.0);
        assert_eq!(p.max_dwell_time(), Some(Duration::from_millis(400)));
    }

    #[test]
    fn default_config_is_eu868_compliant() {
        let p = RegionParams::new(Region::Eu868);
        assert_eq!(p.validate(&RadioConfig::mesher_default()), Ok(()));
    }

    #[test]
    fn overpowered_config_is_rejected() {
        let p = RegionParams::new(Region::Eu868);
        let cfg = RadioConfig::mesher_default().with_tx_power_dbm(20.0);
        assert!(matches!(
            p.validate(&cfg),
            Err(RegionViolation::TxPower { .. })
        ));
    }

    #[test]
    fn off_plan_frequency_is_rejected() {
        let p = RegionParams::new(Region::Eu868);
        let cfg = RadioConfig::mesher_default().with_frequency_hz(915_000_000.0);
        assert!(matches!(
            p.validate(&cfg),
            Err(RegionViolation::Frequency { .. })
        ));
    }

    #[test]
    fn us915_dwell_rejects_sf12_long_packets() {
        let p = RegionParams::new(Region::Us915);
        let slow = RadioConfig::new(SpreadingFactor::Sf12, Bandwidth::Khz125, CodingRate::Cr4_5);
        let airtime = crate::airtime::time_on_air(&slow, 51);
        assert!(!p.dwell_ok(airtime));
        let fast = RadioConfig::mesher_default();
        assert!(p.dwell_ok(crate::airtime::time_on_air(&fast, 51)));
    }

    #[test]
    fn violation_messages_are_informative() {
        let v = RegionViolation::TxPower {
            configured_dbm: 20.0,
            limit_dbm: 14.0,
        };
        assert!(v.to_string().contains("20"));
        let v = RegionViolation::Frequency {
            configured_hz: 915e6,
        };
        assert!(v.to_string().contains("915"));
    }
}
