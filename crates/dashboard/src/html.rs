//! Static HTML dashboard generation.
//!
//! Unlike the live page served by `loramon-server`'s HTTP API, this
//! module bakes the data *into* a single self-contained HTML file (inline
//! SVG, no JavaScript fetches) — the artifact an operator can archive or
//! attach to a report. R-Fig-2/3/4 are regenerated as sections of this
//! page.

use loramon_phy::Position;
// lint:allow(layering-restricted, reason = "the archival HTML page renders straight off a live MonitorServer; this is the one sanctioned reach past the server's query surface")
use loramon_server::MonitorServer;
use loramon_server::{Alert, LinkStats, RollupPoint, SeriesPoint, StatusPoint, Topology, Window};
use loramon_sim::NodeId;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Options for the generated page.
#[derive(Debug, Clone)]
pub struct HtmlOptions {
    /// Page title.
    pub title: String,
    /// Time-series bucket.
    pub bucket: Duration,
    /// Known node positions for the topology drawing; nodes without one
    /// are laid out on a circle.
    pub positions: BTreeMap<NodeId, Position>,
}

impl Default for HtmlOptions {
    fn default() -> Self {
        HtmlOptions {
            title: "loramon dashboard".to_owned(),
            bucket: Duration::from_secs(60),
            positions: BTreeMap::new(),
        }
    }
}

/// Generate the full dashboard page from a server's current contents.
pub fn generate(server: &MonitorServer, options: &HtmlOptions) -> String {
    let summaries = server.node_summaries();
    let series = server.series(None, None, Window::all(), options.bucket);
    let links = server.link_stats(Window::all());
    let pdr = server.link_deliveries(Window::all());
    let hist = server.rssi_histogram(None, Window::all(), 5.0);
    let topo = server.topology(Window::all());
    let alerts = server.alert_history();

    let mut html = String::new();
    let _ = write!(
        html,
        "<!doctype html><html lang=\"en\"><head><meta charset=\"utf-8\">\
         <title>{}</title><style>{}</style></head><body><h1>{}</h1>",
        escape(&options.title),
        CSS,
        escape(&options.title)
    );

    // Node table.
    html.push_str(
        "<h2>Nodes</h2><table><tr><th>node</th><th>reports</th><th>missing</th>\
                   <th>restarts</th><th>records</th><th>battery</th><th>queue</th><th>reachable</th></tr>",
    );
    for s in &summaries {
        let _ = write!(
            html,
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            s.node,
            s.reports,
            s.missing_reports,
            s.restarts,
            s.records,
            s.battery_percent
                .map_or_else(|| "–".into(), |b| format!("{b}%")),
            s.queue_len.map_or_else(|| "–".into(), |q| q.to_string()),
            s.reachable.map_or_else(|| "–".into(), |r| r.to_string()),
        );
    }
    html.push_str("</table>");

    html.push_str("<h2>Packets over time</h2>");
    html.push_str(&series_svg(&series));

    html.push_str("<h2>Links</h2>");
    html.push_str(&links_table(&links));

    html.push_str("<h2>Link delivery ratios</h2>");
    html.push_str(&pdr_table(&pdr));

    html.push_str("<h2>RSSI distribution</h2>");
    html.push_str(&histogram_svg(&hist));

    html.push_str("<h2>Node health</h2>");
    for summary in &summaries {
        let series = server.status_series(summary.node);
        if series.is_empty() {
            continue;
        }
        let _ = write!(html, "<h3>node {}</h3>", summary.node);
        html.push_str(&status_svg(&series));
    }

    let rollups = server.rollup_series(None);
    if !rollups.is_empty() {
        html.push_str("<h2>Rollups</h2>");
        html.push_str(&rollups_table(&rollups));
    }

    html.push_str("<h2>Topology</h2>");
    html.push_str(&topology_svg(&topo, &options.positions));

    html.push_str("<h2>Alerts</h2>");
    html.push_str(&alerts_list(&alerts));

    html.push_str("</body></html>");
    html
}

const CSS: &str = "body{font-family:system-ui,sans-serif;margin:2rem;color:#222}\
 table{border-collapse:collapse}td,th{border:1px solid #bbb;padding:.25rem .6rem;\
 font-size:.85rem;text-align:right}th{background:#eee}td:first-child{text-align:left}\
 svg{background:#fff;border:1px solid #ccc}h2{margin-top:1.6rem}.alert{color:#b00}";

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Bar-chart SVG of a time series.
pub fn series_svg(series: &[SeriesPoint]) -> String {
    if series.is_empty() {
        return "<p>(no data)</p>".to_owned();
    }
    let (w, h) = (900.0f64, 180.0f64);
    let max = series.iter().map(|p| p.count).max().unwrap_or(1).max(1) as f64;
    let bw = (w / series.len() as f64 - 1.0).max(1.0);
    let mut svg = format!("<svg width=\"{w}\" height=\"{h}\" role=\"img\">");
    for (i, p) in series.iter().enumerate() {
        let bar_h = p.count as f64 / max * (h - 20.0);
        let _ = write!(
            svg,
            "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{bw:.1}\" height=\"{bar_h:.1}\" fill=\"#369\">\
             <title>{}: {}</title></rect>",
            i as f64 * (bw + 1.0),
            h - bar_h,
            p.bucket,
            p.count
        );
    }
    svg.push_str("</svg>");
    svg
}

fn links_table(links: &[LinkStats]) -> String {
    let mut html = String::from(
        "<table><tr><th>link</th><th>packets</th><th>mean RSSI</th><th>range</th><th>mean SNR</th></tr>",
    );
    for l in links {
        let _ = write!(
            html,
            "<tr><td>{} → {}</td><td>{}</td><td>{:.1} dBm</td>\
             <td>{:.1} … {:.1}</td><td>{:.1} dB</td></tr>",
            l.from, l.to, l.packets, l.mean_rssi_dbm, l.min_rssi_dbm, l.max_rssi_dbm, l.mean_snr_db
        );
    }
    html.push_str("</table>");
    html
}

/// Long-horizon rollup table; buckets without RSSI samples render `—`
/// (no 0-dBm sentinel).
fn rollups_table(rollups: &[RollupPoint]) -> String {
    let mut html = String::from(
        "<table><tr><th>bucket</th><th>node</th><th>in</th><th>out</th>\
         <th>bytes</th><th>mean RSSI</th></tr>",
    );
    for p in rollups {
        let _ = write!(
            html,
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            p.bucket,
            p.node,
            p.in_count,
            p.out_count,
            p.bytes,
            p.mean_rssi_dbm
                .map_or_else(|| "—".into(), |r| format!("{r:.1} dBm")),
        );
    }
    html.push_str("</table>");
    html
}

/// SVG drawing of the inferred topology. Known positions are used and
/// scaled into the viewport; unknown nodes go on a surrounding circle.
pub fn topology_svg(topo: &Topology, positions: &BTreeMap<NodeId, Position>) -> String {
    if topo.nodes.is_empty() {
        return "<p>(no nodes)</p>".to_owned();
    }
    let (w, h, margin) = (600.0f64, 400.0f64, 40.0f64);

    // Scale known positions into the viewport.
    let known: Vec<(NodeId, Position)> = topo
        .nodes
        .iter()
        .filter_map(|n| positions.get(n).map(|p| (*n, *p)))
        .collect();
    let (min_x, max_x, min_y, max_y) = known.iter().fold(
        (f64::MAX, f64::MIN, f64::MAX, f64::MIN),
        |(ax, bx, ay, by), (_, p)| (ax.min(p.x), bx.max(p.x), ay.min(p.y), by.max(p.y)),
    );
    let span_x = (max_x - min_x).max(1.0);
    let span_y = (max_y - min_y).max(1.0);

    let mut layout: BTreeMap<NodeId, (f64, f64)> = BTreeMap::new();
    for (n, p) in &known {
        layout.insert(
            *n,
            (
                margin + (p.x - min_x) / span_x * (w - 2.0 * margin),
                margin + (p.y - min_y) / span_y * (h - 2.0 * margin),
            ),
        );
    }
    // Circle layout for the rest.
    let unknown: Vec<NodeId> = topo
        .nodes
        .iter()
        .filter(|n| !layout.contains_key(n))
        .copied()
        .collect();
    for (i, n) in unknown.iter().enumerate() {
        let theta = 2.0 * std::f64::consts::PI * i as f64 / unknown.len().max(1) as f64;
        layout.insert(
            *n,
            (
                w / 2.0 + (w / 2.0 - margin) * theta.cos(),
                h / 2.0 + (h / 2.0 - margin) * theta.sin(),
            ),
        );
    }

    let mut svg = format!("<svg width=\"{w}\" height=\"{h}\" role=\"img\">");
    for (a, b) in topo.undirected_heard() {
        let (&(x1, y1), &(x2, y2)) = (layout.get(&a).unwrap(), layout.get(&b).unwrap());
        let _ = write!(
            svg,
            "<line x1=\"{x1:.0}\" y1=\"{y1:.0}\" x2=\"{x2:.0}\" y2=\"{y2:.0}\" \
             stroke=\"#888\" stroke-width=\"1.5\"/>"
        );
    }
    for (n, &(x, y)) in &layout {
        let _ = write!(
            svg,
            "<circle cx=\"{x:.0}\" cy=\"{y:.0}\" r=\"10\" fill=\"#369\"/>\
             <text x=\"{x:.0}\" y=\"{:.0}\" text-anchor=\"middle\" font-size=\"10\">{n}</text>",
            y - 14.0
        );
    }
    svg.push_str("</svg>");
    svg
}

fn pdr_table(links: &[loramon_server::LinkDelivery]) -> String {
    if links.is_empty() {
        return "<p>(no unicast traffic observed)</p>".to_owned();
    }
    let mut html =
        String::from("<table><tr><th>link</th><th>sent</th><th>received</th><th>PDR</th></tr>");
    for l in links {
        let _ = write!(
            html,
            "<tr><td>{} → {}</td><td>{}</td><td>{}</td><td>{:.0}%</td></tr>",
            l.from,
            l.to,
            l.sent,
            l.received,
            l.pdr() * 100.0
        );
    }
    html.push_str("</table>");
    html
}

/// Bar-chart SVG of an RSSI histogram (`(bin_start_dbm, count)`).
pub fn histogram_svg(hist: &[(f64, u64)]) -> String {
    if hist.is_empty() {
        return "<p>(no data)</p>".to_owned();
    }
    let (w, h) = (600.0f64, 160.0f64);
    let max = hist.iter().map(|&(_, c)| c).max().unwrap_or(1).max(1) as f64;
    let bw = (w / hist.len() as f64 - 2.0).max(2.0);
    let mut svg = format!("<svg width=\"{w}\" height=\"{h}\" role=\"img\">");
    for (i, &(bin, count)) in hist.iter().enumerate() {
        let bar_h = count as f64 / max * (h - 30.0);
        let x = i as f64 * (bw + 2.0);
        let _ = write!(
            svg,
            "<rect x=\"{x:.1}\" y=\"{:.1}\" width=\"{bw:.1}\" height=\"{bar_h:.1}\" fill=\"#693\">\
             <title>{bin} dBm: {count}</title></rect>\
             <text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\" font-size=\"9\">{bin:.0}</text>",
            h - 16.0 - bar_h,
            x + bw / 2.0,
            h - 4.0
        );
    }
    svg.push_str("</svg>");
    svg
}

/// Polylines of a node's battery (blue) and duty-cycle utilization
/// (orange, scaled to 100 = cap) over time.
pub fn status_svg(series: &[StatusPoint]) -> String {
    if series.is_empty() {
        return "<p>(no status history)</p>".to_owned();
    }
    let (w, h) = (600.0f64, 120.0f64);
    let t0 = series[0].at.as_micros() as f64;
    let t1 = series[series.len() - 1].at.as_micros() as f64;
    let span = (t1 - t0).max(1.0);
    let x = |at: f64| (at - t0) / span * (w - 20.0) + 10.0;
    let y = |pct: f64| h - 10.0 - pct.clamp(0.0, 100.0) / 100.0 * (h - 20.0);
    let line = |points: &[(f64, f64)], color: &str| -> String {
        let path: Vec<String> = points
            .iter()
            .map(|&(px, py)| format!("{px:.1},{py:.1}"))
            .collect();
        format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\"/>",
            path.join(" ")
        )
    };
    let battery: Vec<(f64, f64)> = series
        .iter()
        .map(|p| (x(p.at.as_micros() as f64), y(f64::from(p.battery_percent))))
        .collect();
    let duty: Vec<(f64, f64)> = series
        .iter()
        .map(|p| {
            (
                x(p.at.as_micros() as f64),
                y(p.duty_cycle_utilization * 100.0),
            )
        })
        .collect();
    format!(
        "<svg width=\"{w}\" height=\"{h}\" role=\"img\">{}{}\
         <text x=\"12\" y=\"14\" font-size=\"9\" fill=\"#369\">battery %</text>\
         <text x=\"70\" y=\"14\" font-size=\"9\" fill=\"#d70\">duty % of cap</text></svg>",
        line(&battery, "#369"),
        line(&duty, "#d70")
    )
}

fn alerts_list(alerts: &[Alert]) -> String {
    if alerts.is_empty() {
        return "<p>none</p>".to_owned();
    }
    let mut html = String::from("<ul>");
    for a in alerts {
        let _ = write!(
            html,
            "<li class=\"alert\">[{}] {} — {}</li>",
            a.at,
            a.kind,
            escape(&a.message)
        );
    }
    html.push_str("</ul>");
    html
}

#[cfg(test)]
mod tests {
    use super::*;
    use loramon_core::{PacketRecord, Report};
    use loramon_mesh::{Direction, PacketType};
    use loramon_server::ServerConfig;
    use loramon_sim::SimTime;

    fn populated_server() -> MonitorServer {
        let server = MonitorServer::new(ServerConfig::default());
        let report = Report {
            node: NodeId(1),
            report_seq: 0,
            generated_at_ms: 60_000,
            dropped_records: 0,
            status: None,
            records: vec![PacketRecord {
                seq: 0,
                timestamp_ms: 59_000,
                direction: Direction::In,
                node: NodeId(1),
                counterpart: NodeId(2),
                ptype: PacketType::Data,
                origin: NodeId(2),
                final_dst: NodeId(1),
                packet_id: 1,
                ttl: 5,
                size_bytes: 30,
                rssi_dbm: Some(-92.0),
                snr_db: Some(4.5),
            }],
        };
        server.ingest(&report, SimTime::from_secs(61));
        server
    }

    #[test]
    fn generate_contains_all_sections() {
        let html = generate(&populated_server(), &HtmlOptions::default());
        for section in ["Nodes", "Packets over time", "Links", "Topology", "Alerts"] {
            assert!(html.contains(section), "missing section {section}");
        }
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.ends_with("</html>"));
        assert!(html.contains("0001"));
        assert!(html.contains("svg"));
    }

    #[test]
    fn empty_server_generates_gracefully() {
        let server = MonitorServer::new(ServerConfig::default());
        let html = generate(&server, &HtmlOptions::default());
        assert!(html.contains("(no data)"));
        assert!(html.contains("(no nodes)"));
    }

    #[test]
    fn series_svg_bar_count() {
        let series = vec![
            SeriesPoint {
                bucket: SimTime::ZERO,
                count: 2,
            },
            SeriesPoint {
                bucket: SimTime::from_secs(60),
                count: 4,
            },
        ];
        let svg = series_svg(&series);
        assert_eq!(svg.matches("<rect").count(), 2);
    }

    #[test]
    fn topology_svg_uses_known_positions() {
        let server = populated_server();
        let topo = server.topology(Window::all());
        let mut positions = BTreeMap::new();
        positions.insert(NodeId(1), Position::new(0.0, 0.0));
        positions.insert(NodeId(2), Position::new(500.0, 0.0));
        let svg = topology_svg(&topo, &positions);
        assert_eq!(svg.matches("<circle").count(), 2);
        assert_eq!(svg.matches("<line").count(), 1);
    }

    #[test]
    fn histogram_svg_renders_bins() {
        let svg = histogram_svg(&[(-100.0, 2), (-95.0, 5), (-90.0, 1)]);
        assert_eq!(svg.matches("<rect").count(), 3);
        assert!(svg.contains("-95 dBm: 5"));
        assert_eq!(histogram_svg(&[]), "<p>(no data)</p>");
    }

    #[test]
    fn generate_includes_new_sections() {
        let html = generate(&populated_server(), &HtmlOptions::default());
        assert!(html.contains("RSSI distribution"));
        assert!(html.contains("Link delivery ratios"));
    }

    #[test]
    fn status_svg_draws_two_polylines() {
        use loramon_sim::SimTime;
        let series = vec![
            StatusPoint {
                at: SimTime::from_secs(30),
                battery_percent: 100,
                queue_len: 0,
                duty_cycle_utilization: 0.1,
                reachable: 2,
            },
            StatusPoint {
                at: SimTime::from_secs(60),
                battery_percent: 95,
                queue_len: 1,
                duty_cycle_utilization: 0.3,
                reachable: 2,
            },
        ];
        let svg = status_svg(&series);
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("battery"));
        assert_eq!(status_svg(&[]), "<p>(no status history)</p>");
    }

    #[test]
    fn rollups_section_renders_dash_for_missing_rssi() {
        // Disabled rollups → no section at all.
        let html = generate(&populated_server(), &HtmlOptions::default());
        assert!(!html.contains("Rollups"));

        let server = MonitorServer::new(ServerConfig {
            rollup_bucket: Some(Duration::from_secs(60)),
            ..ServerConfig::default()
        });
        let report = Report {
            node: NodeId(1),
            report_seq: 0,
            generated_at_ms: 60_000,
            dropped_records: 0,
            status: None,
            records: vec![PacketRecord {
                seq: 0,
                timestamp_ms: 59_000,
                direction: Direction::Out,
                node: NodeId(1),
                counterpart: NodeId(2),
                ptype: PacketType::Data,
                origin: NodeId(1),
                final_dst: NodeId(2),
                packet_id: 1,
                ttl: 5,
                size_bytes: 30,
                rssi_dbm: None,
                snr_db: None,
            }],
        };
        server.ingest(&report, SimTime::from_secs(61));
        let html = generate(&server, &HtmlOptions::default());
        assert!(html.contains("Rollups"), "{html}");
        assert!(
            html.contains("<td>—</td>"),
            "missing-RSSI bucket must render a dash"
        );
    }

    #[test]
    fn title_is_escaped() {
        let server = populated_server();
        let html = generate(
            &server,
            &HtmlOptions {
                title: "a<b&c".into(),
                ..HtmlOptions::default()
            },
        );
        assert!(html.contains("a&lt;b&amp;c"));
        assert!(!html.contains("<b&c</title>"));
    }
}
