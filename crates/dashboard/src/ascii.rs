//! Terminal rendering: tables, sparklines and bar charts.
//!
//! The paper's dashboard is a web page; operators in the field get this
//! ASCII twin so every example binary can show the same information in a
//! terminal.

use loramon_server::{
    Alert, LinkStats, NodeHealth, NodeSummary, RollupPoint, SeriesPoint, Topology,
};

/// Render a box-drawing table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let sep = |l: char, m: char, r: char| {
        let mut s = String::new();
        s.push(l);
        for (i, w) in widths.iter().enumerate() {
            s.push_str(&"─".repeat(w + 2));
            s.push(if i + 1 == widths.len() { r } else { m });
        }
        s.push('\n');
        s
    };
    let render_row = |cells: &[String]| {
        let mut s = String::from("│");
        for (w, cell) in widths.iter().zip(cells) {
            let pad = w - cell.chars().count();
            s.push(' ');
            s.push_str(cell);
            s.push_str(&" ".repeat(pad + 1));
            s.push('│');
        }
        s.push('\n');
        s
    };
    let mut out = sep('┌', '┬', '┐');
    out.push_str(&render_row(
        &headers.iter().map(|h| (*h).to_owned()).collect::<Vec<_>>(),
    ));
    out.push_str(&sep('├', '┼', '┤'));
    for row in rows {
        out.push_str(&render_row(row));
    }
    out.push_str(&sep('└', '┴', '┘'));
    out
}

/// Unicode sparkline of a value series (empty input → empty string).
pub fn sparkline(values: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return values.iter().map(|_| BARS[0]).collect();
    }
    values
        .iter()
        .map(|&v| {
            let idx = (v * (BARS.len() as u64 - 1) + max / 2) / max;
            BARS[idx as usize]
        })
        .collect()
}

/// Horizontal bar chart with labels.
pub fn bar_chart(entries: &[(String, u64)], width: usize) -> String {
    let max = entries.iter().map(|(_, v)| *v).max().unwrap_or(0).max(1);
    let label_w = entries
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, value) in entries {
        let bar_len = (*value as usize * width).div_ceil(max as usize).min(width);
        let bar_len = if *value == 0 { 0 } else { bar_len.max(1) };
        out.push_str(&format!(
            "{label:<label_w$} │{} {value}\n",
            "█".repeat(bar_len)
        ));
    }
    out
}

/// The node-summary table (the dashboard's main table).
pub fn render_node_summaries(summaries: &[NodeSummary]) -> String {
    let rows: Vec<Vec<String>> = summaries
        .iter()
        .map(|s| {
            vec![
                s.node.to_string(),
                s.reports.to_string(),
                s.missing_reports.to_string(),
                s.restarts.to_string(),
                s.records.to_string(),
                s.battery_percent
                    .map_or_else(|| "–".into(), |b| format!("{b}%")),
                s.queue_len.map_or_else(|| "–".into(), |q| q.to_string()),
                s.duty_cycle_utilization
                    .map_or_else(|| "–".into(), |d| format!("{:.1}%", d * 100.0)),
                s.reachable.map_or_else(|| "–".into(), |r| r.to_string()),
                s.last_report_at
                    .map_or_else(|| "never".into(), |t| t.to_string()),
            ]
        })
        .collect();
    render_table(
        &[
            "node",
            "reports",
            "missing",
            "restarts",
            "records",
            "battery",
            "queue",
            "duty",
            "reach",
            "last seen",
        ],
        &rows,
    )
}

/// A titled time series with a sparkline and scale.
pub fn render_series(title: &str, series: &[SeriesPoint]) -> String {
    if series.is_empty() {
        return format!("{title}: (no data)\n");
    }
    let values: Vec<u64> = series.iter().map(|p| p.count).collect();
    let max = values.iter().copied().max().unwrap_or(0);
    format!(
        "{title} [{} … {}] max {}/bucket\n{}\n",
        series[0].bucket,
        series[series.len() - 1].bucket,
        max,
        sparkline(&values)
    )
}

/// The per-link reception table.
pub fn render_links(links: &[LinkStats]) -> String {
    let rows: Vec<Vec<String>> = links
        .iter()
        .map(|l| {
            vec![
                format!("{} → {}", l.from, l.to),
                l.packets.to_string(),
                format!("{:.1}", l.mean_rssi_dbm),
                format!("{:.1}", l.min_rssi_dbm),
                format!("{:.1}", l.max_rssi_dbm),
                format!("{:.1}", l.mean_snr_db),
            ]
        })
        .collect();
    render_table(&["link", "pkts", "rssi", "min", "max", "snr"], &rows)
}

/// Adjacency-list rendering of an inferred topology.
pub fn render_topology(topo: &Topology) -> String {
    let mut out = String::from("topology (heard links):\n");
    for node in &topo.nodes {
        let peers: Vec<String> = topo
            .heard_edges
            .iter()
            .filter(|e| e.to == *node)
            .map(|e| {
                format!(
                    "{}({})",
                    e.from,
                    e.rssi_dbm
                        .map_or_else(|| "?".into(), |r| format!("{r:.0}dBm"))
                )
            })
            .collect();
        out.push_str(&format!(
            "  {node} ← {}\n",
            if peers.is_empty() {
                "(nothing heard)".to_owned()
            } else {
                peers.join(", ")
            }
        ));
    }
    let stale = topo.stale_route_edges();
    if !stale.is_empty() {
        out.push_str("stale routes (routed but never heard):\n");
        for (a, b) in stale {
            out.push_str(&format!("  {a} → {b}\n"));
        }
    }
    out
}

/// Render a numeric histogram as labelled bars.
///
/// `bins` are `(bin_start, count)` pairs; `unit` labels the bin axis.
pub fn render_histogram(bins: &[(f64, u64)], unit: &str, width: usize) -> String {
    if bins.is_empty() {
        return "(no data)\n".to_owned();
    }
    let entries: Vec<(String, u64)> = bins
        .iter()
        .map(|&(b, c)| (format!("{b:>7.1} {unit}"), c))
        .collect();
    bar_chart(&entries, width)
}

/// Per-node health verdicts.
pub fn render_health(health: &[NodeHealth]) -> String {
    if health.is_empty() {
        return "health: (no nodes)\n".to_owned();
    }
    let mut out = String::from("health:\n");
    for h in health {
        let light = match h.level {
            loramon_server::HealthLevel::Green => "●",
            loramon_server::HealthLevel::Yellow => "◐",
            loramon_server::HealthLevel::Red => "○",
        };
        out.push_str(&format!(
            "  {light} {} {} {}\n",
            h.node,
            h.level,
            if h.reasons.is_empty() {
                String::new()
            } else {
                format!("— {}", h.reasons.join("; "))
            }
        ));
    }
    out
}

/// Long-horizon rollup table. Buckets with no RSSI samples show `—`
/// instead of a number — there is no "no signal" dBm value.
pub fn render_rollups(rollups: &[RollupPoint]) -> String {
    if rollups.is_empty() {
        return "rollups: (none)\n".to_owned();
    }
    let rows: Vec<Vec<String>> = rollups
        .iter()
        .map(|p| {
            vec![
                p.bucket.to_string(),
                p.node.to_string(),
                p.in_count.to_string(),
                p.out_count.to_string(),
                p.bytes.to_string(),
                p.mean_rssi_dbm
                    .map_or_else(|| "—".into(), |r| format!("{r:.1}")),
                p.rssi_samples.to_string(),
            ]
        })
        .collect();
    render_table(
        &["bucket", "node", "in", "out", "bytes", "rssi", "samples"],
        &rows,
    )
}

/// Alert history rendering.
pub fn render_alerts(alerts: &[Alert]) -> String {
    if alerts.is_empty() {
        return "alerts: none\n".to_owned();
    }
    let mut out = String::from("alerts:\n");
    for a in alerts {
        out.push_str(&format!("  [{}] {} — {}\n", a.at, a.kind, a.message));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use loramon_sim::{NodeId, SimTime};

    #[test]
    fn table_renders_and_aligns() {
        let t = render_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 6);
        // All lines have equal display width.
        let w = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == w));
        assert!(t.contains("333"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = render_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn sparkline_scales() {
        let s = sparkline(&[0, 4, 8]);
        assert_eq!(s.chars().count(), 3);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[2], '█');
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "▁▁");
    }

    #[test]
    fn bar_chart_proportions() {
        let chart = bar_chart(
            &[
                ("data".into(), 10),
                ("routing".into(), 5),
                ("ack".into(), 0),
            ],
            20,
        );
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3);
        let bars: Vec<usize> = lines
            .iter()
            .map(|l| l.chars().filter(|&c| c == '█').count())
            .collect();
        assert_eq!(bars[0], 20);
        assert_eq!(bars[1], 10);
        assert_eq!(bars[2], 0);
    }

    #[test]
    fn node_summary_table_handles_missing_status() {
        let s = NodeSummary {
            node: NodeId(1),
            last_report_at: Some(SimTime::from_secs(10)),
            reports: 3,
            missing_reports: 1,
            restarts: 0,
            records: 42,
            client_dropped: 0,
            battery_percent: None,
            uptime_ms: None,
            queue_len: None,
            duty_cycle_utilization: None,
            reachable: None,
            mesh: None,
        };
        let t = render_node_summaries(&[s]);
        assert!(t.contains("0001"));
        assert!(t.contains('–'));
        assert!(t.contains("42"));
    }

    #[test]
    fn series_rendering() {
        let series = vec![
            SeriesPoint {
                bucket: SimTime::ZERO,
                count: 1,
            },
            SeriesPoint {
                bucket: SimTime::from_secs(60),
                count: 5,
            },
        ];
        let s = render_series("packets", &series);
        assert!(s.contains("packets"));
        assert!(s.contains("max 5"));
        assert!(render_series("x", &[]).contains("no data"));
    }

    #[test]
    fn histogram_rendering() {
        let s = render_histogram(&[(-100.0, 3), (-95.0, 7)], "dBm", 10);
        assert!(s.contains("-100.0 dBm"));
        assert!(s.contains("-95.0 dBm"));
        assert_eq!(render_histogram(&[], "dBm", 10), "(no data)\n");
    }

    #[test]
    fn health_rendering() {
        use loramon_server::{HealthLevel, NodeHealth};
        let rows = vec![
            NodeHealth {
                node: NodeId(1),
                level: HealthLevel::Green,
                reasons: vec![],
            },
            NodeHealth {
                node: NodeId(2),
                level: HealthLevel::Red,
                reasons: vec!["battery 5%".into(), "queue 40".into()],
            },
        ];
        let s = render_health(&rows);
        assert!(s.contains("0001 green"));
        assert!(s.contains("0002 red — battery 5%; queue 40"));
        assert!(render_health(&[]).contains("no nodes"));
    }

    #[test]
    fn rollups_render_missing_rssi_as_dash() {
        assert!(render_rollups(&[]).contains("(none)"));
        let rows = vec![
            RollupPoint {
                bucket: SimTime::from_secs(0),
                node: NodeId(1),
                in_count: 4,
                out_count: 2,
                bytes: 180,
                mean_rssi_dbm: Some(-93.25),
                rssi_samples: 4,
            },
            RollupPoint {
                bucket: SimTime::from_secs(900),
                node: NodeId(1),
                in_count: 0,
                out_count: 3,
                bytes: 90,
                mean_rssi_dbm: None,
                rssi_samples: 0,
            },
        ];
        let t = render_rollups(&rows);
        assert!(t.contains("-93.2") || t.contains("-93.3"), "{t}");
        assert!(
            t.contains('—'),
            "missing-RSSI bucket must render a dash: {t}"
        );
    }

    #[test]
    fn alerts_rendering() {
        assert!(render_alerts(&[]).contains("none"));
        let a = Alert {
            kind: loramon_server::AlertKind::NodeSilent,
            node: NodeId(3),
            at: SimTime::from_secs(100),
            message: "node 0003 has not reported".into(),
        };
        let s = render_alerts(&[a]);
        assert!(s.contains("node-silent"));
        assert!(s.contains("100.000s"));
    }
}
