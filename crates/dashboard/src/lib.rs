//! # loramon-dashboard
//!
//! Visualization for the LoRa mesh monitoring server: an ASCII twin of
//! the paper's web dashboard for terminals ([`ascii`]), and a
//! self-contained static HTML/SVG page generator ([`html`]) whose
//! sections regenerate R-Fig-2 (packets over time), R-Fig-3 (link
//! quality) and R-Fig-4 (topology).
//!
//! ## Example
//!
//! ```
//! use loramon_dashboard::ascii;
//!
//! let spark = ascii::sparkline(&[1, 3, 7, 2]);
//! assert_eq!(spark.chars().count(), 4);
//! ```

pub mod ascii;
pub mod html;

pub use html::{generate as generate_html, HtmlOptions};
