//! The acknowledged uplink transport.
//!
//! Fire-and-forget reporting loses every report the uplink drops. This
//! module adds the client half of an acknowledged delivery layer: a
//! [`RetransmitQueue`] keeps each emitted [`Report`] until the server's
//! ingest outcome comes back as an ack for `(node, report_seq)`,
//! retrying with exponential backoff plus deterministic jitter. The
//! queue is bounded: during a long outage it degrades gracefully by
//! evicting the oldest pending report and folding the loss into the
//! next report's `dropped_records` counter, so the server still learns
//! *how much* telemetry was lost even when it cannot learn *what*.
//!
//! ## State machine
//!
//! ```text
//!             enqueue                 ack(node, seq)
//!   report ──────────▶ pending ────────────────────▶ acked (gone)
//!                        │ ▲
//!             due(now)   │ │ backoff(attempt) + jitter
//!                        ▼ │
//!                      sent (still pending)
//!                        │
//!   queue full ──────────┤ max_attempts reached
//!                        ▼
//!                     evicted (records counted, reported later)
//! ```
//!
//! ## Determinism
//!
//! Backoff jitter is derived with [`Rng::derive`] from
//! `(seed, node, report_seq, attempt)` — never from ambient time or
//! global RNG state — so a replay from the same scenario seed produces
//! byte-identical retry schedules.

use crate::report::Report;
use loramon_sim::{NodeId, Rng, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::time::Duration;

/// Domain label mixed into every jitter derivation.
const JITTER_LABEL: u64 = 0x0BAC_0FF5;

/// Configuration of the acknowledged uplink transport.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransportConfig {
    /// Maximum pending (unacked) reports kept; the oldest is evicted on
    /// overflow (default 64).
    pub capacity: usize,
    /// Backoff before the first retry; doubles per attempt (default 15 s).
    pub initial_backoff: Duration,
    /// Ceiling on the exponential backoff (default 240 s).
    pub max_backoff: Duration,
    /// Uniform random extra delay in `[0, jitter)` added to every retry
    /// to decorrelate node retry storms (default 5 s).
    pub jitter: Duration,
    /// Give up on a report after this many send attempts; `0` retries
    /// forever (the default).
    pub max_attempts: u32,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl TransportConfig {
    /// The defaults described in the field docs.
    pub fn new() -> Self {
        TransportConfig {
            capacity: 64,
            initial_backoff: Duration::from_secs(15),
            max_backoff: Duration::from_secs(240),
            jitter: Duration::from_secs(5),
            max_attempts: 0,
            seed: 0,
        }
    }

    /// Set the pending-queue capacity (builder style).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Set the initial and maximum backoff (builder style).
    pub fn with_backoff(mut self, initial: Duration, max: Duration) -> Self {
        self.initial_backoff = initial;
        self.max_backoff = max;
        self
    }

    /// Set the per-retry jitter bound (builder style).
    pub fn with_jitter(mut self, jitter: Duration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Set the attempt cap; `0` retries forever (builder style).
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts;
        self
    }

    /// Set the jitter-stream seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Backoff (without jitter) before retry number `attempt` (1-based).
    fn backoff(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(24);
        let scaled = self
            .initial_backoff
            .saturating_mul(1u32.checked_shl(shift).unwrap_or(u32::MAX));
        scaled.min(self.max_backoff)
    }

    /// Deterministic jitter for `(node, seq, attempt)`.
    fn jitter_for(&self, node: NodeId, seq: u32, attempt: u32) -> Duration {
        let jitter_us = self.jitter.as_micros() as u64;
        if jitter_us == 0 {
            return Duration::ZERO;
        }
        let mut rng = Rng::derive(
            self.seed,
            &[
                JITTER_LABEL,
                u64::from(node.raw()),
                u64::from(seq),
                u64::from(attempt),
            ],
        );
        Duration::from_micros(rng.next_below(jitter_us))
    }
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig::new()
    }
}

/// One report awaiting its ack.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingReport {
    /// The report itself.
    pub report: Report,
    /// Send attempts made so far (0 = not yet sent).
    pub attempts: u32,
    /// Earliest time of the next send attempt.
    pub next_attempt_at: SimTime,
}

/// Transport counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Reports handed to the transport.
    pub enqueued: u64,
    /// Reports confirmed by the server.
    pub acked: u64,
    /// Send attempts beyond the first, across all reports.
    pub retransmissions: u64,
    /// Reports evicted because the queue was full.
    pub evicted_reports: u64,
    /// Reports dropped after exhausting `max_attempts`.
    pub expired_reports: u64,
    /// Packet records lost inside evicted/expired reports (including
    /// their own `dropped_records` tallies, so loss accounting stays
    /// conserved end to end).
    pub lost_records: u64,
    /// High-water mark of the pending queue.
    pub max_depth: u64,
}

impl TransportStats {
    /// Sum of the two merged counter sets (used when aggregating the
    /// stats of several transports, e.g. across scenario nodes).
    pub fn merged_with(self, other: TransportStats) -> TransportStats {
        TransportStats {
            enqueued: self.enqueued + other.enqueued,
            acked: self.acked + other.acked,
            retransmissions: self.retransmissions + other.retransmissions,
            evicted_reports: self.evicted_reports + other.evicted_reports,
            expired_reports: self.expired_reports + other.expired_reports,
            lost_records: self.lost_records + other.lost_records,
            max_depth: self.max_depth.max(other.max_depth),
        }
    }
}

/// The bounded, acknowledged retransmit queue (client side).
#[derive(Debug)]
pub struct RetransmitQueue {
    config: TransportConfig,
    pending: VecDeque<PendingReport>,
    stats: TransportStats,
    /// Records lost to eviction/expiry since the last report drained
    /// them (folded into the next report's `dropped_records`).
    unreported_lost_records: u64,
}

impl RetransmitQueue {
    /// An empty queue with the given configuration. A zero capacity is
    /// treated as 1 — a transport that can hold nothing is just
    /// fire-and-forget with extra steps.
    pub fn new(config: TransportConfig) -> Self {
        let config = TransportConfig {
            capacity: config.capacity.max(1),
            ..config
        };
        RetransmitQueue {
            config,
            pending: VecDeque::new(),
            stats: TransportStats::default(),
            unreported_lost_records: 0,
        }
    }

    /// The configuration (capacity normalized to at least 1).
    pub fn config(&self) -> &TransportConfig {
        &self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Pending (unacked) reports.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Iterate the pending reports, oldest first.
    pub fn pending(&self) -> impl Iterator<Item = &PendingReport> {
        self.pending.iter()
    }

    /// Accept a fresh report for delivery; it becomes due immediately.
    /// On overflow the oldest pending report is evicted and its records
    /// are added to the unreported-loss tally.
    pub fn enqueue(&mut self, report: Report, now: SimTime) {
        while self.pending.len() >= self.config.capacity {
            if let Some(evicted) = self.pending.pop_front() {
                self.stats.evicted_reports += 1;
                self.account_loss(&evicted.report);
            } else {
                break;
            }
        }
        self.stats.enqueued += 1;
        self.pending.push_back(PendingReport {
            report,
            attempts: 0,
            next_attempt_at: now,
        });
        self.stats.max_depth = self.stats.max_depth.max(self.pending.len() as u64);
    }

    /// Reports due for a (re)send at `now`, as `(attempt, report)` pairs
    /// where `attempt` counts prior sends (0 for the first). Each
    /// returned report has its next retry scheduled by exponential
    /// backoff + deterministic jitter; reports that exhausted
    /// `max_attempts` are dropped and counted instead of returned.
    pub fn due(&mut self, now: SimTime) -> Vec<(u32, Report)> {
        self.collect_sends(now, false)
    }

    /// Like [`due`](RetransmitQueue::due) but ignores the backoff
    /// schedule and sends everything still pending — the end-of-run
    /// drain used by harnesses to let the tail of a run settle.
    pub fn flush(&mut self, now: SimTime) -> Vec<(u32, Report)> {
        self.collect_sends(now, true)
    }

    fn collect_sends(&mut self, now: SimTime, force: bool) -> Vec<(u32, Report)> {
        let mut out = Vec::new();
        let mut kept = VecDeque::with_capacity(self.pending.len());
        while let Some(mut p) = self.pending.pop_front() {
            if !force && p.next_attempt_at > now {
                kept.push_back(p);
                continue;
            }
            if self.config.max_attempts > 0 && p.attempts >= self.config.max_attempts {
                self.stats.expired_reports += 1;
                self.account_loss(&p.report);
                continue;
            }
            let attempt = p.attempts;
            if attempt > 0 {
                self.stats.retransmissions += 1;
            }
            p.attempts += 1;
            let (node, seq) = (p.report.node, p.report.report_seq);
            p.next_attempt_at = now
                + self.config.backoff(p.attempts)
                + self.config.jitter_for(node, seq, p.attempts);
            out.push((attempt, p.report.clone()));
            kept.push_back(p);
        }
        self.pending = kept;
        out
    }

    /// The server confirmed `(node, report_seq)`; drop it from the
    /// queue. Returns whether anything was pending under that key.
    pub fn ack(&mut self, node: NodeId, report_seq: u32) -> bool {
        let before = self.pending.len();
        self.pending
            .retain(|p| !(p.report.node == node && p.report.report_seq == report_seq));
        let acked = self.pending.len() < before;
        if acked {
            self.stats.acked += 1;
        }
        acked
    }

    /// Drain the records-lost tally accumulated by evictions and
    /// expiries since the last call — the amount the client folds into
    /// its next report's `dropped_records`.
    pub fn take_lost_records(&mut self) -> u64 {
        std::mem::take(&mut self.unreported_lost_records)
    }

    /// Crash semantics: the node rebooted and all volatile transport
    /// state is gone. Pending reports vanish without being counted —
    /// the node that would have counted them no longer remembers them.
    pub fn reset_for_reboot(&mut self) {
        self.pending.clear();
        self.unreported_lost_records = 0;
    }

    fn account_loss(&mut self, report: &Report) {
        let lost = report.records.len() as u64 + report.dropped_records;
        self.stats.lost_records += lost;
        self.unreported_lost_records += lost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(node: u16, seq: u32, records: usize) -> Report {
        Report {
            node: NodeId(node),
            report_seq: seq,
            generated_at_ms: u64::from(seq) * 30_000,
            dropped_records: 0,
            status: None,
            records: (0..records)
                .map(|i| crate::record::PacketRecord {
                    seq: i as u64,
                    timestamp_ms: 0,
                    direction: loramon_mesh::Direction::In,
                    node: NodeId(node),
                    counterpart: NodeId(2),
                    ptype: loramon_mesh::PacketType::Data,
                    origin: NodeId(2),
                    final_dst: NodeId(node),
                    packet_id: 1,
                    ttl: 1,
                    size_bytes: 20,
                    rssi_dbm: None,
                    snr_db: None,
                })
                .collect(),
        }
    }

    #[test]
    fn first_send_is_due_immediately_then_backs_off() {
        let mut q = RetransmitQueue::new(TransportConfig::new().with_jitter(Duration::ZERO));
        q.enqueue(report(1, 0, 0), SimTime::from_secs(10));
        let due = q.due(SimTime::from_secs(10));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].0, 0, "first send is attempt 0");
        // Not due again until the initial backoff elapses.
        assert!(q.due(SimTime::from_secs(20)).is_empty());
        let due = q.due(SimTime::from_secs(25));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].0, 1, "second send is attempt 1");
        assert_eq!(q.stats().retransmissions, 1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg =
            TransportConfig::new().with_backoff(Duration::from_secs(10), Duration::from_secs(35));
        assert_eq!(cfg.backoff(1), Duration::from_secs(10));
        assert_eq!(cfg.backoff(2), Duration::from_secs(20));
        assert_eq!(cfg.backoff(3), Duration::from_secs(35), "capped");
        assert_eq!(cfg.backoff(30), Duration::from_secs(35), "shift saturates");
    }

    #[test]
    fn jitter_is_deterministic_and_attempt_dependent() {
        let cfg = TransportConfig::new().with_seed(7);
        let a = cfg.jitter_for(NodeId(1), 5, 1);
        let b = cfg.jitter_for(NodeId(1), 5, 1);
        assert_eq!(a, b, "same key, same jitter");
        let c = cfg.jitter_for(NodeId(1), 5, 2);
        let d = cfg.jitter_for(NodeId(2), 5, 1);
        // Different attempts/nodes draw from different streams; equality
        // would be a (vanishingly unlikely) collision for these keys.
        assert!(a != c || a != d, "jitter streams not separated");
        assert!(a < cfg.jitter);
    }

    #[test]
    fn ack_removes_pending() {
        let mut q = RetransmitQueue::new(TransportConfig::new());
        q.enqueue(report(1, 0, 1), SimTime::ZERO);
        q.enqueue(report(1, 1, 1), SimTime::ZERO);
        assert!(q.ack(NodeId(1), 0));
        assert!(!q.ack(NodeId(1), 0), "double ack is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.stats().acked, 1);
        // The acked report is never sent again.
        let due = q.due(SimTime::ZERO);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].1.report_seq, 1);
    }

    #[test]
    fn overflow_evicts_oldest_and_counts_records() {
        let mut q = RetransmitQueue::new(TransportConfig::new().with_capacity(2));
        q.enqueue(report(1, 0, 3), SimTime::ZERO);
        q.enqueue(report(1, 1, 4), SimTime::ZERO);
        q.enqueue(report(1, 2, 5), SimTime::ZERO);
        assert_eq!(q.len(), 2);
        let seqs: Vec<u32> = q.pending().map(|p| p.report.report_seq).collect();
        assert_eq!(seqs, vec![1, 2], "oldest evicted first");
        assert_eq!(q.stats().evicted_reports, 1);
        assert_eq!(q.stats().lost_records, 3);
        assert_eq!(q.take_lost_records(), 3);
        assert_eq!(q.take_lost_records(), 0, "tally drains once");
    }

    #[test]
    fn eviction_preserves_nested_drop_counts() {
        let mut q = RetransmitQueue::new(TransportConfig::new().with_capacity(1));
        let mut r = report(1, 0, 2);
        r.dropped_records = 7;
        q.enqueue(r, SimTime::ZERO);
        q.enqueue(report(1, 1, 0), SimTime::ZERO);
        // 2 carried records + 7 the report itself was accounting for.
        assert_eq!(q.take_lost_records(), 9);
    }

    #[test]
    fn max_attempts_expires_reports() {
        let cfg = TransportConfig::new()
            .with_max_attempts(2)
            .with_backoff(Duration::from_secs(1), Duration::from_secs(1))
            .with_jitter(Duration::ZERO);
        let mut q = RetransmitQueue::new(cfg);
        q.enqueue(report(1, 0, 2), SimTime::ZERO);
        assert_eq!(q.due(SimTime::from_secs(0)).len(), 1);
        assert_eq!(q.due(SimTime::from_secs(2)).len(), 1);
        // Third try: attempts exhausted, the report expires instead.
        assert!(q.due(SimTime::from_secs(4)).is_empty());
        assert!(q.is_empty());
        assert_eq!(q.stats().expired_reports, 1);
        assert_eq!(q.take_lost_records(), 2);
    }

    #[test]
    fn flush_ignores_backoff_schedule() {
        let mut q = RetransmitQueue::new(TransportConfig::new());
        q.enqueue(report(1, 0, 0), SimTime::ZERO);
        let _ = q.due(SimTime::ZERO);
        // Immediately after a send nothing is due…
        assert!(q.due(SimTime::from_millis(1)).is_empty());
        // …but flush sends anyway.
        assert_eq!(q.flush(SimTime::from_millis(2)).len(), 1);
    }

    #[test]
    fn reboot_wipes_pending_silently() {
        let mut q = RetransmitQueue::new(TransportConfig::new());
        q.enqueue(report(1, 0, 5), SimTime::ZERO);
        q.reset_for_reboot();
        assert!(q.is_empty());
        assert_eq!(
            q.take_lost_records(),
            0,
            "crash loss is invisible to the node"
        );
        assert_eq!(q.stats().evicted_reports, 0);
    }

    #[test]
    fn zero_capacity_is_normalized() {
        let q = RetransmitQueue::new(TransportConfig::new().with_capacity(0));
        assert_eq!(q.config().capacity, 1);
    }

    #[test]
    fn stats_merge() {
        let a = TransportStats {
            enqueued: 1,
            max_depth: 3,
            ..TransportStats::default()
        };
        let b = TransportStats {
            enqueued: 2,
            max_depth: 2,
            ..TransportStats::default()
        };
        let m = a.merged_with(b);
        assert_eq!(m.enqueued, 3);
        assert_eq!(m.max_depth, 3);
    }
}
