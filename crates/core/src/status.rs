//! Node-status snapshots — the second half of a monitoring report.
//!
//! Besides per-packet records, the client periodically ships the node's
//! own view of itself: uptime, battery, queue depth, duty-cycle budget,
//! protocol counters and the full routing table. The server uses the
//! routing tables for topology inference (R-Fig-4).

use loramon_mesh::{MeshSnapshot, MeshStats};
use loramon_sim::NodeId;
use serde::{Deserialize, Serialize};

/// One routing-table entry as reported to the server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReportedRoute {
    /// Destination address.
    pub address: NodeId,
    /// Next hop toward the destination.
    pub next_hop: NodeId,
    /// Hop count.
    pub metric: u8,
    /// RSSI of the last routing packet from the next hop.
    pub rssi_dbm: f64,
    /// SNR of that packet.
    pub snr_db: f64,
}

/// A node's self-reported status.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeStatus {
    /// The reporting node.
    pub node: NodeId,
    /// Milliseconds since node boot.
    pub uptime_ms: u64,
    /// Remaining battery percentage.
    pub battery_percent: u8,
    /// Outbound mesh queue depth in frames.
    pub queue_len: u32,
    /// Duty-cycle budget utilization (1.0 = at the regulatory cap).
    pub duty_cycle_utilization: f64,
    /// Mesh protocol counters.
    pub mesh: MeshStats,
    /// The node's routing table.
    pub routes: Vec<ReportedRoute>,
}

impl NodeStatus {
    /// Build a status from a mesh snapshot.
    pub fn from_snapshot(snapshot: &MeshSnapshot) -> Self {
        NodeStatus {
            node: snapshot.node,
            uptime_ms: snapshot.now.as_millis(),
            battery_percent: snapshot.battery_percent,
            queue_len: u32::try_from(snapshot.queue_len).unwrap_or(u32::MAX),
            duty_cycle_utilization: snapshot.duty_cycle_utilization,
            mesh: snapshot.stats,
            routes: snapshot
                .routes
                .iter()
                .map(|r| ReportedRoute {
                    address: r.address,
                    next_hop: r.next_hop,
                    metric: r.metric,
                    rssi_dbm: r.rssi_dbm,
                    snr_db: r.snr_db,
                })
                .collect(),
        }
    }

    /// Number of destinations this node can reach.
    pub fn reachable_count(&self) -> usize {
        self.routes.len()
    }

    /// The node's direct neighbors (metric-1 routes).
    pub fn neighbors(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.routes
            .iter()
            .filter(|r| r.metric == 1)
            .map(|r| r.address)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loramon_mesh::Route;
    use loramon_sim::SimTime;

    fn snapshot() -> MeshSnapshot {
        MeshSnapshot {
            node: NodeId(3),
            now: SimTime::from_secs(120),
            routes: vec![
                Route {
                    address: NodeId(1),
                    next_hop: NodeId(1),
                    metric: 1,
                    last_seen: SimTime::from_secs(100),
                    rssi_dbm: -88.0,
                    snr_db: 6.5,
                },
                Route {
                    address: NodeId(5),
                    next_hop: NodeId(1),
                    metric: 2,
                    last_seen: SimTime::from_secs(110),
                    rssi_dbm: -88.0,
                    snr_db: 6.5,
                },
            ],
            queue_len: 2,
            stats: MeshStats::default(),
            battery_percent: 87,
            duty_cycle_utilization: 0.12,
        }
    }

    #[test]
    fn from_snapshot_maps_fields() {
        let s = NodeStatus::from_snapshot(&snapshot());
        assert_eq!(s.node, NodeId(3));
        assert_eq!(s.uptime_ms, 120_000);
        assert_eq!(s.battery_percent, 87);
        assert_eq!(s.queue_len, 2);
        assert_eq!(s.reachable_count(), 2);
        assert_eq!(s.routes[0].next_hop, NodeId(1));
    }

    #[test]
    fn neighbors_are_metric_one() {
        let s = NodeStatus::from_snapshot(&snapshot());
        let n: Vec<NodeId> = s.neighbors().collect();
        assert_eq!(n, vec![NodeId(1)]);
    }

    #[test]
    fn json_roundtrip() {
        let s = NodeStatus::from_snapshot(&snapshot());
        let json = serde_json::to_string(&s).unwrap();
        let back: NodeStatus = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
