//! A bounded record buffer with an explicit drop policy.
//!
//! Real nodes have a few kilobytes to spare for monitoring; when the
//! uplink is down or the report period is long, the buffer fills and
//! something must be dropped. The policy choice is one of the ablations
//! called out in DESIGN.md.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What to discard when the buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DropPolicy {
    /// Discard the oldest buffered record (keep the freshest picture).
    /// The default.
    #[default]
    Oldest,
    /// Discard the incoming record (keep history intact).
    Newest,
}

/// Bounded FIFO buffer of monitoring records.
#[derive(Debug, Clone)]
pub struct RecordBuffer<T> {
    items: VecDeque<T>,
    capacity: usize,
    policy: DropPolicy,
    dropped: u64,
}

impl<T> RecordBuffer<T> {
    /// A buffer holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, policy: DropPolicy) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        RecordBuffer {
            items: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            policy,
            dropped: 0,
        }
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records dropped so far due to overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Push a record, applying the drop policy on overflow. Returns
    /// `true` if the new record was kept.
    pub fn push(&mut self, item: T) -> bool {
        if self.items.len() < self.capacity {
            self.items.push_back(item);
            return true;
        }
        self.dropped += 1;
        match self.policy {
            DropPolicy::Oldest => {
                self.items.pop_front();
                self.items.push_back(item);
                true
            }
            DropPolicy::Newest => false,
        }
    }

    /// Remove and return up to `max` records from the front (oldest
    /// first).
    pub fn drain(&mut self, max: usize) -> Vec<T> {
        let n = max.min(self.items.len());
        self.items.drain(..n).collect()
    }

    /// Peek at the buffered records without removing them.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_drain_fifo_order() {
        let mut b = RecordBuffer::new(10, DropPolicy::Oldest);
        for i in 0..5 {
            assert!(b.push(i));
        }
        assert_eq!(b.len(), 5);
        assert_eq!(b.drain(3), vec![0, 1, 2]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.drain(10), vec![3, 4]);
        assert!(b.is_empty());
    }

    #[test]
    fn oldest_policy_keeps_freshest() {
        let mut b = RecordBuffer::new(3, DropPolicy::Oldest);
        for i in 0..5 {
            b.push(i);
        }
        assert_eq!(b.dropped(), 2);
        assert_eq!(b.drain(3), vec![2, 3, 4]);
    }

    #[test]
    fn newest_policy_keeps_history() {
        let mut b = RecordBuffer::new(3, DropPolicy::Newest);
        for i in 0..5 {
            b.push(i);
        }
        assert_eq!(b.dropped(), 2);
        assert_eq!(b.drain(3), vec![0, 1, 2]);
    }

    #[test]
    fn push_return_value_reflects_keep() {
        let mut b = RecordBuffer::new(1, DropPolicy::Newest);
        assert!(b.push(1));
        assert!(!b.push(2));
        let mut b = RecordBuffer::new(1, DropPolicy::Oldest);
        assert!(b.push(1));
        assert!(b.push(2));
    }

    #[test]
    fn is_full_boundary() {
        let mut b = RecordBuffer::new(2, DropPolicy::Oldest);
        assert!(!b.is_full());
        b.push(1);
        b.push(2);
        assert!(b.is_full());
        assert_eq!(b.capacity(), 2);
    }

    #[test]
    fn iter_does_not_consume() {
        let mut b = RecordBuffer::new(4, DropPolicy::Oldest);
        b.push(7);
        b.push(8);
        let seen: Vec<i32> = b.iter().copied().collect();
        assert_eq!(seen, vec![7, 8]);
        assert_eq!(b.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = RecordBuffer::<u8>::new(0, DropPolicy::Oldest);
    }
}
