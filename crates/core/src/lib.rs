//! # loramon-core
//!
//! The client side of the LoRa mesh monitoring system — the paper's
//! primary contribution.
//!
//! Each LoRa node runs a [`MonitorClient`] attached to its mesh stack.
//! The client records metadata about every packet the radio sees
//! ([`PacketRecord`]), snapshots the node's own state ([`NodeStatus`]),
//! batches both into [`Report`]s, and periodically ships them to the
//! monitoring server — over the node's IP uplink ([`UplinkModel`]) or
//! in-band over the mesh itself.
//!
//! ## Example
//!
//! ```
//! use loramon_core::{MonitorClient, MonitorConfig};
//! use loramon_mesh::{MeshConfig, MeshNode};
//! use loramon_sim::SimBuilder;
//! use loramon_phy::{Position, RadioConfig};
//! use std::time::Duration;
//!
//! let mut sim = SimBuilder::new().seed(1).build();
//! let cfg = RadioConfig::mesher_default();
//! let make = || MeshNode::with_observer(MeshConfig::fast(), MonitorClient::new(MonitorConfig::new()));
//! let a = sim.add_node(Position::new(0.0, 0.0), cfg, Box::new(make()));
//! sim.add_node(Position::new(300.0, 0.0), cfg, Box::new(make()));
//! sim.run_for(Duration::from_secs(120));
//!
//! let node: &MeshNode<MonitorClient> = sim.app_as(a).unwrap();
//! let client = node.observer();
//! assert!(client.records_captured() > 0);
//! assert!(client.reports_generated() > 0);
//! ```

pub mod buffer;
pub mod client;
pub mod command;
pub mod record;
pub mod report;
pub mod status;
pub mod transport;
pub mod uplink;

pub use buffer::{DropPolicy, RecordBuffer};
pub use client::{MonitorClient, MonitorConfig, RecordFilter, ReportingMode};
pub use command::MonitorCommand;
pub use record::PacketRecord;
pub use report::{Report, WireError, BINARY_MAGIC, BINARY_VERSION};
pub use status::{NodeStatus, ReportedRoute};
pub use transport::{PendingReport, RetransmitQueue, TransportConfig, TransportStats};
pub use uplink::{Outage, UplinkModel};
