//! Monitoring reports and their wire formats.
//!
//! A report is the unit of transfer from client to server: a batch of
//! [`PacketRecord`]s plus an optional [`NodeStatus`] snapshot. Two wire
//! formats are provided:
//!
//! * **JSON** — what the paper's client ships over its IP uplink
//!   (human-readable, framework-friendly, large);
//! * **binary** — a compact explicit layout for the in-band (over-LoRa)
//!   reporting path, where every byte costs airtime.
//!
//! R-Tab-2 measures both against batch size.

use crate::record::PacketRecord;
use crate::status::{NodeStatus, ReportedRoute};
use loramon_mesh::{Direction, MeshStats, PacketType};
use loramon_sim::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Magic prefix of binary-encoded reports ("LoRa Mesh Report, Binary").
pub const BINARY_MAGIC: [u8; 4] = *b"LMRB";
/// Binary format version.
pub const BINARY_VERSION: u8 = 1;

/// One monitoring report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// The reporting node.
    pub node: NodeId,
    /// Client-assigned report sequence number (detects lost reports).
    pub report_seq: u32,
    /// Generation time, milliseconds since node boot.
    pub generated_at_ms: u64,
    /// Records dropped by the client buffer since the last report.
    pub dropped_records: u64,
    /// Node status snapshot, if included in this report.
    pub status: Option<NodeStatus>,
    /// The batched packet records, oldest first.
    pub records: Vec<PacketRecord>,
}

/// Error decoding a report.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// Input ended early.
    Truncated,
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Invalid enum discriminant.
    BadEnum(u8),
    /// JSON parse failure.
    Json(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "report data truncated"),
            WireError::BadMagic => write!(f, "missing report magic"),
            WireError::BadVersion(v) => write!(f, "unsupported report version {v}"),
            WireError::BadEnum(b) => write!(f, "invalid enum discriminant {b}"),
            WireError::Json(e) => write!(f, "invalid report json: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl Report {
    /// Encode as JSON (the out-of-band IP uplink format).
    pub fn encode_json(&self) -> Vec<u8> {
        // lint:allow(server-unwrap, reason = "serializing an owned in-memory Report is infallible; no input reaches this path")
        serde_json::to_vec(self).expect("report serialization cannot fail")
    }

    /// Decode from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Json`] on malformed input.
    pub fn decode_json(bytes: &[u8]) -> Result<Self, WireError> {
        serde_json::from_slice(bytes).map_err(|e| WireError::Json(e.to_string()))
    }

    /// Encode in the compact binary format (the in-band format).
    pub fn encode_binary(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&BINARY_MAGIC);
        w.u8(BINARY_VERSION);
        w.u16(self.node.raw());
        w.u32(self.report_seq);
        w.u64(self.generated_at_ms);
        w.u64(self.dropped_records);
        match &self.status {
            None => w.u8(0),
            Some(s) => {
                w.u8(1);
                encode_status(&mut w, s);
            }
        }
        // Saturate and truncate together so the count prefix always
        // matches the number of records actually written.
        let record_count = u32::try_from(self.records.len()).unwrap_or(u32::MAX);
        w.u32(record_count);
        for r in self.records.iter().take(record_count as usize) {
            encode_record(&mut w, r);
        }
        w.into_vec()
    }

    /// Decode from the compact binary format.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation, bad magic/version or
    /// invalid discriminants.
    pub fn decode_binary(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        if r.bytes(4)? != BINARY_MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = r.u8()?;
        if version != BINARY_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let node = NodeId(r.u16()?);
        let report_seq = r.u32()?;
        let generated_at_ms = r.u64()?;
        let dropped_records = r.u64()?;
        let status = match r.u8()? {
            0 => None,
            1 => Some(decode_status(&mut r)?),
            b => return Err(WireError::BadEnum(b)),
        };
        let count = r.u32()? as usize;
        let mut records = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            records.push(decode_record(&mut r)?);
        }
        Ok(Report {
            node,
            report_seq,
            generated_at_ms,
            dropped_records,
            status,
            records,
        })
    }

    /// Whether a byte buffer looks like a binary report (used by in-band
    /// gateways to pick monitoring payloads out of the data stream).
    pub fn is_binary_report(bytes: &[u8]) -> bool {
        bytes.len() >= 5 && bytes.starts_with(&BINARY_MAGIC)
    }
}

// ---------------------------------------------------------------------
// Binary primitives.

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }
    fn into_vec(self) -> Vec<u8> {
        self.buf
    }
    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let out = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        self.bytes(1)?.first().copied().ok_or(WireError::Truncated)
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        // lint:allow(server-unwrap, reason = "the preceding bytes call guaranteed the slice length; try_into cannot fail")
        Ok(u16::from_be_bytes(self.bytes(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        // lint:allow(server-unwrap, reason = "the preceding bytes call guaranteed the slice length; try_into cannot fail")
        Ok(u32::from_be_bytes(self.bytes(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        // lint:allow(server-unwrap, reason = "the preceding bytes call guaranteed the slice length; try_into cannot fail")
        Ok(u64::from_be_bytes(self.bytes(8)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> Result<f32, WireError> {
        // lint:allow(server-unwrap, reason = "the preceding bytes call guaranteed the slice length; try_into cannot fail")
        Ok(f32::from_be_bytes(self.bytes(4)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        // lint:allow(server-unwrap, reason = "the preceding bytes call guaranteed the slice length; try_into cannot fail")
        Ok(f64::from_be_bytes(self.bytes(8)?.try_into().unwrap()))
    }
}

fn direction_byte(d: Direction) -> u8 {
    match d {
        Direction::In => 0,
        Direction::Out => 1,
    }
}

fn direction_from(b: u8) -> Result<Direction, WireError> {
    match b {
        0 => Ok(Direction::In),
        1 => Ok(Direction::Out),
        _ => Err(WireError::BadEnum(b)),
    }
}

fn ptype_byte(p: PacketType) -> u8 {
    match p {
        PacketType::Routing => 1,
        PacketType::Data => 2,
        PacketType::Ack => 3,
    }
}

fn ptype_from(b: u8) -> Result<PacketType, WireError> {
    match b {
        1 => Ok(PacketType::Routing),
        2 => Ok(PacketType::Data),
        3 => Ok(PacketType::Ack),
        _ => Err(WireError::BadEnum(b)),
    }
}

fn encode_record(w: &mut Writer, r: &PacketRecord) {
    w.u64(r.seq);
    w.u64(r.timestamp_ms);
    w.u8(direction_byte(r.direction));
    w.u16(r.node.raw());
    w.u16(r.counterpart.raw());
    w.u8(ptype_byte(r.ptype));
    w.u16(r.origin.raw());
    w.u16(r.final_dst.raw());
    w.u16(r.packet_id);
    w.u8(r.ttl);
    w.u32(r.size_bytes);
    match (r.rssi_dbm, r.snr_db) {
        (Some(rssi), Some(snr)) => {
            w.u8(1);
            w.f32(rssi as f32);
            w.f32(snr as f32);
        }
        _ => w.u8(0),
    }
}

fn decode_record(r: &mut Reader<'_>) -> Result<PacketRecord, WireError> {
    let seq = r.u64()?;
    let timestamp_ms = r.u64()?;
    let direction = direction_from(r.u8()?)?;
    let node = NodeId(r.u16()?);
    let counterpart = NodeId(r.u16()?);
    let ptype = ptype_from(r.u8()?)?;
    let origin = NodeId(r.u16()?);
    let final_dst = NodeId(r.u16()?);
    let packet_id = r.u16()?;
    let ttl = r.u8()?;
    let size_bytes = r.u32()?;
    let (rssi_dbm, snr_db) = match r.u8()? {
        0 => (None, None),
        1 => (Some(f64::from(r.f32()?)), Some(f64::from(r.f32()?))),
        b => return Err(WireError::BadEnum(b)),
    };
    Ok(PacketRecord {
        seq,
        timestamp_ms,
        direction,
        node,
        counterpart,
        ptype,
        origin,
        final_dst,
        packet_id,
        ttl,
        size_bytes,
        rssi_dbm,
        snr_db,
    })
}

fn encode_status(w: &mut Writer, s: &NodeStatus) {
    w.u16(s.node.raw());
    w.u64(s.uptime_ms);
    w.u8(s.battery_percent);
    w.u32(s.queue_len);
    w.f64(s.duty_cycle_utilization);
    encode_mesh_stats(w, &s.mesh);
    // Saturate and truncate together so the count prefix always
    // matches the number of routes actually written.
    let route_count = u16::try_from(s.routes.len()).unwrap_or(u16::MAX);
    w.u16(route_count);
    for route in s.routes.iter().take(usize::from(route_count)) {
        w.u16(route.address.raw());
        w.u16(route.next_hop.raw());
        w.u8(route.metric);
        w.f32(route.rssi_dbm as f32);
        w.f32(route.snr_db as f32);
    }
}

fn decode_status(r: &mut Reader<'_>) -> Result<NodeStatus, WireError> {
    let node = NodeId(r.u16()?);
    let uptime_ms = r.u64()?;
    let battery_percent = r.u8()?;
    let queue_len = r.u32()?;
    let duty_cycle_utilization = r.f64()?;
    let mesh = decode_mesh_stats(r)?;
    let count = r.u16()? as usize;
    let mut routes = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        routes.push(ReportedRoute {
            address: NodeId(r.u16()?),
            next_hop: NodeId(r.u16()?),
            metric: r.u8()?,
            rssi_dbm: f64::from(r.f32()?),
            snr_db: f64::from(r.f32()?),
        });
    }
    Ok(NodeStatus {
        node,
        uptime_ms,
        battery_percent,
        queue_len,
        duty_cycle_utilization,
        mesh,
        routes,
    })
}

/// MeshStats fields in wire order — must match `decode_mesh_stats`.
fn mesh_stats_fields(s: &MeshStats) -> [u64; 21] {
    [
        s.messages_sent,
        s.messages_delivered,
        s.messages_acked,
        s.drops_unacked,
        s.data_sent,
        s.data_received,
        s.routing_sent,
        s.routing_received,
        s.acks_sent,
        s.acks_received,
        s.forwarded,
        s.retransmissions,
        s.drops_ttl,
        s.drops_no_route,
        s.drops_queue_full,
        s.drops_csma,
        s.decode_errors,
        s.overheard,
        s.duplicates,
        s.packets_heard,
        s.weak_link_rejections,
    ]
}

fn encode_mesh_stats(w: &mut Writer, s: &MeshStats) {
    for v in mesh_stats_fields(s) {
        w.u64(v);
    }
}

fn decode_mesh_stats(r: &mut Reader<'_>) -> Result<MeshStats, WireError> {
    // Field initializers run top-to-bottom, so the reads below consume
    // the wire exactly in `mesh_stats_fields` order.
    Ok(MeshStats {
        messages_sent: r.u64()?,
        messages_delivered: r.u64()?,
        messages_acked: r.u64()?,
        drops_unacked: r.u64()?,
        data_sent: r.u64()?,
        data_received: r.u64()?,
        routing_sent: r.u64()?,
        routing_received: r.u64()?,
        acks_sent: r.u64()?,
        acks_received: r.u64()?,
        forwarded: r.u64()?,
        retransmissions: r.u64()?,
        drops_ttl: r.u64()?,
        drops_no_route: r.u64()?,
        drops_queue_full: r.u64()?,
        drops_csma: r.u64()?,
        decode_errors: r.u64()?,
        overheard: r.u64()?,
        duplicates: r.u64()?,
        packets_heard: r.u64()?,
        weak_link_rejections: r.u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use loramon_sim::SimTime;

    fn sample_record(seq: u64, with_rssi: bool) -> PacketRecord {
        PacketRecord {
            seq,
            timestamp_ms: 10_000 + seq,
            direction: if with_rssi {
                Direction::In
            } else {
                Direction::Out
            },
            node: NodeId(1),
            counterpart: NodeId(2),
            ptype: PacketType::Data,
            origin: NodeId(2),
            final_dst: NodeId(1),
            packet_id: seq as u16,
            ttl: 8,
            size_bytes: 47,
            rssi_dbm: with_rssi.then_some(-97.5),
            snr_db: with_rssi.then_some(3.25),
        }
    }

    fn sample_status() -> NodeStatus {
        NodeStatus {
            node: NodeId(1),
            uptime_ms: 123_456,
            battery_percent: 91,
            queue_len: 3,
            duty_cycle_utilization: 0.42,
            mesh: MeshStats {
                messages_sent: 10,
                packets_heard: 99,
                ..MeshStats::default()
            },
            routes: vec![ReportedRoute {
                address: NodeId(2),
                next_hop: NodeId(2),
                metric: 1,
                rssi_dbm: -88.5,
                snr_db: 6.25,
            }],
        }
    }

    fn sample_report(n_records: usize) -> Report {
        Report {
            node: NodeId(1),
            report_seq: 7,
            generated_at_ms: 60_000,
            dropped_records: 2,
            status: Some(sample_status()),
            records: (0..n_records as u64)
                .map(|i| sample_record(i, i % 2 == 0))
                .collect(),
        }
    }

    #[test]
    fn json_roundtrip() {
        let r = sample_report(5);
        let back = Report::decode_json(&r.encode_json()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn binary_roundtrip() {
        let r = sample_report(5);
        let back = Report::decode_binary(&r.encode_binary()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn binary_roundtrip_without_status() {
        let mut r = sample_report(3);
        r.status = None;
        let back = Report::decode_binary(&r.encode_binary()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn binary_roundtrip_empty_records() {
        let mut r = sample_report(0);
        r.records.clear();
        let back = Report::decode_binary(&r.encode_binary()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let r = sample_report(50);
        let json = r.encode_json().len();
        let bin = r.encode_binary().len();
        assert!(
            bin * 3 < json,
            "binary {bin} not much smaller than json {json}"
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_report(1).encode_binary();
        bytes[0] = b'X';
        assert_eq!(Report::decode_binary(&bytes), Err(WireError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample_report(1).encode_binary();
        bytes[4] = 99;
        assert_eq!(
            Report::decode_binary(&bytes),
            Err(WireError::BadVersion(99))
        );
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = sample_report(3).encode_binary();
        // Every prefix must fail cleanly, never panic.
        for n in 0..bytes.len() {
            assert!(
                Report::decode_binary(&bytes[..n]).is_err(),
                "prefix {n} decoded"
            );
        }
    }

    #[test]
    fn invalid_json_reports_error() {
        let err = Report::decode_json(b"{not json").unwrap_err();
        assert!(matches!(err, WireError::Json(_)));
    }

    #[test]
    fn is_binary_report_detects_magic() {
        let bytes = sample_report(1).encode_binary();
        assert!(Report::is_binary_report(&bytes));
        assert!(!Report::is_binary_report(b"LMR"));
        assert!(!Report::is_binary_report(b"hello world"));
    }

    #[test]
    fn record_timestamps_survive() {
        let r = sample_report(2);
        let back = Report::decode_binary(&r.encode_binary()).unwrap();
        assert_eq!(back.records[1].captured_at(), SimTime::from_millis(10_001));
    }

    #[test]
    fn wire_error_display() {
        assert!(WireError::Truncated.to_string().contains("truncated"));
        assert!(WireError::BadVersion(3).to_string().contains('3'));
    }
}
