//! The out-of-band uplink model.
//!
//! The paper's nodes ship reports to the server over WiFi. That uplink is
//! not perfect: it loses reports, delays them, and sometimes disappears
//! entirely (an access-point outage). This model assigns each report a
//! delivery time — or loses it — deterministically from a seed.

use crate::report::Report;
use loramon_sim::{Rng, SimTime};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A closed time window during which the uplink is down.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Outage {
    /// Outage start.
    pub from: SimTime,
    /// Outage end.
    pub to: SimTime,
}

impl Outage {
    /// Whether `t` falls inside the outage.
    pub fn contains(&self, t: SimTime) -> bool {
        self.from <= t && t < self.to
    }
}

/// Stochastic uplink model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UplinkModel {
    /// Probability an individual report is lost.
    pub loss_prob: f64,
    /// Minimum delivery latency.
    pub latency_base: Duration,
    /// Uniform random extra latency in `[0, latency_jitter)`.
    pub latency_jitter: Duration,
    /// Scheduled outages; reports sent during one are lost.
    pub outages: Vec<Outage>,
    seed: u64,
}

impl UplinkModel {
    /// A healthy home/campus WiFi uplink: 0.5% loss, 80 ms + up to 120 ms.
    pub fn wifi(seed: u64) -> Self {
        UplinkModel {
            loss_prob: 0.005,
            latency_base: Duration::from_millis(80),
            latency_jitter: Duration::from_millis(120),
            outages: Vec::new(),
            seed,
        }
    }

    /// A perfect uplink: no loss, fixed 50 ms latency.
    pub fn perfect() -> Self {
        UplinkModel {
            loss_prob: 0.0,
            latency_base: Duration::from_millis(50),
            latency_jitter: Duration::ZERO,
            outages: Vec::new(),
            seed: 0,
        }
    }

    /// A flaky uplink with the given loss probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= loss_prob <= 1`.
    pub fn flaky(loss_prob: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&loss_prob), "invalid probability");
        UplinkModel {
            loss_prob,
            ..UplinkModel::wifi(seed)
        }
    }

    /// Add an outage window (builder style).
    pub fn with_outage(mut self, from: SimTime, to: SimTime) -> Self {
        assert!(from < to, "outage must have positive length");
        self.outages.push(Outage { from, to });
        self
    }

    /// Decide the delivery time of a report sent at `sent_at`, or `None`
    /// if the uplink loses it. Deterministic per `(node, report_seq)`;
    /// equivalent to [`deliver_attempt_at`](UplinkModel::deliver_attempt_at)
    /// with `attempt == 0`.
    pub fn deliver_at(&self, sent_at: SimTime, report: &Report) -> Option<SimTime> {
        self.deliver_attempt_at(sent_at, report, 0)
    }

    /// Decide the delivery time of send attempt `attempt` of a report,
    /// or `None` if the uplink loses it.
    ///
    /// The attempt counter is mixed into the RNG derivation so each
    /// retransmission rolls fresh loss/latency dice — without it, a
    /// report unlucky enough to be lost once would be deterministically
    /// re-lost on every retry, forever. Attempt 0 keeps the historical
    /// `(node, report_seq)`-only key so golden fingerprints of
    /// fire-and-forget runs stay explainable.
    pub fn deliver_attempt_at(
        &self,
        sent_at: SimTime,
        report: &Report,
        attempt: u32,
    ) -> Option<SimTime> {
        if self.outages.iter().any(|o| o.contains(sent_at)) {
            return None;
        }
        let node = u64::from(report.node.raw());
        let seq = u64::from(report.report_seq);
        let mut rng = if attempt == 0 {
            Rng::derive(self.seed, &[0x0B41, node, seq])
        } else {
            Rng::derive(self.seed, &[0x0B41, node, seq, u64::from(attempt)])
        };
        if rng.chance(self.loss_prob) {
            return None;
        }
        let jitter_us = self.latency_jitter.as_micros() as u64;
        let extra = if jitter_us > 0 {
            rng.next_below(jitter_us)
        } else {
            0
        };
        Some(sent_at + self.latency_base + Duration::from_micros(extra))
    }

    /// Run a batch of `(sent_at, report)` pairs through the uplink and
    /// return the surviving ones sorted by delivery time.
    pub fn deliver_all(
        &self,
        reports: impl IntoIterator<Item = (SimTime, Report)>,
    ) -> Vec<(SimTime, Report)> {
        let mut out: Vec<(SimTime, Report)> = reports
            .into_iter()
            .filter_map(|(sent_at, r)| self.deliver_at(sent_at, &r).map(|at| (at, r)))
            .collect();
        out.sort_by_key(|(at, r)| (*at, r.node, r.report_seq));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loramon_sim::NodeId;

    fn report(node: u16, seq: u32) -> Report {
        Report {
            node: NodeId(node),
            report_seq: seq,
            generated_at_ms: 0,
            dropped_records: 0,
            status: None,
            records: vec![],
        }
    }

    #[test]
    fn perfect_uplink_delivers_everything_in_order() {
        let u = UplinkModel::perfect();
        let batch: Vec<(SimTime, Report)> = (0..10)
            .map(|i| (SimTime::from_secs(i), report(1, i as u32)))
            .collect();
        let delivered = u.deliver_all(batch);
        assert_eq!(delivered.len(), 10);
        for w in delivered.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert_eq!(delivered[0].0, SimTime::ZERO + Duration::from_millis(50));
    }

    #[test]
    fn loss_rate_is_roughly_honored() {
        let u = UplinkModel::flaky(0.3, 7);
        let batch: Vec<(SimTime, Report)> = (0..2000)
            .map(|i| (SimTime::from_secs(i), report(1, i as u32)))
            .collect();
        let delivered = u.deliver_all(batch).len();
        let rate = 1.0 - delivered as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.05, "observed loss {rate}");
    }

    #[test]
    fn delivery_is_deterministic() {
        let u = UplinkModel::wifi(42);
        let a = u.deliver_at(SimTime::from_secs(5), &report(3, 9));
        let b = u.deliver_at(SimTime::from_secs(5), &report(3, 9));
        assert_eq!(a, b);
    }

    #[test]
    fn attempt_zero_matches_legacy_key() {
        let u = UplinkModel::flaky(0.4, 11);
        for seq in 0..200 {
            let r = report(1, seq);
            assert_eq!(
                u.deliver_at(SimTime::from_secs(5), &r),
                u.deliver_attempt_at(SimTime::from_secs(5), &r, 0),
            );
        }
    }

    #[test]
    fn retransmissions_roll_fresh_dice() {
        // With the seq-only derivation a report lost at attempt 0 was
        // re-lost forever. With the attempt counter mixed in, some
        // retry must eventually get through for every report.
        let u = UplinkModel::flaky(0.5, 13);
        let mut rescued = 0;
        for seq in 0..100 {
            let r = report(1, seq);
            if u.deliver_at(SimTime::from_secs(1), &r).is_some() {
                continue; // not lost in the first place
            }
            if (1..=8).any(|a| u.deliver_attempt_at(SimTime::from_secs(1), &r, a).is_some()) {
                rescued += 1;
            }
        }
        assert!(rescued > 0, "no lost report was ever rescued by a retry");
    }

    #[test]
    fn outage_swallows_reports() {
        let u =
            UplinkModel::perfect().with_outage(SimTime::from_secs(100), SimTime::from_secs(200));
        assert!(u
            .deliver_at(SimTime::from_secs(150), &report(1, 1))
            .is_none());
        assert!(u
            .deliver_at(SimTime::from_secs(99), &report(1, 1))
            .is_some());
        assert!(u
            .deliver_at(SimTime::from_secs(200), &report(1, 1))
            .is_some());
    }

    #[test]
    fn latency_within_bounds() {
        let u = UplinkModel::wifi(1);
        for seq in 0..500 {
            if let Some(at) = u.deliver_at(SimTime::ZERO, &report(1, seq)) {
                let lat = at.saturating_since(SimTime::ZERO);
                assert!(lat >= Duration::from_millis(80));
                assert!(lat < Duration::from_millis(200));
            }
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_loss_prob_panics() {
        let _ = UplinkModel::flaky(1.5, 0);
    }

    #[test]
    fn deliver_all_sorts_across_nodes() {
        let u = UplinkModel::wifi(3);
        let batch = vec![
            (SimTime::from_secs(10), report(2, 0)),
            (SimTime::from_secs(1), report(1, 0)),
            (SimTime::from_secs(5), report(3, 0)),
        ];
        let delivered = u.deliver_all(batch);
        for w in delivered.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }
}
