//! The per-packet record — the unit of monitoring data (R-Tab-1).
//!
//! The paper's client reports "detailed information about the nodes'
//! in- and outgoing LoRa packets"; this struct is that information. One
//! record is produced for every packet the node's radio demodulates or
//! transmits, including packets merely overheard.

use loramon_mesh::{Direction, PacketEvent, PacketType};
use loramon_sim::{NodeId, SimTime};
use serde::{Deserialize, Serialize};

/// One monitored packet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketRecord {
    /// Client-assigned sequence number (detects server-side gaps).
    pub seq: u64,
    /// Capture timestamp, milliseconds since node boot.
    pub timestamp_ms: u64,
    /// In or out of this node's radio.
    pub direction: Direction,
    /// The reporting node.
    pub node: NodeId,
    /// Link-layer peer (sender for In, link destination for Out).
    pub counterpart: NodeId,
    /// Mesh packet type.
    pub ptype: PacketType,
    /// End-to-end origin of the packet.
    pub origin: NodeId,
    /// End-to-end destination of the packet.
    pub final_dst: NodeId,
    /// Origin-assigned packet id.
    pub packet_id: u16,
    /// TTL observed on the wire.
    pub ttl: u8,
    /// Encoded size in bytes.
    pub size_bytes: u32,
    /// RSSI in dBm (receptions only).
    pub rssi_dbm: Option<f64>,
    /// SNR in dB (receptions only).
    pub snr_db: Option<f64>,
}

impl PacketRecord {
    /// Build a record from a mesh observation.
    pub fn from_event(seq: u64, event: &PacketEvent) -> Self {
        PacketRecord {
            seq,
            timestamp_ms: event.at.as_millis(),
            direction: event.direction,
            node: event.local,
            counterpart: event.counterpart,
            ptype: event.ptype,
            origin: event.origin,
            final_dst: event.final_dst,
            packet_id: event.packet_id,
            ttl: event.ttl,
            size_bytes: u32::try_from(event.size_bytes).unwrap_or(u32::MAX),
            rssi_dbm: event.rssi_dbm,
            snr_db: event.snr_db,
        }
    }

    /// The capture time as a [`SimTime`].
    pub fn captured_at(&self) -> SimTime {
        SimTime::from_millis(self.timestamp_ms)
    }

    /// Whether this record describes a reception.
    pub fn is_incoming(&self) -> bool {
        self.direction == Direction::In
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event() -> PacketEvent {
        PacketEvent {
            at: SimTime::from_millis(1234),
            direction: Direction::In,
            local: NodeId(1),
            counterpart: NodeId(2),
            ptype: PacketType::Data,
            origin: NodeId(2),
            final_dst: NodeId(1),
            packet_id: 77,
            ttl: 9,
            size_bytes: 47,
            rssi_dbm: Some(-101.5),
            snr_db: Some(2.25),
        }
    }

    #[test]
    fn from_event_copies_all_fields() {
        let r = PacketRecord::from_event(5, &event());
        assert_eq!(r.seq, 5);
        assert_eq!(r.timestamp_ms, 1234);
        assert_eq!(r.node, NodeId(1));
        assert_eq!(r.counterpart, NodeId(2));
        assert_eq!(r.ptype, PacketType::Data);
        assert_eq!(r.packet_id, 77);
        assert_eq!(r.ttl, 9);
        assert_eq!(r.size_bytes, 47);
        assert_eq!(r.rssi_dbm, Some(-101.5));
        assert_eq!(r.snr_db, Some(2.25));
        assert!(r.is_incoming());
        assert_eq!(r.captured_at(), SimTime::from_millis(1234));
    }

    #[test]
    fn outgoing_records_have_no_link_metrics() {
        let mut e = event();
        e.direction = Direction::Out;
        e.rssi_dbm = None;
        e.snr_db = None;
        let r = PacketRecord::from_event(0, &e);
        assert!(!r.is_incoming());
        assert_eq!(r.rssi_dbm, None);
    }

    #[test]
    fn json_roundtrip() {
        let r = PacketRecord::from_event(9, &event());
        let json = serde_json::to_string(&r).unwrap();
        let back: PacketRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
