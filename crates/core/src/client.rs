//! The monitoring client — the paper's client-side contribution.
//!
//! A [`MonitorClient`] attaches to a mesh node as its
//! [`MeshObserver`]: it converts every observed packet into a
//! [`PacketRecord`], buffers them, and periodically emits a [`Report`].
//! Reports leave the node either **out-of-band** (over the node's IP
//! uplink, as in the paper) or **in-band** (as mesh data messages to a
//! gateway node — the ablation for uplink-less deployments).

use crate::buffer::{DropPolicy, RecordBuffer};
use crate::record::PacketRecord;
use crate::report::Report;
use crate::status::NodeStatus;
use crate::transport::{RetransmitQueue, TransportConfig, TransportStats};
use bytes::Bytes;
use loramon_mesh::{Direction, MeshObserver, MeshSnapshot, PacketEvent, PacketType};
use loramon_sim::{NodeId, SimTime};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// How reports leave the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReportingMode {
    /// Over the node's own IP uplink (WiFi in the paper's testbed).
    OutOfBand,
    /// As mesh data messages addressed to a gateway node, which relays
    /// them to the server over its uplink.
    InBand {
        /// The gateway's mesh address.
        gateway: NodeId,
    },
}

/// Which packets the client records — the record-volume ablation: a
/// constrained deployment can monitor only data traffic, or only
/// receptions, trading visibility for uplink bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordFilter {
    /// Record incoming packets.
    pub incoming: bool,
    /// Record outgoing packets.
    pub outgoing: bool,
    /// Record routing broadcasts.
    pub routing: bool,
    /// Record data packets.
    pub data: bool,
    /// Record ACK packets.
    pub acks: bool,
}

impl RecordFilter {
    /// Record everything (the default).
    pub fn all() -> Self {
        RecordFilter {
            incoming: true,
            outgoing: true,
            routing: true,
            data: true,
            acks: true,
        }
    }

    /// Record only data traffic (no routing beacons, no ACKs).
    pub fn data_only() -> Self {
        RecordFilter {
            routing: false,
            acks: false,
            ..RecordFilter::all()
        }
    }

    /// Whether an event passes the filter.
    pub fn accepts(&self, event: &PacketEvent) -> bool {
        let dir_ok = match event.direction {
            Direction::In => self.incoming,
            Direction::Out => self.outgoing,
        };
        let type_ok = match event.ptype {
            PacketType::Routing => self.routing,
            PacketType::Data => self.data,
            PacketType::Ack => self.acks,
        };
        dir_ok && type_ok
    }
}

impl Default for RecordFilter {
    fn default() -> Self {
        RecordFilter::all()
    }
}

/// Monitoring client configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// How often a report is generated (default 30 s).
    pub report_period: Duration,
    /// Maximum packet records per report (default 50).
    pub max_records_per_report: usize,
    /// Client-side record buffer capacity (default 256).
    pub buffer_capacity: usize,
    /// What to drop when the buffer overflows.
    pub drop_policy: DropPolicy,
    /// Whether reports include the node-status snapshot (default true).
    pub include_status: bool,
    /// Out-of-band (default) or in-band reporting.
    pub mode: ReportingMode,
    /// Which packets are recorded at all.
    pub filter: RecordFilter,
    /// Acknowledged uplink transport configuration; `None` (the
    /// default) keeps historical fire-and-forget reporting.
    pub transport: Option<TransportConfig>,
}

impl MonitorConfig {
    /// The defaults described in the field docs.
    pub fn new() -> Self {
        MonitorConfig {
            report_period: Duration::from_secs(30),
            max_records_per_report: 50,
            buffer_capacity: 256,
            drop_policy: DropPolicy::Oldest,
            include_status: true,
            mode: ReportingMode::OutOfBand,
            filter: RecordFilter::all(),
            transport: None,
        }
    }

    /// Set the report period (builder style).
    pub fn with_report_period(mut self, period: Duration) -> Self {
        self.report_period = period;
        self
    }

    /// Use in-band reporting to the given gateway (builder style).
    pub fn with_in_band(mut self, gateway: NodeId) -> Self {
        self.mode = ReportingMode::InBand { gateway };
        self
    }

    /// Set the per-report record cap (builder style).
    pub fn with_max_records(mut self, max: usize) -> Self {
        self.max_records_per_report = max;
        self
    }

    /// Set the buffer capacity (builder style).
    pub fn with_buffer_capacity(mut self, capacity: usize) -> Self {
        self.buffer_capacity = capacity;
        self
    }

    /// Include or exclude status snapshots (builder style).
    pub fn with_status(mut self, include: bool) -> Self {
        self.include_status = include;
        self
    }

    /// Set the record filter (builder style).
    pub fn with_filter(mut self, filter: RecordFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Enable the acknowledged uplink transport (builder style).
    pub fn with_transport(mut self, transport: TransportConfig) -> Self {
        self.transport = Some(transport);
        self
    }
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig::new()
    }
}

/// The client-side monitor. Implements [`MeshObserver`] so it can be
/// attached to a [`MeshNode`](loramon_mesh::MeshNode) via
/// [`MeshNode::with_observer`](loramon_mesh::MeshNode::with_observer).
#[derive(Debug)]
pub struct MonitorClient {
    config: MonitorConfig,
    buffer: RecordBuffer<PacketRecord>,
    next_record_seq: u64,
    /// Next report sequence number; resets to 0 on reboot (the server's
    /// ingest layer detects the restart and opens a new epoch).
    next_report_seq: u32,
    last_report_at: Option<SimTime>,
    /// Out-of-band reports awaiting the uplink (drained by the harness)
    /// when no acknowledged transport is configured.
    outbox: Vec<Report>,
    /// Reports received in-band from other nodes (gateway role), with
    /// their mesh arrival time.
    collected: Vec<(SimTime, Report)>,
    /// The acknowledged uplink transport, when configured.
    transport: Option<RetransmitQueue>,
    records_captured: u64,
    records_filtered: u64,
    dropped_at_last_report: u64,
    /// Buffer drops accumulated in previous boots (the live buffer's
    /// counter resets when the node reboots).
    dropped_before_reboot: u64,
    /// Lifetime reports generated, across reboots.
    reports_generated: u32,
    /// Reboots observed (crash/recover cycles).
    reboots: u32,
}

impl MonitorClient {
    /// A client with the given configuration.
    pub fn new(config: MonitorConfig) -> Self {
        MonitorClient {
            buffer: RecordBuffer::new(config.buffer_capacity, config.drop_policy),
            transport: config.transport.map(RetransmitQueue::new),
            config,
            next_record_seq: 0,
            next_report_seq: 0,
            last_report_at: None,
            outbox: Vec::new(),
            collected: Vec::new(),
            records_captured: 0,
            records_filtered: 0,
            dropped_at_last_report: 0,
            dropped_before_reboot: 0,
            reports_generated: 0,
            reboots: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Mutable configuration access for
    /// [`apply_command`](MonitorClient::apply_command).
    pub(crate) fn config_mut(&mut self) -> &mut MonitorConfig {
        &mut self.config
    }

    /// Total packets recorded since boot (kept or dropped).
    pub fn records_captured(&self) -> u64 {
        self.records_captured
    }

    /// Packets skipped by the record filter since boot.
    pub fn records_filtered(&self) -> u64 {
        self.records_filtered
    }

    /// Records currently buffered and not yet reported.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Records lost to buffer overflow over the client's lifetime
    /// (including previous boots).
    pub fn records_dropped(&self) -> u64 {
        self.dropped_before_reboot + self.buffer.dropped()
    }

    /// Reports generated over the client's lifetime (across reboots).
    pub fn reports_generated(&self) -> u32 {
        self.reports_generated
    }

    /// Reboots (crash/recover cycles) this client has been through.
    pub fn reboots(&self) -> u32 {
        self.reboots
    }

    /// Drain the out-of-band outbox.
    pub fn take_outbox(&mut self) -> Vec<Report> {
        std::mem::take(&mut self.outbox)
    }

    /// Peek at the out-of-band outbox.
    pub fn outbox(&self) -> &[Report] {
        &self.outbox
    }

    /// Drain reports collected from other nodes (gateway role), with
    /// their mesh arrival times.
    pub fn take_collected(&mut self) -> Vec<(SimTime, Report)> {
        std::mem::take(&mut self.collected)
    }

    /// Peek at collected reports.
    pub fn collected(&self) -> &[(SimTime, Report)] {
        &self.collected
    }

    /// Hand a report to the node's uplink: the acknowledged transport
    /// when configured, the fire-and-forget outbox otherwise. Gateways
    /// also route reports collected in-band through this path.
    pub fn enqueue_uplink(&mut self, report: Report, now: SimTime) {
        match &mut self.transport {
            Some(t) => t.enqueue(report, now),
            None => self.outbox.push(report),
        }
    }

    /// Uplink sends due at `now`, as `(attempt, report)` pairs. With the
    /// acknowledged transport this applies the retry/backoff schedule;
    /// without it the outbox drains as one-shot attempt-0 sends.
    pub fn uplink_due(&mut self, now: SimTime) -> Vec<(u32, Report)> {
        match &mut self.transport {
            Some(t) => t.due(now),
            None => self.take_outbox().into_iter().map(|r| (0, r)).collect(),
        }
    }

    /// Force-send everything still pending, ignoring the backoff
    /// schedule — the end-of-run drain.
    pub fn uplink_flush(&mut self, now: SimTime) -> Vec<(u32, Report)> {
        match &mut self.transport {
            Some(t) => t.flush(now),
            None => self.take_outbox().into_iter().map(|r| (0, r)).collect(),
        }
    }

    /// The server confirmed `(node, report_seq)`; stop retrying it.
    pub fn ack_uplink(&mut self, node: NodeId, report_seq: u32) -> bool {
        self.transport
            .as_mut()
            .is_some_and(|t| t.ack(node, report_seq))
    }

    /// Reports pending (unacked) in the transport queue.
    pub fn pending_uplink(&self) -> usize {
        self.transport.as_ref().map_or(0, RetransmitQueue::len)
    }

    /// Transport counters, when the acknowledged transport is enabled.
    pub fn transport_stats(&self) -> Option<TransportStats> {
        self.transport.as_ref().map(RetransmitQueue::stats)
    }

    /// Re-point in-band reporting at a new gateway (gateway failover).
    /// A no-op for out-of-band clients.
    pub fn redirect_gateway(&mut self, gateway: NodeId) {
        if let ReportingMode::InBand { .. } = self.config.mode {
            self.config.mode = ReportingMode::InBand { gateway };
        }
    }

    /// The node rebooted: all volatile monitor state — record buffer,
    /// pending transport queue, sequence counters — is lost, exactly
    /// as a crash would lose it on real hardware. Two kinds of state
    /// survive: lifetime counters (captured/filtered/dropped/reports),
    /// which belong to the harness's view of the client rather than
    /// the client's RAM, and the `outbox`/`collected` mailboxes, which
    /// hold reports already handed off for transmission — the harness
    /// treats those as on the wire, not on the device.
    pub fn reboot(&mut self) {
        self.dropped_before_reboot += self.buffer.dropped();
        self.buffer = RecordBuffer::new(self.config.buffer_capacity, self.config.drop_policy);
        self.next_record_seq = 0;
        self.next_report_seq = 0;
        self.last_report_at = None;
        self.dropped_at_last_report = 0;
        if let Some(t) = &mut self.transport {
            t.reset_for_reboot();
        }
        self.reboots += 1;
    }

    fn report_due(&self, now: SimTime) -> bool {
        match self.last_report_at {
            Some(last) => now.saturating_since(last) >= self.config.report_period,
            None => now.saturating_since(SimTime::ZERO) >= self.config.report_period,
        }
    }

    fn build_report(&mut self, snapshot: &MeshSnapshot) -> Report {
        let records = self.buffer.drain(self.config.max_records_per_report);
        let dropped_total = self.buffer.dropped();
        let mut dropped_records = dropped_total - self.dropped_at_last_report;
        self.dropped_at_last_report = dropped_total;
        // Fold in records lost to transport eviction/expiry so the
        // server's loss accounting stays complete under long outages.
        if let Some(t) = &mut self.transport {
            dropped_records += t.take_lost_records();
        }
        let seq = self.next_report_seq;
        self.next_report_seq += 1;
        self.reports_generated += 1;
        self.last_report_at = Some(snapshot.now);
        Report {
            node: snapshot.node,
            report_seq: seq,
            generated_at_ms: snapshot.now.as_millis(),
            dropped_records,
            status: self
                .config
                .include_status
                .then(|| NodeStatus::from_snapshot(snapshot)),
            records,
        }
    }
}

impl MeshObserver for MonitorClient {
    fn on_packet(&mut self, event: &PacketEvent) {
        if !self.config.filter.accepts(event) {
            self.records_filtered += 1;
            return;
        }
        let record = PacketRecord::from_event(self.next_record_seq, event);
        self.next_record_seq += 1;
        self.records_captured += 1;
        self.buffer.push(record);
    }

    fn poll(&mut self, snapshot: &MeshSnapshot) -> Vec<(NodeId, Bytes)> {
        if !self.report_due(snapshot.now) {
            return Vec::new();
        }
        let report = self.build_report(snapshot);
        match self.config.mode {
            ReportingMode::OutOfBand => {
                self.enqueue_uplink(report, snapshot.now);
                Vec::new()
            }
            ReportingMode::InBand { gateway } => {
                if gateway == snapshot.node {
                    // The gateway's own reports go straight up its uplink.
                    self.enqueue_uplink(report, snapshot.now);
                    Vec::new()
                } else {
                    vec![(gateway, Bytes::from(report.encode_binary()))]
                }
            }
        }
    }

    fn on_message(&mut self, _from: NodeId, payload: &Bytes, at: SimTime) {
        if Report::is_binary_report(payload) {
            if let Ok(report) = Report::decode_binary(payload) {
                self.collected.push((at, report));
            }
        }
    }

    fn on_reboot(&mut self) {
        self.reboot();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loramon_mesh::{Direction, MeshStats, PacketType};

    fn event(at_ms: u64) -> PacketEvent {
        PacketEvent {
            at: SimTime::from_millis(at_ms),
            direction: Direction::In,
            local: NodeId(1),
            counterpart: NodeId(2),
            ptype: PacketType::Routing,
            origin: NodeId(2),
            final_dst: NodeId::BROADCAST,
            packet_id: 1,
            ttl: 1,
            size_bytes: 25,
            rssi_dbm: Some(-90.0),
            snr_db: Some(5.0),
        }
    }

    fn snapshot(node: u16, at: SimTime) -> MeshSnapshot {
        MeshSnapshot {
            node: NodeId(node),
            now: at,
            routes: vec![],
            queue_len: 0,
            stats: MeshStats::default(),
            battery_percent: 100,
            duty_cycle_utilization: 0.0,
        }
    }

    #[test]
    fn records_accumulate_until_report_period() {
        let mut c = MonitorClient::new(MonitorConfig::new());
        c.on_packet(&event(100));
        c.on_packet(&event(200));
        assert_eq!(c.buffered(), 2);
        // Poll before the period: nothing emitted.
        let out = c.poll(&snapshot(1, SimTime::from_secs(10)));
        assert!(out.is_empty());
        assert!(c.outbox().is_empty());
        // Poll after: one report with both records.
        let out = c.poll(&snapshot(1, SimTime::from_secs(30)));
        assert!(out.is_empty()); // out-of-band → outbox, not mesh
        assert_eq!(c.outbox().len(), 1);
        assert_eq!(c.outbox()[0].records.len(), 2);
        assert_eq!(c.buffered(), 0);
    }

    #[test]
    fn report_sequence_increments() {
        let mut c =
            MonitorClient::new(MonitorConfig::new().with_report_period(Duration::from_secs(10)));
        for s in [10u64, 20, 30] {
            c.poll(&snapshot(1, SimTime::from_secs(s)));
        }
        let reports = c.take_outbox();
        assert_eq!(reports.len(), 3);
        assert_eq!(
            reports.iter().map(|r| r.report_seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(c.reports_generated(), 3);
    }

    #[test]
    fn max_records_cap_is_respected() {
        let mut c = MonitorClient::new(MonitorConfig::new().with_max_records(5));
        for i in 0..12 {
            c.on_packet(&event(i));
        }
        c.poll(&snapshot(1, SimTime::from_secs(30)));
        let r = &c.outbox()[0];
        assert_eq!(r.records.len(), 5);
        // Leftovers stay buffered for the next report.
        assert_eq!(c.buffered(), 7);
    }

    #[test]
    fn dropped_records_are_reported_per_interval() {
        let mut c = MonitorClient::new(
            MonitorConfig::new()
                .with_buffer_capacity(3)
                .with_max_records(10),
        );
        for i in 0..8 {
            c.on_packet(&event(i));
        }
        c.poll(&snapshot(1, SimTime::from_secs(30)));
        assert_eq!(c.outbox()[0].dropped_records, 5);
        // Next interval with no drops reports zero.
        c.poll(&snapshot(1, SimTime::from_secs(60)));
        assert_eq!(c.outbox()[1].dropped_records, 0);
        assert_eq!(c.records_dropped(), 5);
        assert_eq!(c.records_captured(), 8);
    }

    #[test]
    fn in_band_mode_sends_to_gateway() {
        let gw = NodeId(9);
        let mut c = MonitorClient::new(MonitorConfig::new().with_in_band(gw));
        c.on_packet(&event(1));
        let out = c.poll(&snapshot(1, SimTime::from_secs(30)));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, gw);
        assert!(Report::is_binary_report(&out[0].1));
        assert!(c.outbox().is_empty());
    }

    #[test]
    fn gateway_in_band_uses_own_uplink() {
        let gw = NodeId(9);
        let mut c = MonitorClient::new(MonitorConfig::new().with_in_band(gw));
        let out = c.poll(&snapshot(9, SimTime::from_secs(30)));
        assert!(out.is_empty());
        assert_eq!(c.outbox().len(), 1);
    }

    #[test]
    fn gateway_collects_in_band_reports() {
        let mut gw_client = MonitorClient::new(MonitorConfig::new());
        let mut sensor = MonitorClient::new(MonitorConfig::new().with_in_band(NodeId(9)));
        sensor.on_packet(&event(5));
        let out = sensor.poll(&snapshot(1, SimTime::from_secs(30)));
        gw_client.on_message(NodeId(1), &out[0].1, SimTime::from_secs(31));
        let collected = gw_client.take_collected();
        assert_eq!(collected.len(), 1);
        assert_eq!(collected[0].0, SimTime::from_secs(31));
        assert_eq!(collected[0].1.node, NodeId(1));
        assert_eq!(collected[0].1.records.len(), 1);
    }

    #[test]
    fn non_report_messages_ignored() {
        let mut c = MonitorClient::new(MonitorConfig::new());
        c.on_message(
            NodeId(2),
            &Bytes::from_static(b"ordinary app data"),
            SimTime::ZERO,
        );
        assert!(c.collected().is_empty());
    }

    #[test]
    fn status_inclusion_follows_config() {
        let mut with = MonitorClient::new(MonitorConfig::new());
        with.poll(&snapshot(1, SimTime::from_secs(30)));
        assert!(with.outbox()[0].status.is_some());

        let mut without = MonitorClient::new(MonitorConfig::new().with_status(false));
        without.poll(&snapshot(1, SimTime::from_secs(30)));
        assert!(without.outbox()[0].status.is_none());
    }

    #[test]
    fn filter_skips_unwanted_packets() {
        let mut c = MonitorClient::new(MonitorConfig::new().with_filter(RecordFilter::data_only()));
        // A routing packet: filtered out.
        c.on_packet(&event(100)); // event() is Routing/In
        assert_eq!(c.buffered(), 0);
        assert_eq!(c.records_filtered(), 1);
        assert_eq!(c.records_captured(), 0);
        // A data packet passes.
        let mut data = event(200);
        data.ptype = PacketType::Data;
        c.on_packet(&data);
        assert_eq!(c.buffered(), 1);
    }

    #[test]
    fn filter_direction_axis() {
        let f = RecordFilter {
            incoming: true,
            outgoing: false,
            ..RecordFilter::all()
        };
        let mut ev = event(1);
        assert!(f.accepts(&ev));
        ev.direction = Direction::Out;
        assert!(!f.accepts(&ev));
    }

    #[test]
    fn transport_holds_reports_until_acked() {
        let cfg = MonitorConfig::new()
            .with_report_period(Duration::from_secs(10))
            .with_transport(crate::transport::TransportConfig::new());
        let mut c = MonitorClient::new(cfg);
        c.poll(&snapshot(1, SimTime::from_secs(10)));
        assert!(c.outbox().is_empty(), "transport bypasses the outbox");
        assert_eq!(c.pending_uplink(), 1);
        let due = c.uplink_due(SimTime::from_secs(10));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].0, 0);
        // Still pending until the ack lands.
        assert_eq!(c.pending_uplink(), 1);
        assert!(c.ack_uplink(NodeId(1), 0));
        assert_eq!(c.pending_uplink(), 0);
        assert_eq!(c.transport_stats().unwrap().acked, 1);
    }

    #[test]
    fn evicted_reports_fold_into_next_dropped_records() {
        let cfg = MonitorConfig::new()
            .with_report_period(Duration::from_secs(10))
            .with_max_records(10)
            .with_transport(crate::transport::TransportConfig::new().with_capacity(1));
        let mut c = MonitorClient::new(cfg);
        // Two reports with one record each: the second enqueue evicts
        // the first report and its record.
        c.on_packet(&event(1_000));
        c.poll(&snapshot(1, SimTime::from_secs(10)));
        c.on_packet(&event(11_000));
        c.poll(&snapshot(1, SimTime::from_secs(20)));
        // The third report accounts the evicted record.
        c.poll(&snapshot(1, SimTime::from_secs(30)));
        let pending: Vec<_> = c.uplink_due(SimTime::from_secs(30));
        let last = pending
            .iter()
            .map(|(_, r)| r)
            .find(|r| r.report_seq == 2)
            .unwrap();
        assert_eq!(last.dropped_records, 1, "evicted record not accounted");
    }

    #[test]
    fn reboot_resets_protocol_state_but_keeps_lifetime_counters() {
        let cfg = MonitorConfig::new()
            .with_report_period(Duration::from_secs(10))
            .with_buffer_capacity(2)
            .with_transport(crate::transport::TransportConfig::new());
        let mut c = MonitorClient::new(cfg);
        for i in 0..5 {
            c.on_packet(&event(i));
        }
        c.poll(&snapshot(1, SimTime::from_secs(10)));
        assert_eq!(c.reports_generated(), 1);
        assert_eq!(c.records_dropped(), 3);
        c.reboot();
        assert_eq!(c.pending_uplink(), 0, "pending queue wiped");
        assert_eq!(c.reboots(), 1);
        // Lifetime counters survive the reboot…
        assert_eq!(c.records_captured(), 5);
        assert_eq!(c.records_dropped(), 3);
        assert_eq!(c.reports_generated(), 1);
        // …but the sequence space restarts at zero.
        c.poll(&snapshot(1, SimTime::from_secs(40)));
        let due = c.uplink_due(SimTime::from_secs(40));
        assert_eq!(due[0].1.report_seq, 0, "post-reboot seq must restart");
        assert_eq!(c.reports_generated(), 2);
    }

    #[test]
    fn redirect_gateway_only_affects_in_band_mode() {
        let mut oob = MonitorClient::new(MonitorConfig::new());
        oob.redirect_gateway(NodeId(5));
        assert_eq!(oob.config().mode, ReportingMode::OutOfBand);

        let mut ib = MonitorClient::new(MonitorConfig::new().with_in_band(NodeId(9)));
        ib.redirect_gateway(NodeId(5));
        assert_eq!(
            ib.config().mode,
            ReportingMode::InBand { gateway: NodeId(5) }
        );
        // Reports now address the new gateway.
        ib.on_packet(&event(1));
        let out = ib.poll(&snapshot(1, SimTime::from_secs(30)));
        assert_eq!(out[0].0, NodeId(5));
    }

    #[test]
    fn record_seqs_are_gapless_across_reports() {
        let mut c = MonitorClient::new(
            MonitorConfig::new()
                .with_report_period(Duration::from_secs(10))
                .with_max_records(2),
        );
        for i in 0..6 {
            c.on_packet(&event(i));
        }
        c.poll(&snapshot(1, SimTime::from_secs(10)));
        c.poll(&snapshot(1, SimTime::from_secs(20)));
        c.poll(&snapshot(1, SimTime::from_secs(30)));
        let all: Vec<u64> = c
            .take_outbox()
            .iter()
            .flat_map(|r| r.records.iter().map(|x| x.seq))
            .collect();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }
}
