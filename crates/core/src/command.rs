//! Remote client configuration.
//!
//! Administrators tune monitoring from the server side: the server
//! queues a [`MonitorCommand`] per node, and the node picks it up with
//! the acknowledgment of its next report (clients initiate all
//! connections, so commands piggyback on the uplink exchange — no
//! listening socket on the node).

use crate::client::{MonitorClient, RecordFilter};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A configuration delta for one monitoring client. `None` fields keep
/// the current value.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MonitorCommand {
    /// New report period in seconds.
    pub report_period_s: Option<u32>,
    /// New per-report record cap.
    pub max_records_per_report: Option<u32>,
    /// New record filter.
    pub filter: Option<RecordFilter>,
    /// Include status snapshots or not.
    pub include_status: Option<bool>,
}

impl MonitorCommand {
    /// A command that changes only the report period.
    pub fn set_report_period(period: Duration) -> Self {
        MonitorCommand {
            report_period_s: Some(u32::try_from(period.as_secs()).unwrap_or(u32::MAX)),
            ..MonitorCommand::default()
        }
    }

    /// A command that changes only the record filter.
    pub fn set_filter(filter: RecordFilter) -> Self {
        MonitorCommand {
            filter: Some(filter),
            ..MonitorCommand::default()
        }
    }

    /// Whether the command changes nothing.
    pub fn is_empty(&self) -> bool {
        *self == MonitorCommand::default()
    }

    /// Merge another command over this one (later wins per field).
    pub fn merged_with(mut self, later: MonitorCommand) -> Self {
        if later.report_period_s.is_some() {
            self.report_period_s = later.report_period_s;
        }
        if later.max_records_per_report.is_some() {
            self.max_records_per_report = later.max_records_per_report;
        }
        if later.filter.is_some() {
            self.filter = later.filter;
        }
        if later.include_status.is_some() {
            self.include_status = later.include_status;
        }
        self
    }
}

impl MonitorClient {
    /// Apply a configuration command received from the server.
    ///
    /// Invalid values (zero period or record cap) are ignored field-wise
    /// rather than rejecting the whole command — the device must never
    /// brick its own telemetry.
    pub fn apply_command(&mut self, command: &MonitorCommand) {
        if let Some(period_s) = command.report_period_s {
            if period_s > 0 {
                self.config_mut().report_period = Duration::from_secs(u64::from(period_s));
            }
        }
        if let Some(max) = command.max_records_per_report {
            if max > 0 {
                self.config_mut().max_records_per_report = max as usize;
            }
        }
        if let Some(filter) = command.filter {
            self.config_mut().filter = filter;
        }
        if let Some(include) = command.include_status {
            self.config_mut().include_status = include;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::MonitorConfig;

    #[test]
    fn apply_changes_only_requested_fields() {
        let mut client = MonitorClient::new(MonitorConfig::new());
        let before = *client.config();
        client.apply_command(&MonitorCommand::set_report_period(Duration::from_secs(10)));
        assert_eq!(client.config().report_period, Duration::from_secs(10));
        assert_eq!(
            client.config().max_records_per_report,
            before.max_records_per_report
        );
        assert_eq!(client.config().filter, before.filter);
    }

    #[test]
    fn invalid_values_are_ignored_fieldwise() {
        let mut client = MonitorClient::new(MonitorConfig::new());
        client.apply_command(&MonitorCommand {
            report_period_s: Some(0),
            max_records_per_report: Some(0),
            include_status: Some(false),
            ..MonitorCommand::default()
        });
        // The invalid fields kept their defaults; the valid one applied.
        assert_eq!(client.config().report_period, Duration::from_secs(30));
        assert_eq!(client.config().max_records_per_report, 50);
        assert!(!client.config().include_status);
    }

    #[test]
    fn merge_later_wins() {
        let a = MonitorCommand::set_report_period(Duration::from_secs(10));
        let b = MonitorCommand {
            report_period_s: Some(60),
            include_status: Some(false),
            ..MonitorCommand::default()
        };
        let merged = a.merged_with(b);
        assert_eq!(merged.report_period_s, Some(60));
        assert_eq!(merged.include_status, Some(false));
        // Field untouched by either stays None.
        assert_eq!(merged.filter, None);
    }

    #[test]
    fn empty_detection() {
        assert!(MonitorCommand::default().is_empty());
        assert!(!MonitorCommand::set_filter(RecordFilter::data_only()).is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let cmd = MonitorCommand {
            report_period_s: Some(45),
            filter: Some(RecordFilter::data_only()),
            ..MonitorCommand::default()
        };
        let json = serde_json::to_string(&cmd).unwrap();
        let back: MonitorCommand = serde_json::from_str(&json).unwrap();
        assert_eq!(cmd, back);
    }
}
