//! The end-to-end scenario harness.
//!
//! [`run_scenario`] wires the full reproduction pipeline together: a
//! simulated LoRa mesh ([`loramon_sim`] + [`loramon_mesh`]) whose nodes
//! run monitoring clients ([`loramon_core`]), report delivery over the
//! modelled uplink, server-side ingestion/alerting ([`loramon_server`]),
//! and ground-truth extraction from the simulator trace so the
//! monitoring system can be judged against reality. Every example and
//! bench builds on this harness.

use loramon_core::{
    MonitorClient, MonitorConfig, Report, ReportingMode, TransportConfig, TransportStats,
    UplinkModel,
};
use loramon_mesh::{MeshConfig, MeshNode, MeshStats, TrafficPattern};
use loramon_phy::{LogDistance, Position, RadioConfig};
use loramon_server::{Alert, MonitorServer, ServerConfig};
use loramon_sim::{FaultPlan, LossReason, NodeId, SimBuilder, SimTime, Simulator, TraceLevel};
use std::collections::BTreeMap;
use std::time::Duration;

/// The node application type every scenario runs.
pub type MonitoredNode = MeshNode<MonitorClient>;

/// A scheduled node failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Failure {
    /// Index into the scenario's position list.
    pub node_index: usize,
    /// When the node dies.
    pub at: SimTime,
    /// When it comes back, if ever.
    pub recover_at: Option<SimTime>,
}

/// A scheduled straight-line walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Walk {
    /// Index into the scenario's position list.
    pub node_index: usize,
    /// Departure time.
    pub depart: SimTime,
    /// Destination.
    pub to: Position,
    /// Speed in m/s.
    pub speed_mps: f64,
    /// Position-update granularity.
    pub step: Duration,
}

/// Everything needed to run one monitored-mesh scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Master seed for the simulator and all derived randomness.
    pub seed: u64,
    /// Node positions; index 0 is node `0001`, and so on.
    pub positions: Vec<Position>,
    /// Which position index acts as the gateway (traffic sink and
    /// in-band report collector).
    pub gateway_index: usize,
    /// Radio configuration shared by all nodes.
    pub radio: RadioConfig,
    /// Mesh protocol configuration.
    pub mesh: MeshConfig,
    /// Monitoring client configuration. When its mode is in-band, the
    /// gateway address is rewritten to the scenario's gateway.
    pub monitor: MonitorConfig,
    /// Application traffic originated by every non-gateway node
    /// (`None` = monitoring-only network).
    pub traffic: Option<TrafficPattern>,
    /// The out-of-band uplink model.
    pub uplink: UplinkModel,
    /// Server configuration.
    pub server: ServerConfig,
    /// Propagation model.
    pub path_loss: LogDistance,
    /// Regional duty-cycle fraction.
    pub duty_cycle: f64,
    /// Scheduled failures.
    pub failures: Vec<Failure>,
    /// Scheduled walks (mobility).
    pub walks: Vec<Walk>,
    /// A declarative crash/reboot + gateway-failover plan, layered on
    /// top of `failures`. The failover part only takes effect when the
    /// acked transport is enabled (it needs the stepping delivery
    /// loop).
    pub fault_plan: Option<FaultPlan>,
    /// Simulated duration.
    pub duration: Duration,
    /// How often server alert rules are evaluated.
    pub alert_period: Duration,
    /// Granularity of the transport pump loop: how often pending
    /// uplink sends and acks are exchanged when the acked transport is
    /// enabled. Ignored in fire-and-forget mode.
    pub uplink_step: Duration,
    /// Simulator trace verbosity.
    pub trace_level: TraceLevel,
}

impl ScenarioConfig {
    /// A ready-to-run scenario: `n` nodes on a line with the given
    /// spacing, node 0 sending telemetry to the last node (the gateway),
    /// out-of-band monitoring, 10 simulated minutes.
    pub fn line(n: usize, spacing_m: f64, seed: u64) -> Self {
        let positions = loramon_sim::placement::line(n, spacing_m);
        let gateway_index = n - 1;
        ScenarioConfig::new(positions, gateway_index, seed)
    }

    /// A scenario from explicit positions.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty or `gateway_index` out of range.
    pub fn new(positions: Vec<Position>, gateway_index: usize, seed: u64) -> Self {
        assert!(!positions.is_empty(), "need at least one node");
        assert!(
            gateway_index < positions.len(),
            "gateway index out of range"
        );
        // lint:allow(as-truncation, reason = "node ids are u16 by construction; the simulator cannot address more nodes than that")
        let gateway = NodeId(gateway_index as u16 + 1);
        ScenarioConfig {
            seed,
            positions,
            gateway_index,
            radio: RadioConfig::mesher_default(),
            mesh: MeshConfig::fast(),
            monitor: MonitorConfig::new(),
            traffic: Some(TrafficPattern::to_gateway(
                gateway,
                Duration::from_secs(60),
                16,
            )),
            uplink: UplinkModel::wifi(seed ^ 0xAB),
            server: ServerConfig::default(),
            path_loss: LogDistance::suburban(),
            duty_cycle: 0.01,
            failures: Vec::new(),
            walks: Vec::new(),
            fault_plan: None,
            duration: Duration::from_secs(600),
            alert_period: Duration::from_secs(10),
            uplink_step: Duration::from_secs(5),
            trace_level: TraceLevel::Normal,
        }
    }

    /// The gateway's mesh address.
    pub fn gateway(&self) -> NodeId {
        // lint:allow(as-truncation, reason = "node ids are u16 by construction; the simulator cannot address more nodes than that")
        NodeId(self.gateway_index as u16 + 1)
    }

    /// Switch monitoring to in-band reporting through the gateway
    /// (builder style).
    pub fn with_in_band_monitoring(mut self) -> Self {
        self.monitor.mode = ReportingMode::InBand {
            gateway: self.gateway(),
        };
        self
    }

    /// Set the simulated duration (builder style).
    pub fn with_duration(mut self, duration: Duration) -> Self {
        self.duration = duration;
        self
    }

    /// Set the traffic pattern (builder style; `None` disables traffic).
    pub fn with_traffic(mut self, traffic: Option<TrafficPattern>) -> Self {
        self.traffic = traffic;
        self
    }

    /// Add a failure (builder style).
    pub fn with_failure(mut self, failure: Failure) -> Self {
        self.failures.push(failure);
        self
    }

    /// Add a walk (builder style).
    pub fn with_walk(mut self, walk: Walk) -> Self {
        self.walks.push(walk);
        self
    }

    /// Set the uplink model (builder style).
    pub fn with_uplink(mut self, uplink: UplinkModel) -> Self {
        self.uplink = uplink;
        self
    }

    /// Set the monitor configuration, preserving scenario-level in-band
    /// gateway resolution (builder style).
    pub fn with_monitor(mut self, monitor: MonitorConfig) -> Self {
        self.monitor = monitor;
        self
    }

    /// Enable the acknowledged uplink transport on every client
    /// (builder style). Switches report delivery from the one-shot
    /// fire-and-forget drain to the stepping pump loop with retries,
    /// backoff and server acks.
    pub fn with_transport(mut self, transport: TransportConfig) -> Self {
        self.monitor.transport = Some(transport);
        self
    }

    /// Set the fault plan (builder style).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Set the transport pump granularity (builder style).
    pub fn with_uplink_step(mut self, step: Duration) -> Self {
        assert!(!step.is_zero(), "uplink step must be positive");
        self.uplink_step = step;
        self
    }
}

/// Ground truth extracted from the simulator, for judging the monitor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroundTruth {
    /// Frames actually put on the air.
    pub transmissions: u64,
    /// Frame deliveries (per receiver).
    pub deliveries: u64,
    /// Losses to collisions.
    pub collision_losses: u64,
    /// Losses to half-duplex conflicts.
    pub half_duplex_losses: u64,
    /// Total transmit airtime across nodes, in microseconds.
    pub airtime_us: u64,
    /// Per-node mesh counters at the end of the run.
    pub mesh_stats: BTreeMap<NodeId, MeshStats>,
}

/// Per-node monitoring client statistics after a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientStat {
    /// The node.
    pub node: NodeId,
    /// Packets the client recorded.
    pub captured: u64,
    /// Records lost to the client buffer.
    pub dropped: u64,
    /// Reports generated.
    pub reports: u32,
}

/// The outcome of a scenario run.
#[derive(Debug)]
pub struct ScenarioResult {
    /// The populated monitoring server.
    pub server: MonitorServer,
    /// All node addresses, in position order.
    pub node_ids: Vec<NodeId>,
    /// The gateway address.
    pub gateway: NodeId,
    /// Node positions by address (for dashboard layout).
    pub positions: BTreeMap<NodeId, Position>,
    /// Simulator ground truth.
    pub ground_truth: GroundTruth,
    /// Per-node client statistics.
    pub client_stats: Vec<ClientStat>,
    /// Distinct reports that reached the server (retransmission
    /// duplicates count once).
    pub reports_delivered: usize,
    /// Reports lost on the uplink (or in-band path pre-gateway).
    pub reports_lost: usize,
    /// Aggregate acked-transport counters across all clients; `None`
    /// when the run used fire-and-forget delivery.
    pub transport: Option<TransportStats>,
    /// Alerts fired during the run, in firing order.
    pub alerts: Vec<Alert>,
    /// The simulator (for trace inspection).
    pub sim: Simulator,
}

impl ScenarioResult {
    /// Telemetry completeness: Out records stored at the server vs
    /// ground-truth transmissions.
    pub fn completeness(&self) -> f64 {
        self.server.completeness(self.ground_truth.transmissions)
    }

    /// Fraction of generated reports that reached the server.
    pub fn delivery_ratio(&self) -> f64 {
        let expected = self.reports_delivered + self.reports_lost;
        if expected == 0 {
            return 1.0;
        }
        self.reports_delivered as f64 / expected as f64
    }
}

/// Run a scenario to completion.
///
/// # Panics
///
/// Panics on inconsistent configuration (see [`ScenarioConfig::new`]).
pub fn run_scenario(config: &ScenarioConfig) -> ScenarioResult {
    let mut sim = SimBuilder::new()
        .seed(config.seed)
        .path_loss(config.path_loss)
        .duty_cycle(config.duty_cycle)
        .trace_level(config.trace_level)
        .build();

    let gateway = config.gateway();
    let mut node_ids = Vec::with_capacity(config.positions.len());
    for (i, &pos) in config.positions.iter().enumerate() {
        let mut monitor_cfg = config.monitor;
        if let ReportingMode::InBand { .. } = monitor_cfg.mode {
            monitor_cfg.mode = ReportingMode::InBand { gateway };
        }
        let mut node = MeshNode::with_observer(config.mesh, MonitorClient::new(monitor_cfg));
        if i != config.gateway_index {
            if let Some(traffic) = config.traffic {
                node = node.with_traffic(traffic);
            }
        }
        let id = sim.add_node(pos, config.radio, Box::new(node));
        node_ids.push(id);
    }
    // lint:allow(slice-index, reason = "gateway_index was validated against the position count when the config was built, and node_ids has one entry per position")
    assert_eq!(node_ids[config.gateway_index], gateway);

    for f in &config.failures {
        // lint:allow(slice-index, reason = "a failure plan naming a node outside the declared topology is a scenario-authoring bug; panicking at startup is the intended surface")
        sim.schedule_failure(node_ids[f.node_index], f.at);
        if let Some(recover_at) = f.recover_at {
            // lint:allow(slice-index, reason = "same bound as the schedule_failure call above")
            sim.schedule_recovery(node_ids[f.node_index], recover_at);
        }
    }
    if let Some(plan) = &config.fault_plan {
        plan.schedule(&mut sim, &node_ids);
    }
    for w in &config.walks {
        // lint:allow(slice-index, reason = "a walk naming a node outside the declared topology is a scenario-authoring bug; panicking at startup is the intended surface")
        sim.schedule_walk(node_ids[w.node_index], w.depart, w.to, w.speed_mps, w.step);
    }

    let outcome = if config.monitor.transport.is_some() {
        pump_reports(config, &mut sim, &node_ids)
    } else {
        drain_reports(config, &mut sim, &node_ids)
    };
    let DeliveryOutcome {
        server,
        alerts,
        client_stats,
        reports_delivered,
        reports_lost,
        transport,
    } = outcome;

    // Ground truth.
    let trace = sim.trace();
    let mut ground_truth = GroundTruth {
        transmissions: trace.transmissions(None) as u64,
        deliveries: trace.deliveries(None) as u64,
        collision_losses: trace.losses(Some(LossReason::Collision)) as u64,
        half_duplex_losses: trace.losses(Some(LossReason::HalfDuplex)) as u64,
        airtime_us: 0,
        mesh_stats: BTreeMap::new(),
    };
    for &id in &node_ids {
        ground_truth.airtime_us += sim.stats(id).airtime_us;
        // lint:allow(server-unwrap, reason = "every id in node_ids was added with a MonitoredNode app a few lines up; a type mismatch is unreachable")
        let node = sim.app_as::<MonitoredNode>(id).expect("typed above");
        ground_truth.mesh_stats.insert(id, node.stats());
    }

    let positions = node_ids
        .iter()
        .zip(&config.positions)
        .map(|(&id, &p)| (id, p))
        .collect();

    ScenarioResult {
        server,
        node_ids,
        gateway,
        positions,
        ground_truth,
        client_stats,
        reports_delivered,
        reports_lost,
        transport,
        alerts,
        sim,
    }
}

/// What a delivery path hands back to [`run_scenario`].
struct DeliveryOutcome {
    server: MonitorServer,
    alerts: Vec<Alert>,
    client_stats: Vec<ClientStat>,
    reports_delivered: usize,
    reports_lost: usize,
    transport: Option<TransportStats>,
}

/// The historical fire-and-forget path: run the whole simulation, then
/// drain every client once and push the surviving reports through the
/// uplink model in one batch. Each report gets exactly one delivery
/// attempt; nothing is acknowledged or retried.
fn drain_reports(
    config: &ScenarioConfig,
    sim: &mut Simulator,
    node_ids: &[NodeId],
) -> DeliveryOutcome {
    sim.run_for(config.duration);

    // Drain clients: out-of-band outboxes stamped with generation time,
    // gateway-collected in-band reports stamped with mesh arrival time.
    let mut pending: Vec<(SimTime, Report)> = Vec::new();
    let mut client_stats = Vec::new();
    let mut expected_reports = 0usize;
    for &id in node_ids {
        let node = sim
            .app_as_mut::<MonitoredNode>(id)
            // lint:allow(server-unwrap, reason = "every scenario node is constructed as MeshNode<MonitorClient>; a type mismatch is unreachable")
            .expect("scenario nodes are MeshNode<MonitorClient>");
        let client = node.observer_mut();
        client_stats.push(ClientStat {
            node: id,
            captured: client.records_captured(),
            dropped: client.records_dropped(),
            reports: client.reports_generated(),
        });
        expected_reports += client.reports_generated() as usize;
        for report in client.take_outbox() {
            let sent_at = SimTime::from_millis(report.generated_at_ms);
            pending.push((sent_at, report));
        }
        for (at, report) in client.take_collected() {
            pending.push((at, report));
        }
    }

    let delivered = config.uplink.deliver_all(pending);
    let reports_delivered = delivered.len();
    // In in-band mode reports can also die inside the mesh, so losses
    // are measured against what clients generated, not what reached an
    // uplink.
    let reports_lost = expected_reports.saturating_sub(reports_delivered);

    // Feed the server chronologically, interleaving alert evaluation.
    let server = MonitorServer::new(config.server);
    let mut alerts = Vec::new();
    let end = SimTime::ZERO + config.duration + Duration::from_secs(5);
    let mut eval_at = SimTime::ZERO + config.alert_period;
    let mut queue = delivered.into_iter().peekable();
    while eval_at <= end {
        while let Some((at, _)) = queue.peek() {
            if *at <= eval_at {
                // lint:allow(server-unwrap, reason = "peek just returned Some, so next cannot return None")
                let (at, report) = queue.next().expect("peeked");
                server.ingest(&report, at);
            } else {
                break;
            }
        }
        alerts.extend(server.evaluate_alerts(eval_at));
        eval_at += config.alert_period;
    }
    for (at, report) in queue {
        server.ingest(&report, at);
    }

    DeliveryOutcome {
        server,
        alerts,
        client_stats,
        reports_delivered,
        reports_lost,
        transport: None,
    }
}

/// Reports waiting out their uplink latency, keyed by delivery time
/// (with a tie-breaking counter) and carrying the sending node.
type Inflight = BTreeMap<(SimTime, u64), (NodeId, Report)>;

/// Bound on post-run retransmission rounds, so a permanently dead
/// uplink cannot spin the flush loop forever.
const MAX_FLUSH_ROUNDS: usize = 64;

/// The acknowledged-transport path: step the simulation in
/// `uplink_step` increments, and at each step exchange pending sends
/// and acknowledgements between clients and server. Reports ride the
/// uplink model per *attempt*, unacked reports back off and retry, and
/// the server sees retransmissions as duplicates. After the simulated
/// duration, live clients get a bounded number of extra flush rounds
/// to finish retransmitting.
fn pump_reports(
    config: &ScenarioConfig,
    sim: &mut Simulator,
    node_ids: &[NodeId],
) -> DeliveryOutcome {
    let server = MonitorServer::new(config.server);
    let mut alerts = Vec::new();
    let step = config.uplink_step;
    let end = SimTime::ZERO + config.duration;
    let mut eval_at = SimTime::ZERO + config.alert_period;
    let mut inflight: Inflight = BTreeMap::new();
    let mut counter = 0u64;
    let mut failover_pending = config.fault_plan.as_ref().and_then(|p| p.failover);
    let mut now = SimTime::ZERO;

    while now < end {
        now = (now + step).min(end);
        sim.run_until(now);

        // Gateway failover: repoint every in-band client at the new
        // collector once the failover time passes.
        if let Some(fo) = failover_pending {
            if fo.at <= now {
                failover_pending = None;
                if let Some(&new_gw) = node_ids.get(fo.to_index) {
                    for &id in node_ids {
                        if let Some(node) = sim.app_as_mut::<MonitoredNode>(id) {
                            node.observer_mut().redirect_gateway(new_gw);
                        }
                    }
                }
            }
        }

        pump_step(
            config,
            sim,
            node_ids,
            now,
            false,
            &mut counter,
            &mut inflight,
        );
        deliver_due(sim, &server, now, &mut inflight);

        while eval_at <= now {
            alerts.extend(server.evaluate_alerts(eval_at));
            eval_at += config.alert_period;
        }
    }

    // Post-run flush: give live clients a bounded chance to finish.
    for _ in 0..MAX_FLUSH_ROUNDS {
        let outstanding: usize = node_ids
            .iter()
            .filter(|&&id| !sim.is_failed(id))
            .filter_map(|&id| sim.app_as::<MonitoredNode>(id))
            .map(|n| n.observer().pending_uplink())
            .sum();
        if outstanding == 0 && inflight.is_empty() {
            break;
        }
        now = now + step;
        pump_step(
            config,
            sim,
            node_ids,
            now,
            true,
            &mut counter,
            &mut inflight,
        );
        deliver_due(sim, &server, now, &mut inflight);
    }
    // Whatever is still in the air lands; anything still queued on a
    // client after the bounded flush counts as lost.
    for ((at, _), (_owner, report)) in std::mem::take(&mut inflight) {
        server.ingest(&report, at);
    }
    alerts.extend(server.evaluate_alerts(now + Duration::from_secs(5)));

    let mut client_stats = Vec::new();
    let mut expected_reports = 0usize;
    let mut transport = TransportStats::default();
    for &id in node_ids {
        let Some(node) = sim.app_as::<MonitoredNode>(id) else {
            continue;
        };
        let client = node.observer();
        client_stats.push(ClientStat {
            node: id,
            captured: client.records_captured(),
            dropped: client.records_dropped(),
            reports: client.reports_generated(),
        });
        expected_reports += client.reports_generated() as usize;
        if let Some(stats) = client.transport_stats() {
            transport = transport.merged_with(stats);
        }
    }
    let reports_delivered = server.ingest_stats().accepted as usize;
    DeliveryOutcome {
        server,
        alerts,
        client_stats,
        reports_delivered,
        reports_lost: expected_reports.saturating_sub(reports_delivered),
        transport: Some(transport),
    }
}

/// One exchange round: every live client hands its gateway-collected
/// reports to its own transport queue, then puts its due (or, when
/// `force`, *all* pending) reports on the uplink.
fn pump_step(
    config: &ScenarioConfig,
    sim: &mut Simulator,
    node_ids: &[NodeId],
    now: SimTime,
    force: bool,
    counter: &mut u64,
    inflight: &mut Inflight,
) {
    for &id in node_ids {
        if sim.is_failed(id) {
            continue;
        }
        let Some(node) = sim.app_as_mut::<MonitoredNode>(id) else {
            continue;
        };
        let client = node.observer_mut();
        for (_arrived_at, report) in client.take_collected() {
            client.enqueue_uplink(report, now);
        }
        let sends = if force {
            client.uplink_flush(now)
        } else {
            client.uplink_due(now)
        };
        for (attempt, report) in sends {
            if let Some(at) = config.uplink.deliver_attempt_at(now, &report, attempt) {
                *counter += 1;
                inflight.insert((at, *counter), (id, report));
            }
        }
    }
}

/// Land every in-flight report whose delivery time has passed, and
/// acknowledge it back to its sender — any server response (accepted,
/// duplicate, or invalid) confirms receipt, so the client stops
/// retrying. Crashed senders get no ack; their volatile queue is gone
/// anyway.
fn deliver_due(sim: &mut Simulator, server: &MonitorServer, now: SimTime, inflight: &mut Inflight) {
    while inflight
        .first_key_value()
        .is_some_and(|(&(at, _), _)| at <= now)
    {
        let Some(((at, _), (owner, report))) = inflight.pop_first() else {
            break;
        };
        server.ingest(&report, at);
        if !sim.is_failed(owner) {
            if let Some(node) = sim.app_as_mut::<MonitoredNode>(owner) {
                node.observer_mut()
                    .ack_uplink(report.node, report.report_seq);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_line_scenario_populates_server() {
        let config = ScenarioConfig::line(3, 300.0, 42);
        let result = run_scenario(&config);
        assert_eq!(result.node_ids.len(), 3);
        assert_eq!(result.gateway, NodeId(3));
        // All three nodes reported.
        assert_eq!(result.server.node_ids().len(), 3);
        assert!(result.server.total_records() > 0);
        assert!(result.reports_delivered > 0);
        // Ground truth saw real traffic.
        assert!(result.ground_truth.transmissions > 0);
        assert!(result.ground_truth.deliveries > 0);
    }

    #[test]
    fn completeness_near_one_on_perfect_uplink() {
        let config = ScenarioConfig::line(3, 300.0, 7).with_uplink(UplinkModel::perfect());
        let result = run_scenario(&config);
        // Everything captured except what is still buffered client-side
        // at the end of the run.
        assert!(
            result.completeness() > 0.7,
            "completeness {}",
            result.completeness()
        );
    }

    #[test]
    fn scenario_is_deterministic() {
        let run = |seed| {
            let r = run_scenario(&ScenarioConfig::line(4, 400.0, seed));
            (
                r.server.total_records(),
                r.reports_delivered,
                r.ground_truth.transmissions,
            )
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn in_band_mode_gets_reports_to_server() {
        let config = ScenarioConfig::line(3, 300.0, 11)
            .with_in_band_monitoring()
            .with_duration(Duration::from_secs(900));
        let result = run_scenario(&config);
        // Non-gateway nodes' reports traverse the mesh; at least some
        // must arrive.
        let reporting_nodes = result.server.node_ids().len();
        assert!(
            reporting_nodes >= 2,
            "only {reporting_nodes} nodes' reports reached the server"
        );
    }

    #[test]
    fn failure_produces_silent_node_alert() {
        let config = ScenarioConfig::line(3, 300.0, 13)
            .with_failure(Failure {
                node_index: 0,
                at: SimTime::from_secs(200),
                recover_at: None,
            })
            .with_duration(Duration::from_secs(600));
        let result = run_scenario(&config);
        assert!(
            result
                .alerts
                .iter()
                .any(|a| a.node == NodeId(1) && a.kind == loramon_server::AlertKind::NodeSilent),
            "no silent-node alert: {:?}",
            result.alerts
        );
    }
}
