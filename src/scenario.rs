//! The end-to-end scenario harness.
//!
//! [`run_scenario`] wires the full reproduction pipeline together: a
//! simulated LoRa mesh ([`loramon_sim`] + [`loramon_mesh`]) whose nodes
//! run monitoring clients ([`loramon_core`]), report delivery over the
//! modelled uplink, server-side ingestion/alerting ([`loramon_server`]),
//! and ground-truth extraction from the simulator trace so the
//! monitoring system can be judged against reality. Every example and
//! bench builds on this harness.

use loramon_core::{MonitorClient, MonitorConfig, ReportingMode, UplinkModel};
use loramon_mesh::{MeshConfig, MeshNode, MeshStats, TrafficPattern};
use loramon_phy::{LogDistance, Position, RadioConfig};
use loramon_server::{Alert, MonitorServer, ServerConfig};
use loramon_sim::{LossReason, NodeId, SimBuilder, SimTime, Simulator, TraceLevel};
use std::collections::BTreeMap;
use std::time::Duration;

/// The node application type every scenario runs.
pub type MonitoredNode = MeshNode<MonitorClient>;

/// A scheduled node failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Failure {
    /// Index into the scenario's position list.
    pub node_index: usize,
    /// When the node dies.
    pub at: SimTime,
    /// When it comes back, if ever.
    pub recover_at: Option<SimTime>,
}

/// A scheduled straight-line walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Walk {
    /// Index into the scenario's position list.
    pub node_index: usize,
    /// Departure time.
    pub depart: SimTime,
    /// Destination.
    pub to: Position,
    /// Speed in m/s.
    pub speed_mps: f64,
    /// Position-update granularity.
    pub step: Duration,
}

/// Everything needed to run one monitored-mesh scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Master seed for the simulator and all derived randomness.
    pub seed: u64,
    /// Node positions; index 0 is node `0001`, and so on.
    pub positions: Vec<Position>,
    /// Which position index acts as the gateway (traffic sink and
    /// in-band report collector).
    pub gateway_index: usize,
    /// Radio configuration shared by all nodes.
    pub radio: RadioConfig,
    /// Mesh protocol configuration.
    pub mesh: MeshConfig,
    /// Monitoring client configuration. When its mode is in-band, the
    /// gateway address is rewritten to the scenario's gateway.
    pub monitor: MonitorConfig,
    /// Application traffic originated by every non-gateway node
    /// (`None` = monitoring-only network).
    pub traffic: Option<TrafficPattern>,
    /// The out-of-band uplink model.
    pub uplink: UplinkModel,
    /// Server configuration.
    pub server: ServerConfig,
    /// Propagation model.
    pub path_loss: LogDistance,
    /// Regional duty-cycle fraction.
    pub duty_cycle: f64,
    /// Scheduled failures.
    pub failures: Vec<Failure>,
    /// Scheduled walks (mobility).
    pub walks: Vec<Walk>,
    /// Simulated duration.
    pub duration: Duration,
    /// How often server alert rules are evaluated.
    pub alert_period: Duration,
    /// Simulator trace verbosity.
    pub trace_level: TraceLevel,
}

impl ScenarioConfig {
    /// A ready-to-run scenario: `n` nodes on a line with the given
    /// spacing, node 0 sending telemetry to the last node (the gateway),
    /// out-of-band monitoring, 10 simulated minutes.
    pub fn line(n: usize, spacing_m: f64, seed: u64) -> Self {
        let positions = loramon_sim::placement::line(n, spacing_m);
        let gateway_index = n - 1;
        ScenarioConfig::new(positions, gateway_index, seed)
    }

    /// A scenario from explicit positions.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty or `gateway_index` out of range.
    pub fn new(positions: Vec<Position>, gateway_index: usize, seed: u64) -> Self {
        assert!(!positions.is_empty(), "need at least one node");
        assert!(
            gateway_index < positions.len(),
            "gateway index out of range"
        );
        let gateway = NodeId(gateway_index as u16 + 1);
        ScenarioConfig {
            seed,
            positions,
            gateway_index,
            radio: RadioConfig::mesher_default(),
            mesh: MeshConfig::fast(),
            monitor: MonitorConfig::new(),
            traffic: Some(TrafficPattern::to_gateway(
                gateway,
                Duration::from_secs(60),
                16,
            )),
            uplink: UplinkModel::wifi(seed ^ 0xAB),
            server: ServerConfig::default(),
            path_loss: LogDistance::suburban(),
            duty_cycle: 0.01,
            failures: Vec::new(),
            walks: Vec::new(),
            duration: Duration::from_secs(600),
            alert_period: Duration::from_secs(10),
            trace_level: TraceLevel::Normal,
        }
    }

    /// The gateway's mesh address.
    pub fn gateway(&self) -> NodeId {
        NodeId(self.gateway_index as u16 + 1)
    }

    /// Switch monitoring to in-band reporting through the gateway
    /// (builder style).
    pub fn with_in_band_monitoring(mut self) -> Self {
        self.monitor.mode = ReportingMode::InBand {
            gateway: self.gateway(),
        };
        self
    }

    /// Set the simulated duration (builder style).
    pub fn with_duration(mut self, duration: Duration) -> Self {
        self.duration = duration;
        self
    }

    /// Set the traffic pattern (builder style; `None` disables traffic).
    pub fn with_traffic(mut self, traffic: Option<TrafficPattern>) -> Self {
        self.traffic = traffic;
        self
    }

    /// Add a failure (builder style).
    pub fn with_failure(mut self, failure: Failure) -> Self {
        self.failures.push(failure);
        self
    }

    /// Add a walk (builder style).
    pub fn with_walk(mut self, walk: Walk) -> Self {
        self.walks.push(walk);
        self
    }

    /// Set the uplink model (builder style).
    pub fn with_uplink(mut self, uplink: UplinkModel) -> Self {
        self.uplink = uplink;
        self
    }

    /// Set the monitor configuration, preserving scenario-level in-band
    /// gateway resolution (builder style).
    pub fn with_monitor(mut self, monitor: MonitorConfig) -> Self {
        self.monitor = monitor;
        self
    }
}

/// Ground truth extracted from the simulator, for judging the monitor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroundTruth {
    /// Frames actually put on the air.
    pub transmissions: u64,
    /// Frame deliveries (per receiver).
    pub deliveries: u64,
    /// Losses to collisions.
    pub collision_losses: u64,
    /// Losses to half-duplex conflicts.
    pub half_duplex_losses: u64,
    /// Total transmit airtime across nodes, in microseconds.
    pub airtime_us: u64,
    /// Per-node mesh counters at the end of the run.
    pub mesh_stats: BTreeMap<NodeId, MeshStats>,
}

/// Per-node monitoring client statistics after a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientStat {
    /// The node.
    pub node: NodeId,
    /// Packets the client recorded.
    pub captured: u64,
    /// Records lost to the client buffer.
    pub dropped: u64,
    /// Reports generated.
    pub reports: u32,
}

/// The outcome of a scenario run.
#[derive(Debug)]
pub struct ScenarioResult {
    /// The populated monitoring server.
    pub server: MonitorServer,
    /// All node addresses, in position order.
    pub node_ids: Vec<NodeId>,
    /// The gateway address.
    pub gateway: NodeId,
    /// Node positions by address (for dashboard layout).
    pub positions: BTreeMap<NodeId, Position>,
    /// Simulator ground truth.
    pub ground_truth: GroundTruth,
    /// Per-node client statistics.
    pub client_stats: Vec<ClientStat>,
    /// Reports that reached the server.
    pub reports_delivered: usize,
    /// Reports lost on the uplink (or in-band path pre-gateway).
    pub reports_lost: usize,
    /// Alerts fired during the run, in firing order.
    pub alerts: Vec<Alert>,
    /// The simulator (for trace inspection).
    pub sim: Simulator,
}

impl ScenarioResult {
    /// Telemetry completeness: Out records stored at the server vs
    /// ground-truth transmissions.
    pub fn completeness(&self) -> f64 {
        self.server.completeness(self.ground_truth.transmissions)
    }
}

/// Run a scenario to completion.
///
/// # Panics
///
/// Panics on inconsistent configuration (see [`ScenarioConfig::new`]).
pub fn run_scenario(config: &ScenarioConfig) -> ScenarioResult {
    let mut sim = SimBuilder::new()
        .seed(config.seed)
        .path_loss(config.path_loss)
        .duty_cycle(config.duty_cycle)
        .trace_level(config.trace_level)
        .build();

    let gateway = config.gateway();
    let mut node_ids = Vec::with_capacity(config.positions.len());
    for (i, &pos) in config.positions.iter().enumerate() {
        let mut monitor_cfg = config.monitor;
        if let ReportingMode::InBand { .. } = monitor_cfg.mode {
            monitor_cfg.mode = ReportingMode::InBand { gateway };
        }
        let mut node = MeshNode::with_observer(config.mesh, MonitorClient::new(monitor_cfg));
        if i != config.gateway_index {
            if let Some(traffic) = config.traffic {
                node = node.with_traffic(traffic);
            }
        }
        let id = sim.add_node(pos, config.radio, Box::new(node));
        node_ids.push(id);
    }
    assert_eq!(node_ids[config.gateway_index], gateway);

    for f in &config.failures {
        sim.schedule_failure(node_ids[f.node_index], f.at);
        if let Some(recover_at) = f.recover_at {
            sim.schedule_recovery(node_ids[f.node_index], recover_at);
        }
    }
    for w in &config.walks {
        sim.schedule_walk(node_ids[w.node_index], w.depart, w.to, w.speed_mps, w.step);
    }

    sim.run_for(config.duration);

    // Drain clients: out-of-band outboxes stamped with generation time,
    // gateway-collected in-band reports stamped with mesh arrival time.
    let mut pending: Vec<(SimTime, loramon_core::Report)> = Vec::new();
    let mut client_stats = Vec::new();
    let mut expected_reports = 0usize;
    for &id in &node_ids {
        let node = sim
            .app_as_mut::<MonitoredNode>(id)
            .expect("scenario nodes are MeshNode<MonitorClient>");
        let client = node.observer_mut();
        client_stats.push(ClientStat {
            node: id,
            captured: client.records_captured(),
            dropped: client.records_dropped(),
            reports: client.reports_generated(),
        });
        expected_reports += client.reports_generated() as usize;
        for report in client.take_outbox() {
            let sent_at = SimTime::from_millis(report.generated_at_ms);
            pending.push((sent_at, report));
        }
        for (at, report) in client.take_collected() {
            pending.push((at, report));
        }
    }

    let delivered = config.uplink.deliver_all(pending);
    let reports_delivered = delivered.len();
    // In in-band mode reports can also die inside the mesh, so losses
    // are measured against what clients generated, not what reached an
    // uplink.
    let reports_lost = expected_reports.saturating_sub(reports_delivered);

    // Feed the server chronologically, interleaving alert evaluation.
    let server = MonitorServer::new(config.server);
    let mut alerts = Vec::new();
    let end = SimTime::ZERO + config.duration + Duration::from_secs(5);
    let mut eval_at = SimTime::ZERO + config.alert_period;
    let mut queue = delivered.into_iter().peekable();
    while eval_at <= end {
        while let Some((at, _)) = queue.peek() {
            if *at <= eval_at {
                let (at, report) = queue.next().expect("peeked");
                server.ingest(&report, at);
            } else {
                break;
            }
        }
        alerts.extend(server.evaluate_alerts(eval_at));
        eval_at += config.alert_period;
    }
    for (at, report) in queue {
        server.ingest(&report, at);
    }

    // Ground truth.
    let trace = sim.trace();
    let mut ground_truth = GroundTruth {
        transmissions: trace.transmissions(None) as u64,
        deliveries: trace.deliveries(None) as u64,
        collision_losses: trace.losses(Some(LossReason::Collision)) as u64,
        half_duplex_losses: trace.losses(Some(LossReason::HalfDuplex)) as u64,
        airtime_us: 0,
        mesh_stats: BTreeMap::new(),
    };
    for &id in &node_ids {
        ground_truth.airtime_us += sim.stats(id).airtime_us;
        let node = sim.app_as::<MonitoredNode>(id).expect("typed above");
        ground_truth.mesh_stats.insert(id, node.stats());
    }

    let positions = node_ids
        .iter()
        .zip(&config.positions)
        .map(|(&id, &p)| (id, p))
        .collect();

    ScenarioResult {
        server,
        node_ids,
        gateway,
        positions,
        ground_truth,
        client_stats,
        reports_delivered,
        reports_lost,
        alerts,
        sim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_line_scenario_populates_server() {
        let config = ScenarioConfig::line(3, 300.0, 42);
        let result = run_scenario(&config);
        assert_eq!(result.node_ids.len(), 3);
        assert_eq!(result.gateway, NodeId(3));
        // All three nodes reported.
        assert_eq!(result.server.node_ids().len(), 3);
        assert!(result.server.total_records() > 0);
        assert!(result.reports_delivered > 0);
        // Ground truth saw real traffic.
        assert!(result.ground_truth.transmissions > 0);
        assert!(result.ground_truth.deliveries > 0);
    }

    #[test]
    fn completeness_near_one_on_perfect_uplink() {
        let config = ScenarioConfig::line(3, 300.0, 7).with_uplink(UplinkModel::perfect());
        let result = run_scenario(&config);
        // Everything captured except what is still buffered client-side
        // at the end of the run.
        assert!(
            result.completeness() > 0.7,
            "completeness {}",
            result.completeness()
        );
    }

    #[test]
    fn scenario_is_deterministic() {
        let run = |seed| {
            let r = run_scenario(&ScenarioConfig::line(4, 400.0, seed));
            (
                r.server.total_records(),
                r.reports_delivered,
                r.ground_truth.transmissions,
            )
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn in_band_mode_gets_reports_to_server() {
        let config = ScenarioConfig::line(3, 300.0, 11)
            .with_in_band_monitoring()
            .with_duration(Duration::from_secs(900));
        let result = run_scenario(&config);
        // Non-gateway nodes' reports traverse the mesh; at least some
        // must arrive.
        let reporting_nodes = result.server.node_ids().len();
        assert!(
            reporting_nodes >= 2,
            "only {reporting_nodes} nodes' reports reached the server"
        );
    }

    #[test]
    fn failure_produces_silent_node_alert() {
        let config = ScenarioConfig::line(3, 300.0, 13)
            .with_failure(Failure {
                node_index: 0,
                at: SimTime::from_secs(200),
                recover_at: None,
            })
            .with_duration(Duration::from_secs(600));
        let result = run_scenario(&config);
        assert!(
            result
                .alerts
                .iter()
                .any(|a| a.node == NodeId(1) && a.kind == loramon_server::AlertKind::NodeSilent),
            "no silent-node alert: {:?}",
            result.alerts
        );
    }
}
