//! The `loramon` command-line interface.
//!
//! Argument parsing and command execution live here (hand-rolled — the
//! CLI surface is small) so they are unit-testable; `src/bin/loramon.rs`
//! is a thin wrapper.
//!
//! ```text
//! loramon simulate --nodes 8 --spacing 700 --seed 42 --duration 1200
//!                  [--grid] [--in-band] [--archive run.jsonl]
//!                  [--dashboard run.html]
//! loramon show    --archive run.jsonl
//! loramon serve   --archive run.jsonl [--addr 127.0.0.1:8080]
//! ```

use crate::scenario::{run_scenario, ScenarioConfig};
use loramon_core::UplinkModel;
use loramon_server::{
    archive, Clock, HttpServer, IngestClock, MonitorServer, ServerConfig, WallClock,
};
use loramon_sim::placement;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run a simulated deployment.
    Simulate(SimulateArgs),
    /// Print the ASCII dashboard of an archive.
    Show {
        /// Archive path.
        archive: String,
    },
    /// Serve an archive over the HTTP dashboard.
    Serve {
        /// Archive path.
        archive: String,
        /// Bind address.
        addr: String,
    },
}

/// Arguments of `loramon simulate`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateArgs {
    /// Number of nodes.
    pub nodes: usize,
    /// Node spacing in meters.
    pub spacing_m: f64,
    /// Master seed.
    pub seed: u64,
    /// Simulated seconds.
    pub duration_s: u64,
    /// Grid layout instead of a line.
    pub grid: bool,
    /// In-band monitoring instead of out-of-band.
    pub in_band: bool,
    /// Write the report archive here.
    pub archive: Option<String>,
    /// Write the HTML dashboard here.
    pub dashboard: Option<String>,
}

impl Default for SimulateArgs {
    fn default() -> Self {
        SimulateArgs {
            nodes: 5,
            spacing_m: 700.0,
            seed: 42,
            duration_s: 1200,
            grid: false,
            in_band: false,
            archive: None,
            dashboard: None,
        }
    }
}

/// CLI error: bad usage or runtime failure.
#[derive(Debug)]
pub enum CliError {
    /// Invalid arguments; carries a message (usage is appended by main).
    Usage(String),
    /// Runtime failure.
    Runtime(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Runtime(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

/// The usage string.
pub const USAGE: &str = "\
loramon — monitoring system for LoRa mesh networks

USAGE:
  loramon simulate [--nodes N] [--spacing M] [--seed S] [--duration SECS]
                   [--grid] [--in-band] [--archive FILE] [--dashboard FILE]
  loramon show  --archive FILE
  loramon serve --archive FILE [--addr HOST:PORT]
";

/// Parse a full argument list (without the program name).
///
/// # Errors
///
/// Returns [`CliError::Usage`] on unknown commands/flags or malformed
/// values.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError::Usage("missing command".into()));
    };
    match cmd.as_str() {
        "simulate" => parse_simulate(rest).map(Command::Simulate),
        "show" => {
            let opts = parse_flags(rest)?;
            Ok(Command::Show {
                archive: required(&opts, "archive")?,
            })
        }
        "serve" => {
            let opts = parse_flags(rest)?;
            Ok(Command::Serve {
                archive: required(&opts, "archive")?,
                addr: optional(&opts, "addr").unwrap_or_else(|| "127.0.0.1:0".into()),
            })
        }
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

type Flags = Vec<(String, Option<String>)>;

/// Flags that take no value.
const BOOL_FLAGS: [&str; 2] = ["grid", "in-band"];

fn parse_flags(args: &[String]) -> Result<Flags, CliError> {
    let mut out = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(CliError::Usage(format!("unexpected argument {arg:?}")));
        };
        if BOOL_FLAGS.contains(&name) {
            out.push((name.to_owned(), None));
        } else {
            let value = it
                .next()
                .ok_or_else(|| CliError::Usage(format!("--{name} needs a value")))?;
            out.push((name.to_owned(), Some(value.clone())));
        }
    }
    Ok(out)
}

fn required(flags: &Flags, name: &str) -> Result<String, CliError> {
    optional(flags, name).ok_or_else(|| CliError::Usage(format!("--{name} is required")))
}

fn optional(flags: &Flags, name: &str) -> Option<String> {
    flags
        .iter()
        .find(|(n, _)| n == name)
        .and_then(|(_, v)| v.clone())
}

fn has(flags: &Flags, name: &str) -> bool {
    flags.iter().any(|(n, _)| n == name)
}

fn parse_num<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, CliError> {
    match optional(flags, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(format!("--{name}: invalid value {v:?}"))),
    }
}

fn parse_simulate(args: &[String]) -> Result<SimulateArgs, CliError> {
    let flags = parse_flags(args)?;
    for (name, _) in &flags {
        if ![
            "nodes",
            "spacing",
            "seed",
            "duration",
            "grid",
            "in-band",
            "archive",
            "dashboard",
        ]
        .contains(&name.as_str())
        {
            return Err(CliError::Usage(format!("unknown flag --{name}")));
        }
    }
    let defaults = SimulateArgs::default();
    let parsed = SimulateArgs {
        nodes: parse_num(&flags, "nodes", defaults.nodes)?,
        spacing_m: parse_num(&flags, "spacing", defaults.spacing_m)?,
        seed: parse_num(&flags, "seed", defaults.seed)?,
        duration_s: parse_num(&flags, "duration", defaults.duration_s)?,
        grid: has(&flags, "grid"),
        in_band: has(&flags, "in-band"),
        archive: optional(&flags, "archive"),
        dashboard: optional(&flags, "dashboard"),
    };
    if parsed.nodes < 2 {
        return Err(CliError::Usage("--nodes must be at least 2".into()));
    }
    if parsed.spacing_m <= 0.0 {
        return Err(CliError::Usage("--spacing must be positive".into()));
    }
    Ok(parsed)
}

/// Execute a parsed command, writing human output to `out`.
///
/// `serve` blocks until the process is killed unless `serve_once` is set
/// (used by tests), in which case it binds, reports the address, and
/// shuts down.
///
/// # Errors
///
/// Returns [`CliError::Runtime`] on I/O or archive failures.
pub fn run(
    command: Command,
    out: &mut dyn std::io::Write,
    serve_once: bool,
) -> Result<(), CliError> {
    match command {
        Command::Simulate(args) => run_simulate(args, out),
        Command::Show { archive } => run_show(&archive, out),
        Command::Serve { archive, addr } => run_serve(&archive, &addr, out, serve_once),
    }
}

fn io_err(e: impl fmt::Display) -> CliError {
    CliError::Runtime(e.to_string())
}

fn build_config(args: &SimulateArgs) -> ScenarioConfig {
    let positions = if args.grid {
        placement::grid(args.nodes, args.spacing_m)
    } else {
        placement::line(args.nodes, args.spacing_m)
    };
    let gateway_index = args.nodes - 1;
    let mut config = ScenarioConfig::new(positions, gateway_index, args.seed)
        .with_duration(Duration::from_secs(args.duration_s))
        .with_uplink(UplinkModel::wifi(args.seed ^ 0xC11));
    if args.in_band {
        config = config.with_in_band_monitoring();
    }
    config.server.archive = true;
    config
}

fn run_simulate(args: SimulateArgs, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let config = build_config(&args);
    writeln!(
        out,
        "simulating {} nodes ({}), spacing {} m, seed {}, {} s…",
        args.nodes,
        if args.grid { "grid" } else { "line" },
        args.spacing_m,
        args.seed,
        args.duration_s
    )
    .map_err(io_err)?;
    let result = run_scenario(&config);
    write_summary(&result, out)?;

    if let Some(path) = &args.archive {
        let file = std::fs::File::create(path).map_err(io_err)?;
        let n = archive::write_jsonl(result.server.archive_entries(), file).map_err(io_err)?;
        writeln!(out, "wrote {n} reports to {path}").map_err(io_err)?;
    }
    if let Some(path) = &args.dashboard {
        let html = loramon_dashboard::generate_html(
            &result.server,
            &loramon_dashboard::HtmlOptions {
                title: format!("loramon — {} nodes, seed {}", args.nodes, args.seed),
                bucket: Duration::from_secs(60),
                positions: result.positions.clone(),
            },
        );
        std::fs::write(path, &html).map_err(io_err)?;
        writeln!(out, "wrote dashboard to {path} ({} bytes)", html.len()).map_err(io_err)?;
    }
    Ok(())
}

fn write_summary(
    result: &crate::scenario::ScenarioResult,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    use loramon_dashboard::ascii;
    writeln!(out).map_err(io_err)?;
    write!(
        out,
        "{}",
        ascii::render_node_summaries(&result.server.node_summaries())
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "\nframes on air {}, reports delivered {} (lost {}), completeness {:.1}%, alerts {}",
        result.ground_truth.transmissions,
        result.reports_delivered,
        result.reports_lost,
        result.completeness() * 100.0,
        result.alerts.len()
    )
    .map_err(io_err)?;
    Ok(())
}

fn load_archive(path: &str) -> Result<MonitorServer, CliError> {
    load_archive_with(path, Arc::new(IngestClock::new()))
}

fn load_archive_with(path: &str, clock: Arc<dyn Clock>) -> Result<MonitorServer, CliError> {
    let file = std::fs::File::open(path)
        .map_err(|e| CliError::Runtime(format!("cannot open {path}: {e}")))?;
    let entries = archive::read_jsonl(std::io::BufReader::new(file)).map_err(io_err)?;
    let server = MonitorServer::with_clock(ServerConfig::default(), clock);
    let (accepted, _, invalid) = archive::replay(&server, entries);
    if accepted == 0 {
        return Err(CliError::Runtime(format!(
            "{path} contained no ingestible reports ({invalid} invalid)"
        )));
    }
    Ok(server)
}

fn run_show(path: &str, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    use loramon_dashboard::ascii;
    use loramon_server::Window;
    let server = load_archive(path)?;
    // Re-evaluate alerts over the replayed timeline.
    server.evaluate_alerts(server.clock());
    write!(
        out,
        "{}",
        ascii::render_node_summaries(&server.node_summaries())
    )
    .map_err(io_err)?;
    let series = server.series(None, None, Window::all(), Duration::from_secs(60));
    write!(out, "\n{}", ascii::render_series("packets", &series)).map_err(io_err)?;
    write!(
        out,
        "\n{}",
        ascii::render_links(&server.link_stats(Window::all()))
    )
    .map_err(io_err)?;
    write!(
        out,
        "\n{}",
        ascii::render_topology(&server.topology(Window::all()))
    )
    .map_err(io_err)?;
    write!(out, "\n{}", ascii::render_alerts(&server.alert_history())).map_err(io_err)?;
    Ok(())
}

fn run_serve(
    path: &str,
    addr: &str,
    out: &mut dyn std::io::Write,
    serve_once: bool,
) -> Result<(), CliError> {
    // The serving binary is the one real deployment surface: replay
    // hands the archive's timeline to a wall clock, so live reports and
    // alert evaluation keep advancing in real time from there.
    let server = load_archive_with(path, Arc::new(WallClock::new()))?;
    let http = HttpServer::bind(server, addr)
        .map_err(|e| CliError::Runtime(format!("cannot bind {addr}: {e}")))?;
    writeln!(out, "serving dashboard at http://{}/", http.addr()).map_err(io_err)?;
    if serve_once {
        http.shutdown();
        return Ok(());
    }
    writeln!(out, "press Ctrl-C to stop").map_err(io_err)?;
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parse_simulate_defaults() {
        let cmd = parse(&argv("simulate")).unwrap();
        assert_eq!(cmd, Command::Simulate(SimulateArgs::default()));
    }

    #[test]
    fn parse_simulate_full() {
        let cmd = parse(&argv(
            "simulate --nodes 9 --spacing 500 --seed 7 --duration 600 --grid --in-band \
             --archive a.jsonl --dashboard d.html",
        ))
        .unwrap();
        let Command::Simulate(args) = cmd else {
            panic!("wrong command")
        };
        assert_eq!(args.nodes, 9);
        assert_eq!(args.spacing_m, 500.0);
        assert_eq!(args.seed, 7);
        assert_eq!(args.duration_s, 600);
        assert!(args.grid);
        assert!(args.in_band);
        assert_eq!(args.archive.as_deref(), Some("a.jsonl"));
        assert_eq!(args.dashboard.as_deref(), Some("d.html"));
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(matches!(parse(&argv("")), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&argv("frobnicate")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("simulate --nodes")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("simulate --nodes banana")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("simulate --nodes 1")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("simulate --unknown 3")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(parse(&argv("show")), Err(CliError::Usage(_))));
    }

    #[test]
    fn parse_show_and_serve() {
        assert_eq!(
            parse(&argv("show --archive x.jsonl")).unwrap(),
            Command::Show {
                archive: "x.jsonl".into()
            }
        );
        assert_eq!(
            parse(&argv("serve --archive x.jsonl --addr 0.0.0.0:9000")).unwrap(),
            Command::Serve {
                archive: "x.jsonl".into(),
                addr: "0.0.0.0:9000".into()
            }
        );
        // Default serve address.
        let Command::Serve { addr, .. } = parse(&argv("serve --archive x.jsonl")).unwrap() else {
            panic!()
        };
        assert_eq!(addr, "127.0.0.1:0");
    }

    #[test]
    fn simulate_show_serve_roundtrip() {
        let dir = std::env::temp_dir().join(format!("loramon-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let archive_path = dir.join("run.jsonl");
        let dash_path = dir.join("run.html");

        // Simulate a small, short run.
        let cmd = parse(&argv(&format!(
            "simulate --nodes 3 --spacing 400 --seed 5 --duration 300 \
             --archive {} --dashboard {}",
            archive_path.display(),
            dash_path.display()
        )))
        .unwrap();
        let mut out = Vec::new();
        run(cmd, &mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("completeness"));
        assert!(archive_path.exists());
        assert!(dash_path.exists());
        let html = std::fs::read_to_string(&dash_path).unwrap();
        assert!(html.contains("<!doctype html>"));

        // Show replays the archive.
        let mut out = Vec::new();
        run(
            Command::Show {
                archive: archive_path.display().to_string(),
            },
            &mut out,
            true,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("0001"), "{text}");
        assert!(text.contains("topology"));

        // Serve binds and (in once mode) exits.
        let mut out = Vec::new();
        run(
            Command::Serve {
                archive: archive_path.display().to_string(),
                addr: "127.0.0.1:0".into(),
            },
            &mut out,
            true,
        )
        .unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("http://127.0.0.1:"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_grid_in_band_works() {
        let cmd = parse(&argv(
            "simulate --nodes 4 --spacing 500 --seed 9 --duration 300 --grid --in-band",
        ))
        .unwrap();
        let mut out = Vec::new();
        run(cmd, &mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("grid"));
        assert!(text.contains("completeness"));
    }

    #[test]
    fn show_missing_archive_fails_cleanly() {
        let mut out = Vec::new();
        let err = run(
            Command::Show {
                archive: "/definitely/not/here.jsonl".into(),
            },
            &mut out,
            true,
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Runtime(_)));
    }
}
