//! The `loramon` CLI binary. All logic lives in [`loramon::cli`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match loramon::cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}\n\n{}", loramon::cli::USAGE);
            return ExitCode::from(2);
        }
    };
    let mut stdout = std::io::stdout();
    match loramon::cli::run(command, &mut stdout, false) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
