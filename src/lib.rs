//! # loramon
//!
//! A monitoring system for LoRa mesh networks — a full reproduction of
//! *"Towards a Monitoring System for a LoRa Mesh Network"* (ICDCS 2022)
//! in Rust, including every substrate the paper depends on.
//!
//! ## Architecture
//!
//! ```text
//!  ┌────────────────────── simulated testbed ──────────────────────┐
//!  │  loramon-phy      LoRa airtime / propagation / collisions     │
//!  │  loramon-sim      deterministic discrete-event radio world    │
//!  │  loramon-mesh     distance-vector mesh (LoRaMesher-style)     │
//!  └────────────────────────────────────────────────────────────────┘
//!            │ per-packet events                 ▲ data messages
//!            ▼                                   │
//!  loramon-core       monitoring client: records → batched reports
//!            │ reports (JSON over IP uplink, or binary in-band)
//!            ▼
//!  loramon-server     ingestion → store → queries/topology/alerts
//!            │
//!            ▼
//!  loramon-dashboard  ASCII + HTML/SVG dashboards, live HTTP page
//! ```
//!
//! The [`scenario`] module wires all of it together; see
//! `examples/quickstart.rs` for the five-minute tour.
//!
//! ## Example
//!
//! ```
//! use loramon::scenario::{run_scenario, ScenarioConfig};
//!
//! let result = run_scenario(&ScenarioConfig::line(3, 300.0, 42));
//! assert_eq!(result.server.node_ids().len(), 3);
//! assert!(result.server.total_records() > 0);
//! ```

pub mod cli;
pub mod scenario;

pub use loramon_core as core;
pub use loramon_dashboard as dashboard;
pub use loramon_mesh as mesh;
pub use loramon_phy as phy;
pub use loramon_server as server;
pub use loramon_sim as sim;
