//! Campus deployment: the paper's motivating scenario at realistic scale.
//!
//! Sixteen nodes spread over a ~3 × 3 km campus, one gateway in a corner,
//! every sensor sending periodic telemetry. Runs one simulated hour,
//! then writes the self-contained HTML dashboard (R-Fig-2/3/4) to
//! `campus_dashboard.html` and prints the topology-inference accuracy
//! against the simulator's ground truth.
//!
//! ```sh
//! cargo run --example campus_deployment
//! ```

use loramon::dashboard::{ascii, generate_html, HtmlOptions};
use loramon::scenario::{run_scenario, ScenarioConfig};
use loramon::server::{topology, Window};
use loramon::sim::{placement, Rng, TraceEvent};
use std::collections::BTreeSet;
use std::time::Duration;

fn main() {
    let mut rng = Rng::new(99);
    let mut positions = placement::uniform_random(15, 3000.0, 3000.0, 250.0, &mut rng);
    // The gateway sits at the campus edge (index 15).
    positions.push(loramon::phy::Position::new(0.0, 0.0));
    let gateway_index = positions.len() - 1;

    let mut config =
        ScenarioConfig::new(positions, gateway_index, 99).with_duration(Duration::from_secs(3600));
    config.traffic = Some(
        loramon::mesh::TrafficPattern::to_gateway(config.gateway(), Duration::from_secs(120), 24)
            .with_reliable(true),
    );

    println!(
        "running: 16-node campus, gateway {}, 1 simulated hour…\n",
        config.gateway()
    );
    let result = run_scenario(&config);

    println!("── Nodes ──");
    print!(
        "{}",
        ascii::render_node_summaries(&result.server.node_summaries())
    );

    // End-to-end delivery as the monitor reconstructs it.
    println!("\n── End-to-end delivery (reconstructed from telemetry) ──");
    for e in result.server.end_to_end(Window::all()) {
        println!(
            "  {} → {}: {}/{} delivered ({:.0}%), mean latency {}",
            e.origin,
            e.final_dst,
            e.delivered,
            e.sent,
            e.delivery_ratio() * 100.0,
            e.mean_latency()
                .map_or_else(|| "n/a".into(), |d| format!("{} ms", d.as_millis())),
        );
    }

    // R-Fig-4 companion: topology accuracy vs ground truth.
    let inferred = result.server.topology(Window::all());
    let truth = ground_truth_links(&result);
    let (tp, fp, fn_) = topology::compare_undirected(&inferred.undirected_heard(), &truth);
    println!("\n── Topology inference vs ground truth (undirected links) ──");
    println!("  true positives:  {tp}");
    println!("  false positives: {fp}");
    println!("  false negatives: {fn_}");
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let recall = tp as f64 / (tp + fn_).max(1) as f64;
    println!("  precision {precision:.2}, recall {recall:.2}");

    // The HTML dashboard artifact.
    let html = generate_html(
        &result.server,
        &HtmlOptions {
            title: "loramon — campus deployment".into(),
            bucket: Duration::from_secs(120),
            positions: result.positions.clone(),
        },
    );
    let path = "campus_dashboard.html";
    std::fs::write(path, &html).expect("write dashboard");
    println!(
        "\nwrote {path} ({} bytes) — open it in a browser",
        html.len()
    );

    println!(
        "\ncompleteness {:.1}%, reports delivered {}, alerts fired {}",
        result.completeness() * 100.0,
        result.reports_delivered,
        result.alerts.len()
    );
}

/// Ground-truth undirected link set: every pair that actually exchanged
/// at least one frame in the simulator trace.
fn ground_truth_links(
    result: &loramon::scenario::ScenarioResult,
) -> Vec<(loramon::sim::NodeId, loramon::sim::NodeId)> {
    let mut set = BTreeSet::new();
    for ev in result.sim.trace().iter() {
        if let TraceEvent::FrameDelivered { from, to, .. } = ev {
            let (a, b) = if from <= to {
                (*from, *to)
            } else {
                (*to, *from)
            };
            set.insert((a, b));
        }
    }
    set.into_iter().collect()
}
