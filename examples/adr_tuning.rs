//! ADR tuning from monitoring data: close the loop.
//!
//! The paper positions monitoring as the basis for "further analysis" of
//! the mesh. This example closes the loop: run a deployment at the
//! conservative SF12, feed the *server-side* observed SNRs into the ADR
//! controller, and show the spreading factor each link could safely run
//! at — and how much airtime that would save.
//!
//! ```sh
//! cargo run --example adr_tuning
//! ```

use loramon::core::UplinkModel;
use loramon::phy::{
    airtime, AdrConfig, AdrController, Bandwidth, CodingRate, RadioConfig, SpreadingFactor,
};
use loramon::scenario::{run_scenario, ScenarioConfig};
use loramon::server::Window;
use std::time::Duration;

fn main() {
    // A line with growing gaps: near links are wasteful at SF12, the far
    // one genuinely needs it.
    let positions = vec![
        loramon::phy::Position::new(0.0, 0.0),
        loramon::phy::Position::new(400.0, 0.0),
        loramon::phy::Position::new(1400.0, 0.0),
        loramon::phy::Position::new(4400.0, 0.0),
    ];
    let mut config = ScenarioConfig::new(positions, 3, 606)
        .with_duration(Duration::from_secs(1800))
        .with_uplink(UplinkModel::perfect());
    config.radio = RadioConfig::new(SpreadingFactor::Sf12, Bandwidth::Khz125, CodingRate::Cr4_5);
    // SF12 frames are slow; space the traffic out accordingly.
    config.traffic = Some(loramon::mesh::TrafficPattern::to_gateway(
        config.gateway(),
        Duration::from_secs(120),
        16,
    ));

    println!("running the deployment at SF12 (conservative default)…\n");
    let result = run_scenario(&config);

    println!("link                 mean SNR   ADR recommends   airtime/20 B frame");
    println!("──────────────────── ───────── ──────────────── ───────────────────");
    let sf12_toa = airtime::time_on_air(&config.radio, 20).as_millis();
    let mut total_saving = 0.0;
    let mut links = 0;
    for link in result.server.link_stats(Window::all()) {
        // Only adjacent forwarding links matter for tuning.
        if link.packets < 20 {
            continue;
        }
        let mut adr = AdrController::new(AdrConfig::default());
        for _ in 0..10 {
            adr.record_snr(link.mean_snr_db);
        }
        let recommended = adr
            .recommend(SpreadingFactor::Sf12)
            .expect("enough samples");
        let rec_cfg = config.radio.with_sf(recommended);
        let rec_toa = airtime::time_on_air(&rec_cfg, 20).as_millis();
        let saving = 1.0 - rec_toa as f64 / sf12_toa as f64;
        total_saving += saving;
        links += 1;
        println!(
            "{} → {}        {:>6.1} dB        {:>4}       {:>5} ms (−{:.0}%)",
            link.from,
            link.to,
            link.mean_snr_db,
            recommended,
            rec_toa,
            saving * 100.0
        );
    }
    println!(
        "\nSF12 frame costs {sf12_toa} ms; mean airtime saving across {} links: {:.0}%",
        links,
        total_saving / links.max(1) as f64 * 100.0
    );
    println!(
        "\nExpected shape: strong short links tune down to SF7 (~24× faster);\n\
         the marginal long link keeps a high SF. The tuning input is purely\n\
         the data the monitoring system already collects."
    );
}
