//! Monitoring overhead study (R-Fig-6 and R-Tab-2).
//!
//! Two questions the paper's design raises:
//!
//! 1. **Uplink bytes** — how big are JSON reports vs batch size, and how
//!    much does the compact binary encoding save? (R-Tab-2)
//! 2. **Airtime** — if nodes have no IP uplink and must ship telemetry
//!    *in-band* over the mesh, how much LoRa airtime does monitoring
//!    itself consume, as a function of the report period? (R-Fig-6)
//!
//! ```sh
//! cargo run --example overhead_study
//! ```

use loramon::core::{MonitorConfig, UplinkModel};
use loramon::scenario::{run_scenario, ScenarioConfig};
use std::time::Duration;

fn main() {
    report_size_table();
    println!();
    in_band_airtime_study();
}

/// R-Tab-2: report size on the wire vs records per report.
fn report_size_table() {
    use loramon::core::{PacketRecord, Report};
    use loramon::mesh::{Direction, PacketType};
    use loramon::sim::NodeId;

    println!("── R-Tab-2: report size vs batch size ──");
    println!("records │ JSON bytes │ binary bytes │ ratio");
    println!("────────┼────────────┼──────────────┼──────");
    for n in [0usize, 1, 5, 10, 25, 50, 100] {
        let report = Report {
            node: NodeId(1),
            report_seq: 1,
            generated_at_ms: 60_000,
            dropped_records: 0,
            status: None,
            records: (0..n as u64)
                .map(|i| PacketRecord {
                    seq: i,
                    timestamp_ms: 30_000 + i * 250,
                    direction: if i % 2 == 0 {
                        Direction::In
                    } else {
                        Direction::Out
                    },
                    node: NodeId(1),
                    counterpart: NodeId(2),
                    ptype: PacketType::Data,
                    origin: NodeId(2),
                    final_dst: NodeId(1),
                    packet_id: i as u16,
                    ttl: 7,
                    size_bytes: 42,
                    rssi_dbm: (i % 2 == 0).then_some(-96.5),
                    snr_db: (i % 2 == 0).then_some(4.25),
                })
                .collect(),
        };
        let json = report.encode_json().len();
        let binary = report.encode_binary().len();
        println!(
            "{n:>7} │ {json:>10} │ {binary:>12} │ {:.1}×",
            json as f64 / binary as f64
        );
    }
}

/// R-Fig-6: in-band monitoring airtime overhead vs report period.
fn in_band_airtime_study() {
    println!("── R-Fig-6: monitoring airtime overhead (in-band vs out-of-band) ──");
    println!("mode         │ report period │ total airtime │ overhead vs baseline");
    println!("─────────────┼───────────────┼───────────────┼─────────────────────");

    // Baseline: monitoring out-of-band — telemetry costs no LoRa airtime.
    let baseline = run(ModeSel::OutOfBand, 30);
    println!(
        "out-of-band  │          30 s │ {:>10.2} s │ baseline",
        baseline as f64 / 1e6
    );

    for period_s in [120u64, 60, 30] {
        let airtime = run(ModeSel::InBand, period_s);
        let overhead = (airtime as f64 - baseline as f64) / baseline as f64 * 100.0;
        println!(
            "in-band      │ {:>11} s │ {:>10.2} s │ {:>+18.1}%",
            period_s,
            airtime as f64 / 1e6,
            overhead
        );
    }

    println!(
        "\nExpected shape: in-band reporting adds airtime that grows as the\n\
         report period shrinks; out-of-band monitoring is airtime-free —\n\
         the paper's architectural argument for the WiFi uplink."
    );
}

enum ModeSel {
    OutOfBand,
    InBand,
}

/// Run the fixed scenario with the given monitoring mode and report
/// period; return total network transmit airtime in µs.
fn run(mode: ModeSel, period_s: u64) -> u64 {
    let monitor = MonitorConfig::new()
        .with_report_period(Duration::from_secs(period_s))
        // Keep in-band reports small enough to usually fit one frame.
        .with_max_records(10);
    let mut config = ScenarioConfig::line(4, 800.0, 777)
        .with_duration(Duration::from_secs(1800))
        .with_monitor(monitor)
        .with_uplink(UplinkModel::perfect());
    if matches!(mode, ModeSel::InBand) {
        config = config.with_in_band_monitoring();
    }
    let result = run_scenario(&config);
    result.ground_truth.airtime_us
}
