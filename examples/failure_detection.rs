//! Failure-detection latency study (R-Fig-7).
//!
//! A relay node dies mid-run; the server's silent-node rule must notice.
//! Detection latency depends on how often clients report, so this sweeps
//! the report period and prints latency (and the alert trail) per
//! setting — the trade-off curve an administrator tunes.
//!
//! ```sh
//! cargo run --example failure_detection
//! ```

use loramon::core::MonitorConfig;
use loramon::scenario::{run_scenario, Failure, ScenarioConfig};
use loramon::server::AlertKind;
use loramon::sim::SimTime;
use std::time::Duration;

fn main() {
    const FAIL_AT_S: u64 = 600;
    println!("relay node 0002 dies at t = {FAIL_AT_S} s; when does the server notice?\n");
    println!("report period │ silence threshold │ detection latency │ alerts fired");
    println!("──────────────┼───────────────────┼───────────────────┼─────────────");

    for period_s in [10u64, 30, 60, 120] {
        let monitor = MonitorConfig::new().with_report_period(Duration::from_secs(period_s));
        let mut config = ScenarioConfig::line(4, 800.0, 555)
            .with_duration(Duration::from_secs(1800))
            .with_monitor(monitor)
            .with_failure(Failure {
                node_index: 1,
                at: SimTime::from_secs(FAIL_AT_S),
                recover_at: None,
            });
        // Silence threshold scales with the report period (3 periods).
        config.server.alert_rules.silent_after = Duration::from_secs(3 * period_s);

        let result = run_scenario(&config);
        let detection = result
            .alerts
            .iter()
            .find(|a| a.kind == AlertKind::NodeSilent && a.node == loramon::sim::NodeId(2));
        let latency = detection.map(|a| {
            a.at.saturating_since(SimTime::from_secs(FAIL_AT_S))
                .as_secs()
        });
        println!(
            "{:>10} s  │ {:>14} s  │ {:>14}  │ {}",
            period_s,
            3 * period_s,
            latency.map_or_else(|| "not detected".into(), |l| format!("{l} s")),
            result.alerts.len(),
        );
    }

    println!(
        "\nExpected shape: detection latency grows roughly linearly with the\n\
         report period — frequent reports buy fast detection at the cost of\n\
         uplink traffic (see overhead_study for the other side of the trade)."
    );
}
