//! Delivery ratio vs uplink loss, with the acked transport off and on.
//!
//! Sweeps the flaky-uplink loss probability and runs the same 3-node
//! line scenario twice per point: once fire-and-forget (each report
//! gets exactly one delivery attempt) and once with the acknowledged
//! transport (bounded retransmit queue, exponential backoff, server
//! acks). Prints the R-Tab-4 table of EXPERIMENTS.md.
//!
//! Run with: `cargo run --release --example reliable_uplink`

use loramon::core::{TransportConfig, UplinkModel};
use loramon::scenario::{run_scenario, ScenarioConfig};
use std::time::Duration;

fn config(loss: f64, seed: u64) -> ScenarioConfig {
    ScenarioConfig::line(3, 300.0, seed)
        .with_duration(Duration::from_secs(3600))
        .with_uplink(UplinkModel::flaky(loss, seed ^ 0x10_55))
}

fn main() {
    println!("| uplink loss | fire-and-forget | acked transport | retransmissions |");
    println!("|---|---|---|---|");
    for &loss_pct in &[0u32, 5, 10, 20, 30, 40] {
        let loss = f64::from(loss_pct) / 100.0;
        let seed = 2024 + u64::from(loss_pct);

        let baseline = run_scenario(&config(loss, seed));
        let acked = run_scenario(&config(loss, seed).with_transport(TransportConfig::new()));
        let stats = acked.transport.expect("transport stats present");

        println!(
            "| {:>2} % | {:.3} | {:.3} | {} |",
            loss_pct,
            baseline.delivery_ratio(),
            acked.delivery_ratio(),
            stats.retransmissions,
        );
    }
}
