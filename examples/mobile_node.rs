//! Mobile node: a sensor walks away from the mesh and the monitoring
//! system watches its link degrade.
//!
//! Node 1 starts 200 m from its neighbor, then walks 4 km out at
//! 1.5 m/s (pedestrian pace) from t = 600 s. The server's
//! RSSI-degradation rule fires as the link decays; the walker's
//! *telemetry* keeps flowing because its WiFi uplink does not care where
//! the LoRa radio is — the architectural point of out-of-band reporting.
//!
//! ```sh
//! cargo run --example mobile_node
//! ```

use loramon::core::UplinkModel;
use loramon::dashboard::ascii;
use loramon::phy::Position;
use loramon::scenario::{run_scenario, ScenarioConfig, Walk};
use loramon::server::Window;
use loramon::sim::{NodeId, SimTime};
use std::time::Duration;

fn main() {
    let mut config = ScenarioConfig::line(3, 200.0, 404)
        .with_duration(Duration::from_secs(3600))
        .with_uplink(UplinkModel::perfect())
        .with_walk(Walk {
            node_index: 0,
            depart: SimTime::from_secs(600),
            to: Position::new(-4000.0, 0.0),
            speed_mps: 1.5,
            step: Duration::from_secs(30),
        });
    // Make the degradation rule a bit more eager for the demo.
    config.server.alert_rules.rssi_drop_db = 6.0;
    config.server.alert_rules.rssi_window = Duration::from_secs(300);

    let result = run_scenario(&config);

    println!("── Node 1 walks away from t = 600 s at 1.5 m/s ──\n");
    println!("network's view of node 1 (10-minute windows):");
    for w in 0..6u64 {
        let window = Window {
            from: SimTime::from_secs(w * 600),
            to: SimTime::from_secs((w + 1) * 600),
        };
        let link = result
            .server
            .link_stats(window)
            .into_iter()
            .find(|l| l.from == NodeId(1));
        match link {
            Some(l) => println!(
                "  {:>2}–{:<2} min: {:>4} pkts heard, mean RSSI {:>6.1} dBm",
                w * 10,
                (w + 1) * 10,
                l.packets,
                l.mean_rssi_dbm
            ),
            None => println!("  {:>2}–{:<2} min: (nothing heard)", w * 10, (w + 1) * 10),
        }
    }

    println!("\n── Alerts ──");
    print!("{}", ascii::render_alerts(&result.alerts));

    let degraded = result
        .alerts
        .iter()
        .any(|a| a.kind == loramon::server::AlertKind::RssiDegraded);
    println!(
        "\nRSSI degradation detected: {}.",
        if degraded { "yes" } else { "NO (unexpected)" }
    );
    println!(
        "Note the walker never goes *silent*: its out-of-band WiFi uplink\n\
         keeps reporting even after its LoRa link died — radio health and\n\
         telemetry health are independent, which is exactly why the paper\n\
         ships reports out-of-band."
    );
}
