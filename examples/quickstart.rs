//! Quickstart: the whole monitoring pipeline in one run.
//!
//! Builds a five-node LoRa mesh on a line, lets node 1 send telemetry to
//! the gateway at the far end, monitors everything, and prints what the
//! paper's dashboard would show — plus R-Tab-1, the monitored
//! packet-record schema.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use loramon::dashboard::ascii;
use loramon::scenario::{run_scenario, ScenarioConfig};
use loramon::server::Window;
use std::time::Duration;

fn main() {
    let config = ScenarioConfig::line(5, 700.0, 2022).with_duration(Duration::from_secs(1200));
    println!(
        "running: 5 nodes, 700 m spacing, gateway {}, {} simulated seconds…\n",
        config.gateway(),
        config.duration.as_secs()
    );
    let result = run_scenario(&config);

    // R-Tab-1: the per-packet record schema.
    println!("── R-Tab-1: monitored packet record (JSON wire form) ──");
    println!("{}\n", sample_record_json());
    let summaries = result.server.node_summaries();

    println!("── Nodes ──");
    print!("{}", ascii::render_node_summaries(&summaries));

    println!("\n── Packets over time (60 s buckets, all nodes) ──");
    let series = result
        .server
        .series(None, None, Window::all(), Duration::from_secs(60));
    print!("{}", ascii::render_series("packets", &series));

    println!("\n── Links (as seen by the monitor) ──");
    let links = result.server.link_stats(Window::all());
    print!("{}", ascii::render_links(&links));

    println!("\n── Inferred topology ──");
    print!(
        "{}",
        ascii::render_topology(&result.server.topology(Window::all()))
    );

    println!("\n── Node health ──");
    let health = result.server.health(
        &loramon::server::HealthRules::default(),
        result.server.clock(),
    );
    print!("{}", ascii::render_health(&health));

    println!("\n── Alerts ──");
    print!("{}", ascii::render_alerts(&result.alerts));

    println!("\n── Monitoring vs ground truth ──");
    println!(
        "frames on the air (truth): {:>6}",
        result.ground_truth.transmissions
    );
    println!(
        "reports delivered:         {:>6} (lost {})",
        result.reports_delivered, result.reports_lost
    );
    println!(
        "telemetry completeness:    {:>6.1}%",
        result.completeness() * 100.0
    );
}

/// A representative packet record in the JSON wire form clients ship.
fn sample_record_json() -> String {
    use loramon::core::PacketRecord;
    use loramon::mesh::{Direction, PacketType};
    use loramon::sim::NodeId;
    let record = PacketRecord {
        seq: 0,
        timestamp_ms: 61_000,
        direction: Direction::In,
        node: NodeId(1),
        counterpart: NodeId(2),
        ptype: PacketType::Data,
        origin: NodeId(2),
        final_dst: NodeId(5),
        packet_id: 17,
        ttl: 9,
        size_bytes: 31,
        rssi_dbm: Some(-97.2),
        snr_db: Some(3.8),
    };
    serde_json::to_string_pretty(&record).expect("record serializes")
}
