//! Live dashboard server: run a simulated deployment, then serve its
//! data over the real HTTP API with the interactive dashboard page.
//!
//! ```sh
//! cargo run --example live_server            # serve until Ctrl-C
//! cargo run --example live_server -- --once  # smoke-test mode: bind,
//!                                            # self-check, exit
//! ```

use loramon::scenario::{run_scenario, ScenarioConfig};
use loramon::server::HttpServer;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn main() {
    let once = std::env::args().any(|a| a == "--once");

    println!("simulating a 6-node mesh for 20 minutes…");
    let config = ScenarioConfig::line(6, 600.0, 31).with_duration(Duration::from_secs(1200));
    let result = run_scenario(&config);
    println!(
        "done: {} nodes reporting, {} records at the server",
        result.server.node_ids().len(),
        result.server.total_records()
    );

    let http = HttpServer::bind(result.server.clone(), "127.0.0.1:0").expect("bind");
    let addr = http.addr();
    println!("\nserving the dashboard at http://{addr}/");
    println!(
        "JSON API: http://{addr}/api/nodes  /api/series  /api/links  /api/topology  /api/alerts"
    );

    if once {
        // Self-check: fetch the health endpoint and the page.
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET /api/health HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        assert!(body.contains(r#"{"ok":true}"#), "health check failed");
        println!("--once: health check passed, shutting down");
        http.shutdown();
        return;
    }

    println!("press Ctrl-C to stop");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
