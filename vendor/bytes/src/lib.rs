//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace uses: cheaply-cloneable
//! [`Bytes`] (shared, sliceable, immutable), [`BytesMut`] as an
//! append-only builder, and the [`BufMut`] write methods (big-endian,
//! matching the real crate).

use std::ops::{Deref, Range};
use std::sync::Arc;

/// A cheaply cloneable, sliceable, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    range: Range<usize>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer borrowing nothing — copies the static slice once.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// A buffer copied from a slice.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
            range: 0..bytes.len(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// A shared sub-slice (no copy).
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds of {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            range: self.range.start + range.start..self.range.start + range.end,
        }
    }

    /// The contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.range.clone()]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let len = data.len();
        Bytes {
            data: Arc::from(data),
            range: 0..len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte builder that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the builder is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Big-endian append operations (the subset of `bytes::BufMut` used by
/// the workspace's packet codec).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, value: u8);
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, value: u16);
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, value: u32);
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, value: u64);
    /// Append a slice.
    fn put_slice(&mut self, bytes: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, value: u8) {
        self.data.push(value);
    }

    fn put_u16(&mut self, value: u16) {
        self.data.extend_from_slice(&value.to_be_bytes());
    }

    fn put_u32(&mut self, value: u32) {
        self.data.extend_from_slice(&value.to_be_bytes());
    }

    fn put_u64(&mut self, value: u64) {
        self.data.extend_from_slice(&value.to_be_bytes());
    }

    fn put_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, value: u8) {
        self.push(value);
    }

    fn put_u16(&mut self, value: u16) {
        self.extend_from_slice(&value.to_be_bytes());
    }

    fn put_u32(&mut self, value: u32) {
        self.extend_from_slice(&value.to_be_bytes());
    }

    fn put_u64(&mut self, value: u64) {
        self.extend_from_slice(&value.to_be_bytes());
    }

    fn put_slice(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_freeze_slice() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u16(0xABCD);
        b.put_u8(0x01);
        b.put_slice(&[9, 9]);
        let frozen = b.freeze();
        assert_eq!(frozen, &[0xAB, 0xCD, 0x01, 9, 9][..]);
        let s = frozen.slice(1..3);
        assert_eq!(s, &[0xCD, 0x01][..]);
        // Sub-slicing a slice stays relative.
        assert_eq!(s.slice(1..2), &[0x01][..]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_bounds_checked() {
        Bytes::copy_from_slice(b"ab").slice(1..3);
    }

    #[test]
    fn equality_and_empty() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from(vec![1, 2]), Bytes::copy_from_slice(&[1, 2]));
    }
}
