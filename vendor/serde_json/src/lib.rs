//! Offline stand-in for `serde_json`, backed by the JSON core in the
//! `serde` stub (`serde::json`).
//!
//! Provides the workspace-used surface: [`Value`], [`to_value`],
//! [`to_string`]/[`to_string_pretty`]/[`to_vec`]/[`to_writer`],
//! [`from_str`]/[`from_slice`], and the [`json!`] macro.

pub use serde::json::{Error, Map, Number, Value};

use serde::{Deserialize, Serialize};
use std::io::Write;

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Convert any serializable value into a [`Value`].
///
/// # Errors
///
/// Never fails in this implementation; the `Result` mirrors the real
/// serde_json signature.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstruct a typed value from a [`Value`].
///
/// # Errors
///
/// Returns an [`Error`] when the value does not match `T`'s shape.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value)
}

/// Serialize to compact JSON text.
///
/// # Errors
///
/// Never fails in this implementation (signature compatibility).
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    Ok(value.to_value().to_json_string())
}

/// Serialize to pretty-printed JSON text.
///
/// # Errors
///
/// Never fails in this implementation (signature compatibility).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    Ok(value.to_value().to_json_string_pretty())
}

/// Serialize to compact JSON bytes.
///
/// # Errors
///
/// Never fails in this implementation (signature compatibility).
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    Ok(value.to_value().to_json_string().into_bytes())
}

/// Serialize compact JSON into a writer.
///
/// # Errors
///
/// Returns an [`Error`] wrapping any I/O failure.
pub fn to_writer<W: Write, T: Serialize>(mut writer: W, value: &T) -> Result<()> {
    writer
        .write_all(value.to_value().to_json_string().as_bytes())
        .map_err(|e| Error::new(format!("write failed: {e}")))
}

/// Parse JSON text into a typed value.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    T::from_value(&serde::json::parse(text)?)
}

/// Parse JSON bytes into a typed value.
///
/// # Errors
///
/// Returns an [`Error`] on invalid UTF-8, malformed JSON or a shape
/// mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(text)
}

#[doc(hidden)]
pub fn __to_value_infallible<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Build a [`Value`] from a JSON-ish literal.
///
/// Supports `null`, object literals with string-literal keys and
/// expression values, array literals of expressions, and bare
/// serializable expressions — the forms this workspace uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($element:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![
            $($crate::__to_value_infallible(&$element)),*
        ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        let mut __map = $crate::Map::new();
        $(__map.insert(
            ::std::string::String::from($key),
            $crate::__to_value_infallible(&$value),
        );)*
        $crate::Value::Object(__map)
    }};
    ($other:expr) => { $crate::__to_value_infallible(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_forms() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!({"ok": true}).to_string(), r#"{"ok":true}"#);
        assert_eq!(json!([1, 2]).to_string(), "[1,2]");
        let n = 5u64;
        assert_eq!(json!({"n": n, "s": "x"})["n"], 5);
        let nested = json!({"outer": json!({"inner": 1})});
        assert_eq!(nested["outer"]["inner"], 1);
    }

    #[test]
    fn typed_roundtrip_through_text() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[1,null,3]");
        let back: Vec<Option<u32>> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn error_converts_to_io_error() {
        let e: Error = from_str::<u32>("x").unwrap_err();
        let io: std::io::Error = e.into();
        assert_eq!(io.kind(), std::io::ErrorKind::InvalidData);
    }
}
