//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std synchronization primitives with `parking_lot`'s
//! non-poisoning API: `read()`/`write()`/`lock()` return guards
//! directly instead of `Result`s. A poisoned std lock (a panic while
//! held) is re-entered, matching parking_lot's behavior of not
//! propagating poison.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with non-poisoning guards.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires unique ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A mutual-exclusion lock with non-poisoning guards.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires unique ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
