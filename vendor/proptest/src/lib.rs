//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: [`Strategy`] with
//! `prop_map`, ranges/`any`/`Just`/tuples/`collection::vec`/
//! `option::of` strategies, and the `proptest!`, `prop_compose!`,
//! `prop_oneof!` and `prop_assert*!` macros.
//!
//! Differences from the real crate, on purpose:
//! - **Deterministic**: each test's RNG is seeded from the test name,
//!   so runs are fully reproducible (there is no failure-persistence
//!   file because none is needed).
//! - **No shrinking**: a failing case panics with the sampled inputs
//!   visible in the assertion message instead of being minimized.

use std::ops::{Range, RangeInclusive};

pub mod strategy;
pub use strategy::{BoxedStrategy, Just, Map, OneOf, Strategy};

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generator backing all strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an explicit value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seed deterministically from a test name (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(hash)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Values with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),+) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        })+
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() * 2e9 - 1e9
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> impl Strategy<Value = T> {
    strategy::fn_strategy(T::arbitrary)
}

macro_rules! range_strategy_int {
    ($($ty:ty),+) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (self.end() - self.start()) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                self.start() + rng.below(span + 1) as $ty
            }
        })+
    };
}

range_strategy_int!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty range strategy");
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

/// Strategies over collections.
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy for a `Vec` whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Strategies over `Option`.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy yielding `None` about a quarter of the time, otherwise
    /// `Some` of the inner strategy's value.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{any, ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

/// Skip the current case when a precondition on the sampled inputs
/// fails. Expands to `continue` inside the `proptest!` case loop (this
/// stub skips rather than resampling).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            continue;
        }
    };
}

/// Assert a condition inside a property (panics on failure; this stub
/// does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::std::assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::std::assert_eq!($($args)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::std::assert_ne!($($args)*) };
}

/// Choose uniformly between strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define a function returning a composed strategy:
/// `fn name(args)(binding in strategy, ...) -> T { body }`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$attr:meta])*
        $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
        ($($field:ident in $strat:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$attr])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::Strategy<Value = $ret> {
            let __strats = ($($strat,)+);
            $crate::strategy::fn_strategy(move |__rng: &mut $crate::TestRng| {
                let ($($field,)+) = $crate::Strategy::sample(&__strats, __rng);
                $body
            })
        }
    };
}

/// Run property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that checks the body over `cases` sampled
/// inputs (deterministically seeded from the test name).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            let __strats = ($($strat,)+);
            for __case in 0..__config.cases {
                let ($($pat,)+) = $crate::Strategy::sample(&__strats, &mut __rng);
                $body
            }
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..200 {
            let v = (10u16..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let f = (-1.5f64..=2.5).sample(&mut rng);
            assert!((-1.5..=2.5).contains(&f));
            let b = (0u8..=100).sample(&mut rng);
            assert!(b <= 100);
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![(1u16..100).prop_map(|v| v as u32), Just(0u32),];
        let mut rng = TestRng::from_seed(3);
        let mut saw_zero = false;
        let mut saw_mapped = false;
        for _ in 0..100 {
            match strat.sample(&mut rng) {
                0 => saw_zero = true,
                v if v < 100 => saw_mapped = true,
                v => panic!("out of range: {v}"),
            }
        }
        assert!(saw_zero && saw_mapped);
    }

    #[test]
    fn collection_and_option() {
        let strat = crate::collection::vec(crate::option::of(0u8..5), 0..10);
        let mut rng = TestRng::from_seed(11);
        for _ in 0..50 {
            let v = strat.sample(&mut rng);
            assert!(v.len() < 10);
            assert!(v.iter().flatten().all(|&x| x < 5));
        }
    }

    prop_compose! {
        fn pair()(a in 0u8..10, b in 0u8..10) -> (u8, u8) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn composed_pairs_in_range((a, b) in pair().prop_map(|p| p)) {
            prop_assert!(a < 10);
            prop_assert!(b < 10);
            prop_assert_ne!(a + b, 200);
        }
    }
}
