//! The [`Strategy`] trait and combinators.

use crate::TestRng;

/// A recipe for producing values of one type from a [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `map`.
    fn prop_map<T, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, map }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.map)(self.inner.sample(rng))
    }
}

/// Uniform choice between type-erased strategies (`prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Build from a non-empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

/// Strategy defined by a sampling closure.
pub fn fn_strategy<T, F: Fn(&mut TestRng) -> T>(sample: F) -> FnStrategy<F> {
    FnStrategy { sample }
}

/// See [`fn_strategy`].
pub struct FnStrategy<F> {
    sample: F,
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L, M);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L, M, N);
