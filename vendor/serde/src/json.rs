//! The JSON data model: [`Value`], [`Number`], [`Error`], a text parser
//! and compact/pretty writers.
//!
//! Object keys are kept in a `BTreeMap`, so serialized output has a
//! deterministic (sorted) key order — a deliberate choice for a
//! workspace whose headline property is byte-identical replay.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number: positive integer, negative integer or float.
#[derive(Debug, Clone, Copy)]
pub struct Number(N);

#[derive(Debug, Clone, Copy)]
enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// A number from an unsigned integer.
    pub fn from_u64(n: u64) -> Self {
        Number(N::PosInt(n))
    }

    /// A number from a signed integer.
    pub fn from_i64(n: i64) -> Self {
        if n >= 0 {
            Number(N::PosInt(n as u64))
        } else {
            Number(N::NegInt(n))
        }
    }

    /// A number from a float (`NaN`/infinite map to `0.0`).
    pub fn from_f64(n: f64) -> Self {
        if n.is_finite() {
            Number(N::Float(n))
        } else {
            Number(N::Float(0.0))
        }
    }

    /// As `u64` if the number is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::PosInt(n) => Some(n),
            _ => None,
        }
    }

    /// As `i64` if the number is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::PosInt(n) => i64::try_from(n).ok(),
            N::NegInt(n) => Some(n),
            N::Float(_) => None,
        }
    }

    /// As `f64` (always possible; integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self.0 {
            N::PosInt(n) => n as f64,
            N::NegInt(n) => n as f64,
            N::Float(f) => f,
        })
    }

    /// Whether this number was parsed/stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.0, N::Float(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.0, other.0) {
            (N::PosInt(a), N::PosInt(b)) => a == b,
            (N::NegInt(a), N::NegInt(b)) => a == b,
            (N::Float(a), N::Float(b)) => a == b,
            // Integers compare across signedness representations.
            (N::PosInt(a), N::NegInt(b)) | (N::NegInt(b), N::PosInt(a)) => b >= 0 && a == b as u64,
            _ => false,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::PosInt(n) => write!(f, "{n}"),
            N::NegInt(n) => write!(f, "{n}"),
            // `{:?}` prints the shortest string that round-trips and
            // keeps a trailing `.0` on integral floats, like serde_json.
            N::Float(x) => write!(f, "{x:?}"),
        }
    }
}

/// The map type behind [`Value::Object`] (sorted, deterministic order).
pub type Map = BTreeMap<String, Value>;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with sorted keys.
    Object(Map),
}

impl Value {
    /// As a bool, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As `i64`, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// As a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As an array, if this is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As an object map, if this is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this is a number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// Whether this is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// Whether this is a boolean.
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    /// Whether this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Object member by key (`None` for absent keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Array element by index (`None` when out of range or non-array).
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        self.as_array().and_then(|a| a.get(index))
    }

    /// One human-readable word naming the value's type, for errors.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Render as compact JSON text.
    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Render as indented JSON text (two spaces, serde_json style).
    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Value::Object(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(key, out);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    /// Compact JSON text.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Pretty JSON text.
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `Display` renders compact JSON, like `serde_json::Value`.
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Member access; absent keys and non-objects yield `Null`.
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Element access; out-of-range and non-arrays yield `Null`.
    fn index(&self, index: usize) -> &Value {
        const NULL: Value = Value::Null;
        self.get_index(index).unwrap_or(&NULL)
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => {
                        if *other >= 0 {
                            n.as_u64() == Some(*other as u64)
                        } else {
                            n.as_i64() == Some(*other as i64)
                        }
                    }
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

value_eq_int!(i8, i16, i32, i64, isize);

macro_rules! value_eq_uint {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if n.as_u64() == Some(*other as u64))
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

value_eq_uint!(u8, u16, u32, u64, usize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

/// A parse or shape error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// "expected X, found Y while reading T".
    pub fn expected(what: &str, found: &Value, context: &str) -> Self {
        Error::new(format!(
            "expected {what}, found {} while reading {context}",
            found.kind()
        ))
    }

    /// "missing field F of T".
    pub fn missing_field(field: &str, context: &str) -> Self {
        Error::new(format!("missing field `{field}` of {context}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Maximum nesting depth accepted by the parser (stack-safety bound).
const MAX_DEPTH: usize = 128;

/// Parse JSON text into a [`Value`].
///
/// # Errors
///
/// Returns an [`Error`] with a byte offset on malformed input.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, text: &[u8], value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal(b"null", Value::Null),
            Some(b't') => self.literal(b"true", Value::Bool(true)),
            Some(b'f') => self.literal(b"false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'{', "expected '{'")?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uDC00..DFFF.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("control character in string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid; re-decode it.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated utf-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(c) = self.peek() else {
                return Err(self.err("truncated unicode escape"));
            };
            let digit = match c {
                b'0'..=b'9' => u32::from(c - b'0'),
                b'a'..=b'f' => u32::from(c - b'a') + 10,
                b'A'..=b'F' => u32::from(c - b'A') + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("expected a number"));
        }
        let number = if is_float {
            Number::from_f64(
                text.parse::<f64>()
                    .map_err(|_| self.err("invalid number"))?,
            )
        } else if let Ok(n) = text.parse::<u64>() {
            Number::from_u64(n)
        } else if let Ok(n) = text.parse::<i64>() {
            Number::from_i64(n)
        } else {
            // Integer overflow: fall back to float like serde_json's
            // arbitrary-precision-off mode.
            Number::from_f64(
                text.parse::<f64>()
                    .map_err(|_| self.err("invalid number"))?,
            )
        };
        Ok(Value::Number(number))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let text = r#"{"a":[1,-2,3.5,true,null,"x\n\"y\""],"b":{"c":0.1}}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&v.to_json_string()).unwrap(), v);
    }

    #[test]
    fn integer_float_split() {
        assert_eq!(parse("1").unwrap().as_u64(), Some(1));
        assert_eq!(parse("-1").unwrap().as_i64(), Some(-1));
        assert!(parse("1.0").unwrap().as_u64().is_none());
        assert_eq!(parse("1.0").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn float_text_roundtrips() {
        for x in [0.1, -91.25, 1e-7, 123456.789, f64::from(-91.7f32)] {
            let v = Value::Number(Number::from_f64(x));
            assert_eq!(parse(&v.to_json_string()).unwrap().as_f64(), Some(x));
        }
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""é😀""#).unwrap().as_str(), Some("é😀"));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["{broken", "", "[1,", "\"", "{\"a\":}", "nul", "1 2"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn index_and_eq_sugar() {
        let v = parse(r#"{"count":3,"name":"x","items":[1,2]}"#).unwrap();
        assert_eq!(v["count"], 3);
        assert_eq!(v["name"], "x");
        assert_eq!(v["items"][1], 2);
        assert!(v["missing"].is_null());
    }
}
