//! `Serialize`/`Deserialize` implementations for standard types.

use crate::json::{Error, Map, Number, Value};
use crate::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

// ── booleans and strings ──────────────────────────────────────────────

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::expected("boolean", value, "bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", value, "String"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::expected("string", value, "char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected a one-character string")),
        }
    }
}

// ── integers and floats ───────────────────────────────────────────────

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::expected("unsigned integer", value, stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::new(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| Error::expected("integer", value, stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::new(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::from_f64(*self))
        } else {
            // serde_json refuses non-finite floats; mapping to null keeps
            // serialization infallible for this workspace (which never
            // produces them on purpose).
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::expected("number", value, "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

// ── option, unit, sequences, tuples ───────────────────────────────────

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::expected("null", other, "()")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", value, "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::expected("array", value, "tuple"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::new(format!(
                        "expected an array of {expected}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ── maps ──────────────────────────────────────────────────────────────

/// JSON object keys are strings; integer-ish and string-ish serialized
/// keys are rendered the way serde_json renders them (`1`, `"Data"`).
fn key_string(value: &Value) -> String {
    match value {
        Value::String(s) => s.clone(),
        Value::Number(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => other.to_json_string(),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Collecting into the sorted Map keeps output deterministic even
        // for hash maps.
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::expected("object", value, "map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

// ── std::time::Duration (serde's {secs, nanos} layout) ────────────────

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("secs".to_owned(), self.as_secs().to_value());
        map.insert("nanos".to_owned(), self.subsec_nanos().to_value());
        Value::Object(map)
    }
}

impl Deserialize for Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::expected("object", value, "Duration"))?;
        let secs = obj
            .get("secs")
            .ok_or_else(|| Error::missing_field("secs", "Duration"))
            .and_then(u64::from_value)?;
        let nanos = obj
            .get("nanos")
            .ok_or_else(|| Error::missing_field("nanos", "Duration"))
            .and_then(u32::from_value)?;
        Ok(Duration::new(secs, nanos))
    }
}

// ── Value itself ──────────────────────────────────────────────────────

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_absent_reads_none() {
        assert_eq!(<Option<u32> as Deserialize>::absent(), Some(None));
        assert_eq!(<u32 as Deserialize>::absent(), None);
    }

    #[test]
    fn duration_roundtrip() {
        let d = Duration::new(3, 250_000_000);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
    }

    #[test]
    fn int_range_checks() {
        let v = Value::Number(Number::from_u64(300));
        assert!(u8::from_value(&v).is_err());
        assert_eq!(u16::from_value(&v).unwrap(), 300);
    }

    #[test]
    fn float_accepts_integer_text() {
        let v = Value::Number(Number::from_u64(7));
        assert_eq!(f64::from_value(&v).unwrap(), 7.0);
    }

    #[test]
    fn map_with_numeric_keys_serializes_to_strings() {
        let mut m = BTreeMap::new();
        m.insert(3u16, "x");
        assert_eq!(m.to_value().to_json_string(), r#"{"3":"x"}"#);
    }
}
