//! A minimal, dependency-free stand-in for the `serde` crate.
//!
//! The real `serde` could not be vendored in this offline build, so this
//! crate provides the small slice of its surface that the workspace
//! actually uses: the [`Serialize`] / [`Deserialize`] traits (via a JSON
//! [`Value`] intermediate representation rather than serde's
//! visitor-based data model) and the matching derive macros from the
//! sibling `serde_derive` stub. The `serde_json` stub builds its public
//! API on top of the [`json`] module here.
//!
//! Behavioural compatibility notes (matching real `serde_json` where the
//! workspace depends on it):
//!
//! * structs serialize to JSON objects, one key per field;
//! * enums use the externally-tagged representation (`"Unit"`,
//!   `{"Newtype": v}`, `{"Tuple": [a, b]}`, `{"Struct": {..}}`);
//! * missing `Option` fields deserialize to `None`;
//! * unknown object keys are ignored;
//! * `Duration` maps to `{"secs": u64, "nanos": u32}`.

pub mod json;

mod impls;

pub use json::{Error, Value};
pub use serde_derive::{Deserialize, Serialize};

/// Types that can be turned into a JSON [`Value`].
///
/// This replaces serde's serializer-generic `Serialize` trait: every
/// serializer in this workspace is JSON, so the intermediate `Value`
/// representation loses nothing.
pub trait Serialize {
    /// The JSON value representing `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] describing the first mismatch between the
    /// value and the expected shape.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// The value to use when a struct field is absent from its object.
    ///
    /// `None` (the default) makes the field required; `Option<T>`
    /// overrides this so missing fields read as `None`, mirroring
    /// serde's behaviour.
    #[doc(hidden)]
    fn absent() -> Option<Self> {
        None
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}
